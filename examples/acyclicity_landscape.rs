//! Where does a rule set sit in the decidability landscape?
//!
//! The paper studies three paradigms — weak-acyclicity, stickiness and
//! guardedness — and shows that only the first survives the move to the new
//! stable model semantics (Theorems 3-5).  This example classifies a handful
//! of rule sets against the full landscape implemented in `ntgd-classes`
//! (joint acyclicity, MFA, aGRD, the guardedness fragments, stratification)
//! and, for the terminating ones, reports the size and treewidth of their
//! chase.
//!
//! Run with `cargo run --example acyclicity_landscape`.

use stable_tgd::chase::{restricted_chase, ChaseConfig};
use stable_tgd::classes;
use stable_tgd::parser::{parse_database, parse_program};
use stable_tgd::treewidth::interpretation_treewidth;

fn main() {
    let cases = [
        (
            "example1 (paper, Ex. 1)",
            "person(X) -> hasFather(X, Y).\
             hasFather(X, Y) -> sameAs(Y, Y).\
             hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
            "person(alice). person(bo).",
        ),
        (
            "infinite chain",
            "person(X) -> parent(X, Y), person(Y).",
            "person(alice).",
        ),
        (
            "employee/department",
            "emp(X) -> worksIn(X, D). worksIn(X, D) -> unit(D). unit(D), not closed(D) -> open(D).",
            "emp(ann). emp(bo).",
        ),
        (
            "jointly acyclic, not weakly acyclic",
            "p(X) -> q(X, Y). q(X, Y), s(X) -> q(Z, X).",
            "p(a). s(a).",
        ),
    ];

    for (name, rules, facts) in cases {
        let program = parse_program(rules).expect("program parses");
        let database = parse_database(facts).expect("database parses");
        let report = classes::classify(&program);
        println!("## {name}");
        println!("   classes: {report}");
        if let Some(violated) = report.violated_containment() {
            println!("   !! containment violated: {violated}");
        }

        let chase = restricted_chase(&database, &program, &ChaseConfig::with_max_steps(200));
        if chase.terminated() {
            let (width, exact) = interpretation_treewidth(&chase.instance, 16);
            println!(
                "   chase: terminated after {} steps, {} atoms, treewidth {} ({})",
                chase.steps,
                chase.instance.len(),
                width,
                if exact { "exact" } else { "min-fill bound" }
            );
        } else {
            println!(
                "   chase: cut off after {} steps ({} atoms so far) — the program is not chase-terminating on this database",
                chase.steps,
                chase.instance.len()
            );
        }
        println!();
    }

    println!(
        "Weakly-acyclic rule sets keep query answering decidable under the new\n\
         semantics (Theorem 3); the wider acyclicity notions (JA, MFA, aGRD) are\n\
         the standard generalisations from the chase-termination literature and\n\
         still guarantee a finite chase, while guardedness and stickiness alone\n\
         do not help (Theorems 4 and 5)."
    );
}
