//! Walkthrough of an `ntgd-server` reasoning session: the persistent
//! service that keeps a program loaded and its chased instance alive while
//! facts arrive, queries are answered and epochs are rolled back — all
//! without ever re-chasing from scratch.
//!
//! This drives a [`stable_tgd::server::Session`] in-process, which is
//! exactly what one `ntgd-serve` TCP connection (or the stdin REPL) wraps;
//! every `>>` line below is a protocol request as a client would send it.
//!
//! Run with `cargo run --example server_session`.

use stable_tgd::server::{Session, SessionConfig};

fn drive(session: &mut Session, request: &str) {
    println!(">> {request}");
    for line in &session.execute(request).lines {
        println!("<< {line}");
    }
}

fn main() {
    let mut session = Session::new(SessionConfig::default());

    // LOAD compiles the rule plans once and establishes epoch mark 0.  A
    // social-network ontology: memberships imply profiles (with an invented
    // account id), and mutual follows imply friendship.
    drive(
        &mut session,
        "LOAD member(X) -> profile(X, A). \
              follows(X, Y), follows(Y, X) -> friends(X, Y). \
              friends(X, Y) -> friends(Y, X).",
    );

    // Each ASSERT incrementally re-chases: only the delta neighbourhood of
    // the new facts is matched, and a fresh epoch mark is returned.
    drive(&mut session, "ASSERT member(ada). member(grace).");
    drive(
        &mut session,
        "ASSERT follows(ada, grace). follows(grace, ada).",
    );
    drive(&mut session, "QUERY ?(X, Y) :- friends(X, Y).");

    // Certain answers only: every member has *some* profile (a labelled
    // null), but no constant account id is certain.
    drive(&mut session, "QUERY ?- profile(ada, A).");
    drive(&mut session, "QUERY ?(A) :- profile(ada, A).");

    // Speculate: a third member follows ada...
    drive(&mut session, "ASSERT member(linus). follows(linus, ada).");
    drive(&mut session, "QUERY ?(X, Y) :- friends(X, Y).");

    // ...then roll the speculation back by truncating to the earlier epoch:
    // O(atoms retracted), the surviving epochs are untouched.
    drive(&mut session, "RETRACT-TO 2");
    drive(&mut session, "QUERY ?(X) :- member(X).");

    // Stable-model enumeration over the accumulated facts.  The first
    // request builds the session's incremental grounding state; later
    // requests advance it from the fact delta instead of re-grounding (see
    // the crate docs' "MODELS caching contract").
    drive(&mut session, "MODELS max=4");
    drive(&mut session, "ASSERT follows(grace, grace).");
    drive(&mut session, "MODELS max=4");
    // The reuse counters are deterministic (thread- and pool-independent):
    // one rebuild for the first MODELS, one semi-naive advance for the
    // second (follows(grace, grace) adds no new constant).
    drive(&mut session, "STATS sms");
    drive(&mut session, "STATS");
    drive(&mut session, "QUIT");
}
