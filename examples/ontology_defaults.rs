//! An ontology with default negation: existential knowledge plus exceptions.
//!
//! Every employee works in some department; departments have a manager;
//! employees who are not known to be managers are (by default) staff; staff
//! with no recorded badge are flagged.  The example shows certain answers,
//! brave answers, and the syntactic class of the program.
//!
//! Run with `cargo run --example ontology_defaults`.

use stable_tgd::classes;
use stable_tgd::parser::{parse_database, parse_program, parse_query};
use stable_tgd::sms::SmsEngine;

fn main() {
    let program = parse_program(
        "employee(X) -> worksIn(X, D), dept(D).\
         dept(D) -> manages(M, D).\
         employee(X), not isManager(X) -> staff(X).\
         manages(M, D) -> isManager(M).\
         staff(X), not hasBadge(X) -> flagged(X).",
    )
    .expect("ontology parses");
    let database = parse_database(
        "employee(ada). employee(grace). hasBadge(ada). manages(grace, research). dept(research).",
    )
    .expect("database parses");

    println!("Ontology:\n{program}");
    println!(
        "weakly acyclic: {}   sticky: {}   guarded: {}",
        classes::is_weakly_acyclic(&program),
        classes::is_sticky(&program),
        classes::is_guarded(&program)
    );

    let engine = SmsEngine::new(&program);
    let models = engine.stable_models(&database).expect("models enumerate");
    println!("\nNumber of stable models: {}", models.len());

    let queries = [
        ("ada works somewhere", "?- worksIn(ada, D)."),
        ("grace is a manager", "?- isManager(grace)."),
        ("ada is flagged", "?- flagged(ada)."),
        ("someone is flagged", "?- flagged(X)."),
    ];
    for (label, text) in queries {
        let q = parse_query(text).expect("query parses");
        let cautious = engine.entails_cautious(&database, &q).expect("answers");
        let brave = engine.entails_brave(&database, &q).expect("answers");
        println!("{label:<26} cautious: {cautious:?}   brave: {brave}");
    }

    let who_is_staff = parse_query("?(X) :- staff(X).").expect("query parses");
    let certain = engine
        .certain_answers(&database, &who_is_staff)
        .expect("answers")
        .unwrap_or_default();
    let rendered: Vec<String> = certain
        .iter()
        .map(|t| {
            t.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    println!("certain staff members: [{}]", rendered.join(" "));
}
