//! A 2-QBF∃ solver built on the Section 5.3 encoding.
//!
//! Encodes `∃x0 ∀y0 (x0 ∧ y0 ∧ y0) ∨ (x0 ∧ ¬y0 ∧ ¬y0)` (satisfiable) and
//! `∃x0 ∀y0 (x0 ∧ y0 ∧ y0)` (unsatisfiable) as databases over the fixed
//! weakly-acyclic NTGD program and decides them with the stable-model engine,
//! cross-checking against brute force.
//!
//! Run with `cargo run --example qbf_solver`.

use stable_tgd::encodings::TwoQbf;

fn main() {
    let formulas = [
        (
            "∃x ∀y (x∧y∧y) ∨ (x∧¬y∧¬y)",
            TwoQbf {
                num_exists: 1,
                num_foralls: 1,
                terms: vec![
                    [(0, true), (1, true), (1, true)],
                    [(0, true), (1, false), (1, false)],
                ],
            },
        ),
        (
            "∃x ∀y (x∧y∧y)",
            TwoQbf {
                num_exists: 1,
                num_foralls: 1,
                terms: vec![[(0, true), (1, true), (1, true)]],
            },
        ),
    ];

    println!(
        "The fixed NTGD program of the reduction:\n{}",
        TwoQbf::program()
    );
    for (name, formula) in formulas {
        let db = formula.database();
        println!("Encoded database for {name}:\n{db}");
        let via_sms = formula.solve_via_sms().expect("SMS solves");
        let via_brave = formula.solve_via_brave_query().expect("brave query solves");
        let brute = formula.brute_force_satisfiable();
        println!(
            "{name}: SMS says {via_sms}, brave query says {via_brave}, brute force says {brute}\n"
        );
        assert_eq!(via_sms, brute);
        assert_eq!(via_brave, brute);
    }
}
