//! Quickstart: the paper's running example (Examples 1–4).
//!
//! Builds the person/hasFather program, answers the three queries discussed
//! in the introduction under (i) the classical LP approach and (ii) the
//! paper's new stable model semantics, and shows where they disagree.
//!
//! Run with `cargo run --example quickstart`.

use stable_tgd::lp::{LpEngine, LpLimits};
use stable_tgd::parser::{parse_database, parse_program, parse_query};
use stable_tgd::sms::{SmsAnswer, SmsEngine};

fn main() {
    let database = parse_database("person(alice).").expect("database parses");
    let program = parse_program(
        "person(X) -> hasFather(X, Y).\
         hasFather(X, Y) -> sameAs(Y, Y).\
         hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
    )
    .expect("program parses");

    println!("Database:\n{database}");
    println!("Program:\n{program}");

    // The classical LP (Skolemization) approach.
    let lp = LpEngine::new(&database, &program, &LpLimits::default()).expect("LP engine builds");
    println!("LP approach stable models ({}):", lp.models().len());
    for m in lp.models() {
        println!("  {m}");
    }

    // The paper's new semantics.
    let sms = SmsEngine::new(&program);
    let models = sms.stable_models(&database).expect("SMS enumerates");
    println!("\nNew (SM[D,Σ]) stable models ({}):", models.len());
    for m in &models {
        println!("  {m}");
    }

    // The three queries from the introduction.
    let queries = [
        ("every person is normal", "?- person(X), not abnormal(X)."),
        ("some person is abnormal", "?- person(X), abnormal(X)."),
        (
            "bob is certainly not alice's father",
            "?- not hasFather(alice, bob).",
        ),
    ];
    println!();
    for (label, text) in queries {
        let q = parse_query(text).expect("query parses");
        let lp_answer = format!("{:?}", lp.entails_cautious(&q));
        let sms_answer = match sms.entails_cautious(&database, &q).expect("SMS answers") {
            SmsAnswer::Entailed => "Entailed",
            SmsAnswer::NotEntailed => "NotEntailed",
            SmsAnswer::Inconsistent => "Inconsistent",
        };
        println!("{label:<40} LP: {lp_answer:<14} SMS: {sms_answer}");
    }
    println!(
        "\nThe last line is the paper's point: Skolemization makes\n\
         `not hasFather(alice, bob)` certain, while under the new semantics\n\
         bob may perfectly well be the father (Example 4)."
    );
}
