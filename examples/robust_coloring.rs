//! Robust graph colourability (the CERT3COL-style variation of Section 7.1).
//!
//! A communication network must stay 2-colourable (frequency-assignable) no
//! matter which of the optional links an adversary activates.  The inner
//! colourability check runs through the disjunctive stable-model encoding,
//! the adversarial quantifier is enumerated explicitly, and everything is
//! cross-checked against brute force.
//!
//! Run with `cargo run --example robust_coloring`.

use stable_tgd::encodings::{ColoringInstance, RobustColoringInstance};

fn main() {
    // The fixed backbone: a path of four stations.
    let backbone = vec![(0, 1), (1, 2), (2, 3)];
    // Optional links that may be switched on.
    let optional = vec![(3, 0), (0, 2)];

    let base = ColoringInstance::new(4, backbone.clone(), 2);
    println!("Colouring program for the backbone:\n{}", base.program());
    println!(
        "backbone 2-colourable: {}",
        base.colourable_via_sms().expect("colourability decides")
    );

    for colours in [2usize, 3] {
        let robust = RobustColoringInstance {
            vertices: 4,
            certain_edges: backbone.clone(),
            uncertain_edges: optional.clone(),
            colours,
        };
        let declarative = robust
            .robustly_colourable_via_sms()
            .expect("robust colourability decides");
        let brute = robust.robustly_colourable_brute_force();
        assert_eq!(declarative, brute);
        println!(
            "robustly {colours}-colourable under every adversarial choice of optional links: {declarative}"
        );
    }
}
