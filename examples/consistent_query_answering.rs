//! Consistent query answering over subset repairs (Section 7.1 application).
//!
//! A payroll table violates the key of `salary/2` for bob; the repairs are
//! the maximal consistent subsets, computed declaratively as the stable
//! models of an NTGD repair program, and certain answers are cautious
//! answers.
//!
//! Run with `cargo run --example consistent_query_answering`.

use stable_tgd::core::{atom, cst};
use stable_tgd::encodings::CqaInstance;
use stable_tgd::parser::parse_query;

fn main() {
    let instance = CqaInstance::new(
        vec![
            atom("salary", vec![cst("alice"), cst("50")]),
            atom("salary", vec![cst("bob"), cst("60")]),
            atom("salary", vec![cst("bob"), cst("70")]),
            atom("dept", vec![cst("alice"), cst("engineering")]),
        ],
        vec![(1, 2)], // bob cannot have two salaries
    );

    println!("Repair program:\n{}", instance.repair_program());
    let repairs = instance.repairs_via_sms().expect("repairs enumerate");
    println!("Repairs ({}):", repairs.len());
    for r in &repairs {
        let rendered: Vec<String> = r.iter().map(|a| a.to_string()).collect();
        println!("  {{{}}}", rendered.join(", "));
    }

    let queries = [
        ("alice earns 50", "?- salary(alice, 50)."),
        ("bob earns 60", "?- salary(bob, 60)."),
        ("bob earns something", "?- salary(bob, X)."),
        ("alice is in engineering", "?- dept(alice, engineering)."),
    ];
    println!();
    for (label, text) in queries {
        let q = parse_query(text).expect("query parses");
        let certain = instance.certain_via_sms(&q).expect("CQA answers");
        let brute = instance.certain_brute_force(&q);
        assert_eq!(certain, brute);
        println!("{label:<28} consistently true: {certain}");
    }
}
