//! Data exchange with default negation.
//!
//! The paper motivates TGDs through data exchange [17]: source-to-target
//! dependencies populate a target schema from a source database, inventing
//! labelled nulls for unknown values.  Adding default negation lets the
//! mapping express exceptions — here, an employee is assigned a (possibly
//! unknown) office unless they are explicitly remote.
//!
//! The example contrasts three engines of this workspace on the same mapping:
//!
//! * the restricted chase of `Σ⁺` (the classical data-exchange solution,
//!   negation ignored),
//! * the Skolem chase and its core (the canonical universal solution),
//! * the stable models of the full normal program under the paper's
//!   semantics, and the certain answers they induce.
//!
//! Run with `cargo run --example data_exchange`.

use stable_tgd::chase::{core_of, restricted_chase, skolem_chase, ChaseConfig};
use stable_tgd::classes;
use stable_tgd::parser::{parse_database, parse_program, parse_query};
use stable_tgd::sms::{SmsAnswer, SmsEngine};

fn main() {
    // Source: personnel records.  Target: office assignments and a directory.
    let source = parse_database("emp(ann, engineering). emp(bo, sales). remote(bo).")
        .expect("source parses");

    let mapping = parse_program(
        "emp(X, D) -> dept(D).\
         emp(X, D), not remote(X) -> office(X, R), inRoom(R, D).\
         emp(X, D), remote(X) -> homeWorker(X).\
         office(X, R) -> directory(X, R).",
    )
    .expect("mapping parses");

    println!("Mapping classification: {}", classes::classify(&mapping));

    // Classical data exchange: chase the positive part.
    let config = ChaseConfig::default();
    let chase = restricted_chase(&source, &mapping, &config);
    println!(
        "\nRestricted chase of Σ⁺: {} atoms, {} nulls (negation ignored — even bo gets an office):",
        chase.instance.len(),
        chase.nulls_created
    );
    for atom in chase.instance.sorted_atoms() {
        println!("  {atom}");
    }

    // The canonical universal solution: core of the Skolem chase.
    let skolem = skolem_chase(&source, &mapping, &config);
    let core = core_of(&skolem.instance);
    println!(
        "\nSkolem chase has {} atoms; its core has {} (the canonical universal solution).",
        skolem.instance.len(),
        core.len()
    );

    // The paper's semantics takes the negation seriously.
    let engine = SmsEngine::new(&mapping);
    let models = engine
        .stable_models(&source)
        .expect("stable models enumerate");
    println!("\nStable models under SM[D,Σ]: {}", models.len());

    let queries = [
        ("ann appears in the directory", "?- directory(ann, R)."),
        ("bo appears in the directory", "?- directory(bo, R)."),
        ("bo works from home", "?- homeWorker(bo)."),
        (
            "some engineer has an office",
            "?- emp(X, engineering), office(X, R).",
        ),
    ];
    println!();
    for (label, text) in queries {
        let query = parse_query(text).expect("query parses");
        let answer = match engine
            .entails_cautious(&source, &query)
            .expect("SMS answers")
        {
            SmsAnswer::Entailed => "certain",
            SmsAnswer::NotEntailed => "not certain",
            SmsAnswer::Inconsistent => "inconsistent",
        };
        println!("{label:<40} {answer}");
    }

    println!(
        "\nThe chase-based solution gives bo an office because it ignores the\n\
         negated remote(X) literal; under the stable model semantics bo is a\n\
         home worker and only ann is a certain directory entry."
    );
}
