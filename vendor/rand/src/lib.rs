//! Offline, in-tree stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate implements exactly the subset of the `rand` 0.8 API
//! that the workspace uses:
//!
//! * the [`Rng`] trait with `gen_range` (half-open `Range`), `gen_bool` and
//!   `next_u64`;
//! * the [`SeedableRng`] trait with `seed_from_u64`;
//! * [`rngs::StdRng`], here a small xoshiro256**-style generator.
//!
//! The generator is deterministic for a given seed (which is all the
//! workspace relies on: reproducible workload generation), but it is **not**
//! stream-compatible with the real `StdRng` and must never be used for
//! cryptography.

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range by [`Rng`].
pub trait SampleUniform: Copy {
    /// Uniformly samples from `range` using `draw` as the entropy source.
    fn sample_range(range: Range<Self>, draw: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(range: Range<Self>, draw: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias of the
                // plain `% span` alternative does not matter here, but this is
                // just as cheap and unbiased enough for workload generation.
                let value = (u128::from(draw()) * span) >> 64;
                (range.start as i128 + value as i128) as Self
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Subset of `rand::Rng`: uniform ranges, Bernoulli draws and raw words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut draw = || self.next_u64();
        T::sample_range(range, &mut draw)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Subset of `rand::SeedableRng`: seeding from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators (only [`StdRng`]).

    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256**-style generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut n2 = s2 ^ s0;
            let n3 = s3 ^ s1;
            let n1 = s1 ^ n2;
            let n0 = s0 ^ n3;
            n2 ^= t;
            self.state = [n0, n1, n2, n3.rotate_left(45)];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-3i32..4);
            assert!((-3..4).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "suspicious bias: {heads}");
    }
}
