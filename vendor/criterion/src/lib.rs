//! Offline, in-tree stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the criterion 0.5 API used by the `ntgd-bench` benchmarks:
//! [`Criterion`] with `bench_function` / `benchmark_group` / `sample_size`,
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark runs a warm-up
//! invocation followed by `sample_size` timed samples, and the median, mean
//! and minimum per-iteration times are printed to stdout.  There is no
//! statistical analysis, HTML report, or baseline storage — the goal is that
//! `cargo bench` compiles, runs and produces stable, comparable numbers.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of the parameter rendering only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running one warm-up call plus `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        durations: Vec::new(),
    };
    f(&mut bencher);
    let mut sorted = bencher.durations;
    if sorted.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{name:<48} median {median:>12?}   mean {mean:>12?}   min {min:>12?}   samples {n}",
        min = sorted[0],
        n = sorted.len(),
    );
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark of the group with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Runs one benchmark of the group without an extra input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.criterion.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut runs = 0usize;
        Criterion::default()
            .sample_size(3)
            .bench_function("counting", |b| b.iter(|| runs += 1));
        // One warm-up plus three samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_and_ids_render() {
        let id = BenchmarkId::new("f", 7);
        assert_eq!(id.to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        let mut criterion = Criterion::default().sample_size(2);
        let mut group = criterion.benchmark_group("g");
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("inner", 1), &5usize, |b, &five| {
            b.iter(|| runs += five)
        });
        group.finish();
        assert_eq!(runs, 15);
    }
}
