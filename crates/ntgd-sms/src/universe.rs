//! The candidate domain over which stable models are searched.
//!
//! For weakly-acyclic programs, Proposition 9 bounds the size of every stable
//! model polynomially in the database, and Lemma 8 ties that bound to the
//! restricted chase of `(D, Σ⁺)`.  The candidate domain therefore consists of
//!
//! * the active domain of the database,
//! * the constants occurring in the program and the query, and
//! * a budget of fresh labelled nulls.
//!
//! The default budget ([`NullBudget::Auto`]) is the number of nulls invented
//! by the restricted chase of `(D, Σ⁺)`; it can be overridden with
//! [`NullBudget::Exact`] (e.g. the conservative `chase size × max arity`
//! bound) or disabled with [`NullBudget::None`].

use std::collections::BTreeSet;

use ntgd_chase::{restricted_chase, ChaseConfig};
use ntgd_core::{Database, DisjunctiveProgram, Program, Query, Term};

/// How many fresh nulls to include in the candidate domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum NullBudget {
    /// Use the number of nulls created by the restricted chase of `(D, Σ⁺)`
    /// (clamped by the chase step limit).
    #[default]
    Auto,
    /// Like [`NullBudget::Auto`], but the probe chase runs with no step
    /// limit, so the budget is exact rather than clamped.  Only sound for
    /// programs whose chase provably terminates (e.g. a terminating
    /// `ntgd_classes` verdict); identical to `Auto` whenever the probe
    /// terminates within the default step limit.
    AutoExact,
    /// Use exactly this many nulls.
    Exact(usize),
    /// Do not add any nulls (complete only for programs whose stable models
    /// never need invented values).
    None,
}

/// A finite candidate domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Domain {
    terms: Vec<Term>,
    null_count: usize,
}

impl Domain {
    /// The terms of the domain (constants first, then nulls), deduplicated
    /// and in a deterministic order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of labelled nulls in the domain.
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Returns `true` if the domain contains the term.
    pub fn contains(&self, term: &Term) -> bool {
        self.terms.contains(term)
    }

    /// Builds a domain from an explicit set of terms (useful in tests).
    pub fn from_terms<I: IntoIterator<Item = Term>>(terms: I) -> Domain {
        let set: BTreeSet<Term> = terms.into_iter().collect();
        let null_count = set.iter().filter(|t| t.is_null()).count();
        Domain {
            terms: set.into_iter().collect(),
            null_count,
        }
    }
}

/// Builds the candidate domain for `(database, program)` and an optional
/// query, under the given null budget.
pub fn build_domain(
    database: &Database,
    program: &DisjunctiveProgram,
    query: Option<&Query>,
    budget: NullBudget,
) -> Domain {
    let mut terms: BTreeSet<Term> = database.domain();
    for rule in program.rules() {
        for lit in rule.body() {
            terms.extend(lit.atom().terms().filter(|t| t.is_constant()).copied());
        }
        for disjunct in rule.disjuncts() {
            for atom in disjunct {
                terms.extend(atom.terms().filter(|t| t.is_constant()).copied());
            }
        }
    }
    if let Some(q) = query {
        for lit in q.literals() {
            terms.extend(lit.atom().terms().filter(|t| t.is_constant()).copied());
        }
    }
    let null_count = match budget {
        NullBudget::Exact(n) => n,
        NullBudget::None => 0,
        NullBudget::Auto => auto_null_budget(database, program),
        NullBudget::AutoExact => auto_null_budget_unbounded(database, program),
    };
    for i in 0..null_count {
        terms.insert(Term::Null(i as u64));
    }
    Domain {
        terms: terms.into_iter().collect(),
        null_count,
    }
}

/// The automatic null budget: the number of nulls invented by the restricted
/// chase of `(D, Σ⁺)` (Lemma 8), where disjunctive heads are first turned
/// into conjunctions (an over-approximation).
pub fn auto_null_budget(database: &Database, program: &DisjunctiveProgram) -> usize {
    let positive: Program = program.positive_conjunctive_part();
    let result = restricted_chase(database, &positive, &ChaseConfig::default());
    result.nulls_created as usize
}

/// The exact automatic null budget: like [`auto_null_budget`] but the probe
/// chase runs unbounded, so the count is never clamped by a step limit.
/// Diverges on programs whose chase does not terminate — callers must hold a
/// termination proof (see [`NullBudget::AutoExact`]).
pub fn auto_null_budget_unbounded(database: &Database, program: &DisjunctiveProgram) -> usize {
    let positive: Program = program.positive_conjunctive_part();
    let result = restricted_chase(database, &positive, &ChaseConfig::unbounded());
    result.nulls_created as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::cst;
    use ntgd_parser::{parse_database, parse_query, parse_unit};

    fn disjunctive(rules: &str) -> DisjunctiveProgram {
        parse_unit(rules).unwrap().disjunctive_program().unwrap()
    }

    #[test]
    fn domain_contains_database_and_rule_constants() {
        let db = parse_database("p(a). q(b).").unwrap();
        let prog = disjunctive("p(X), not r(X, c) -> s(X, d).");
        let dom = build_domain(&db, &prog, None, NullBudget::None);
        for name in ["a", "b", "c", "d"] {
            assert!(dom.contains(&cst(name)), "missing constant {name}");
        }
        assert_eq!(dom.null_count(), 0);
    }

    #[test]
    fn query_constants_are_included() {
        let db = parse_database("person(alice).").unwrap();
        let prog = disjunctive("person(X) -> hasFather(X, Y).");
        let q = parse_query("?- not hasFather(alice, bob).").unwrap();
        let dom = build_domain(&db, &prog, Some(&q), NullBudget::None);
        assert!(dom.contains(&cst("bob")));
    }

    #[test]
    fn auto_budget_follows_the_restricted_chase() {
        let db = parse_database("person(alice). person(carol).").unwrap();
        let prog = disjunctive("person(X) -> hasFather(X, Y).");
        let dom = build_domain(&db, &prog, None, NullBudget::Auto);
        // The chase invents one father per person.
        assert_eq!(dom.null_count(), 2);
        assert!(dom.contains(&Term::Null(0)));
        assert!(dom.contains(&Term::Null(1)));
        // With an existing father no null is needed for that person.
        let db2 = parse_database("person(alice). hasFather(alice, bob).").unwrap();
        let dom2 = build_domain(&db2, &prog, None, NullBudget::Auto);
        assert_eq!(dom2.null_count(), 0);
    }

    #[test]
    fn auto_exact_budget_matches_auto_when_the_probe_terminates() {
        let db = parse_database("person(alice). person(carol).").unwrap();
        let prog = disjunctive("person(X) -> hasFather(X, Y).");
        let auto = build_domain(&db, &prog, None, NullBudget::Auto);
        let exact = build_domain(&db, &prog, None, NullBudget::AutoExact);
        assert_eq!(auto, exact);
        assert_eq!(exact.null_count(), 2);
    }

    #[test]
    fn exact_budget_is_respected() {
        let db = parse_database("p(a).").unwrap();
        let prog = disjunctive("p(X) -> q(X).");
        let dom = build_domain(&db, &prog, None, NullBudget::Exact(3));
        assert_eq!(dom.null_count(), 3);
        assert_eq!(dom.len(), 4);
    }

    #[test]
    fn from_terms_deduplicates() {
        let dom = Domain::from_terms(vec![cst("a"), cst("a"), Term::Null(0)]);
        assert_eq!(dom.len(), 2);
        assert_eq!(dom.null_count(), 1);
        assert!(!dom.is_empty());
    }
}
