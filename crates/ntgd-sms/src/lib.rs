//! # ntgd-sms
//!
//! The paper's primary contribution: the **new stable model semantics for
//! normal (disjunctive) tuple-generating dependencies**, defined via the
//! second-order formula `SM[D,Σ]` (Definition 1), together with query
//! answering under it (Section 3.4) and the guess-and-check algorithm of
//! Section 5.
//!
//! The pipeline is:
//!
//! 1. [`universe`] — fix a finite candidate domain: the active domain of the
//!    database, the constants of the program and query, plus a budget of
//!    labelled nulls derived from the restricted chase of `Σ⁺` (Lemma 8 /
//!    Proposition 9 justify a polynomial bound for weakly-acyclic programs);
//! 2. [`grounding`] — ground every rule over that domain.  A rule
//!    `∀X∀Y(ϕ → ∃Z ψ)` becomes ground implications whose heads are
//!    *disjunctions of conjunctions*, one disjunct per instantiation of `Z`
//!    (NDTGDs additionally get one group of disjuncts per head disjunct);
//!    the grounding is restricted to the *possibly-true* atoms, which is
//!    sound by Lemma 7;
//! 3. [`engine`] — enumerate classical models of the ground program with the
//!    CDCL SAT solver, subject each candidate to the **stability check** of
//!    Section 5.2 (a second SAT call — the `W-Stability` coNP oracle), and
//!    answer cautious/brave queries by searching for stable counter-models /
//!    witnesses;
//! 4. [`stability`] — the stability check itself, exposed also as a direct
//!    `is_stable_model` API so that hand-built interpretations (e.g.
//!    Example 4 of the paper) can be verified against Definition 1;
//! 5. [`consequence`] — the immediate consequence operator `T_{Σ,I}` of
//!    Section 5.1, used to validate Lemma 7 and Proposition 9 empirically.
//!
//! The conceptual difference from the LP approach is visible in this crate's
//! tests: `{person(alice), hasFather(alice,bob), sameAs(bob,bob)}` *is* a
//! stable model under `SM[D,Σ]` (Example 4), so `¬hasFather(alice,bob)` is
//! not entailed — whereas the LP baseline in `ntgd-lp` entails it.

pub mod consequence;
pub mod engine;
pub mod grounding;
pub mod incremental;
pub mod stability;
pub mod universe;

pub use consequence::{immediate_consequence_closure, is_supported_by_operator};
pub use engine::{SmsAnswer, SmsEngine, SmsError, SmsOptions, SmsStatistics};
pub use grounding::{
    ground_sms, AtomTable, GroundSmsProgram, GroundSmsRule, GroundingError, GroundingLimits,
};
pub use incremental::{IncrementalSmsState, SmsBaseSnapshot, SmsReuseStats};
pub use stability::is_stable_model;
pub use universe::{build_domain, Domain, NullBudget};
