//! The stability check (paper, Section 5.2).
//!
//! A model `M` of `(D ∧ Σ)` is *stable* iff it satisfies
//! `¬∃s ((s < p) ∧ τ_{p▷s}(D) ∧ τ_{p▷s}(Σ))`: there must be **no** proper
//! subset `J ⊊ M⁺` with `D ⊆ J` that satisfies every rule when positive
//! literals are read over `J` and negative literals are read over `M`
//! (existential witnesses ranging over `dom(M)`).
//!
//! The check is coNP (`W-Stability` in the paper); we delegate the
//! complementary search for such a `J` to the CDCL SAT solver.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::ControlFlow;

use ntgd_core::{
    parallel, CompiledDisjunctiveRuleSet, Database, DisjunctiveProgram, Interpretation, Program,
    Substitution, Term,
};
use ntgd_sat::{CnfBuilder, Lit};

use crate::grounding::{ground_sms, GroundSmsProgram, GroundingLimits};
use crate::universe::Domain;

/// Returns `true` if the interpretation is a classical model of the database
/// and the (disjunctive) program, in the homomorphism-based sense of the
/// paper.
///
/// Each rule's body and disjuncts are compiled once per call; every body
/// homomorphism then checks disjunct satisfaction through the cached plans
/// (the homomorphism is applied as slot presets, not recompiled).  On large
/// interpretations the per-rule checks — independent reads of the frozen
/// interpretation — run in parallel on the scoped worker pool.
pub fn is_classical_model(
    interpretation: &Interpretation,
    database: &Database,
    program: &DisjunctiveProgram,
) -> bool {
    if !database.facts().all(|f| interpretation.contains(f)) {
        return false;
    }
    let plans = CompiledDisjunctiveRuleSet::from_disjunctive(program, interpretation);
    let empty = Substitution::new();
    let rule_violated = |index: usize| -> bool {
        let rule_plans = plans.rule(index);
        let mut violated = false;
        rule_plans
            .body()
            .for_each(interpretation, &empty, &mut |binding| {
                let h = binding.to_substitution();
                let satisfied = rule_plans
                    .disjuncts()
                    .iter()
                    .any(|disjunct| disjunct.exists(interpretation, &h));
                if satisfied {
                    ControlFlow::Continue(())
                } else {
                    violated = true;
                    ControlFlow::Break(())
                }
            });
        violated
    };
    let threads = parallel::threads_for(interpretation.len());
    if threads <= 1 {
        // Inline path keeps the cross-rule early exit: stop at the first
        // violated rule instead of enumerating the remaining bodies.
        return !(0..plans.len()).any(rule_violated);
    }
    let rule_indices: Vec<usize> = (0..plans.len()).collect();
    let violations =
        parallel::par_map_with(&rule_indices, threads, |_, &index| rule_violated(index));
    !violations.into_iter().any(|violated| violated)
}

/// Checks stability of a candidate given an already-grounded program.
///
/// `candidate` is the set of atom identifiers forming `M⁺`; it must be a
/// subset of the possibly-true atoms of the grounding.
pub fn is_stable_ground(ground: &GroundSmsProgram, candidate: &HashSet<usize>) -> bool {
    find_instability_witness(ground, candidate).is_none()
}

/// Searches for an *instability witness*: a proper subset `J ⊊ M⁺` containing
/// the database that satisfies every rule when negative literals are read
/// over `M` (the `∃s` of the stability subformula).  Returns `None` when the
/// candidate is stable.
pub fn find_instability_witness(
    ground: &GroundSmsProgram,
    candidate: &HashSet<usize>,
) -> Option<HashSet<usize>> {
    let facts: HashSet<usize> = ground.facts.iter().copied().collect();
    // Candidate atoms in ascending id order: SAT variables are assigned (and
    // clauses emitted) in a deterministic order, so concurrently running
    // stability checks — and reruns at different thread counts — construct
    // identical CNFs and find identical witnesses.
    let ordered: Vec<usize> = {
        let mut ids: Vec<usize> = candidate.iter().copied().collect();
        ids.sort_unstable();
        ids
    };
    // dom(M): every term occurring in a candidate atom.
    let mut domain_of_m: BTreeSet<Term> = BTreeSet::new();
    for &id in &ordered {
        domain_of_m.extend(ground.atoms.atom(id).terms().copied());
    }

    let mut builder = CnfBuilder::new();
    let mut var_of: HashMap<usize, Lit> = HashMap::new();
    for &id in &ordered {
        var_of.insert(id, builder.new_var().positive());
    }
    // τ(D): the database is contained in J.
    for &f in &ground.facts {
        if let Some(&lit) = var_of.get(&f) {
            builder.force(lit);
        }
    }
    // (s < p): at least one non-database atom of M is missing from J.
    let strict: Vec<Lit> = ordered
        .iter()
        .filter(|id| !facts.contains(id))
        .map(|id| !var_of[id])
        .collect();
    if strict.is_empty() {
        // M = D: no proper subset containing D exists, so M is stable
        // (provided it is a model, which callers check separately).
        return None;
    }
    builder.clause(&strict);

    // τ(Σ): every rule instance that *fires with respect to M's negative
    // information* must be satisfied by J.
    for rule in &ground.rules {
        // The instance is relevant only if its positive body can lie in J ⊆ M.
        if !rule.body_pos.iter().all(|id| candidate.contains(id)) {
            continue;
        }
        // Negative literals are evaluated over M (original predicates).
        if rule.body_neg.iter().any(|id| candidate.contains(id)) {
            continue;
        }
        // Constants occurring only negatively must lie in dom(M).
        if !rule
            .neg_domain_terms
            .iter()
            .all(|t| domain_of_m.contains(t))
        {
            continue;
        }
        let body: Vec<Lit> = rule.body_pos.iter().map(|id| var_of[id]).collect();
        // Existential witnesses range over dom(M): only disjuncts entirely
        // inside M can be used by J.
        let disjuncts: Vec<Vec<Lit>> = rule
            .disjuncts
            .iter()
            .filter(|conj| conj.iter().all(|id| candidate.contains(id)))
            .map(|conj| conj.iter().map(|id| var_of[id]).collect())
            .collect();
        if disjuncts.is_empty() {
            // The body must not be fully contained in J.
            let clause: Vec<Lit> = body.iter().map(|&l| !l).collect();
            builder.clause(&clause);
        } else {
            builder.rule(&body, &disjuncts);
        }
    }

    // M is stable iff no such J exists.
    match builder.solve_unconstrained() {
        ntgd_sat::SolveResult::Sat(model) => {
            let witness: HashSet<usize> = ordered
                .iter()
                .copied()
                .filter(|id| model[var_of[id].var().index()])
                .collect();
            Some(witness)
        }
        ntgd_sat::SolveResult::Unsat => None,
    }
}

/// Checks Definition 1 directly for an explicit interpretation: `I` is a
/// stable model of `(D, Σ)` iff it is a classical model of `D ∧ Σ` and
/// satisfies the stability condition.
///
/// The check grounds the program over `dom(I)` (plus the constants of `D` and
/// `Σ`), which is exact: both the minimality subformula and the model
/// relation only quantify over `dom(I)`.
pub fn is_stable_model(
    database: &Database,
    program: &Program,
    interpretation: &Interpretation,
) -> bool {
    is_stable_model_disjunctive(database, &program.to_disjunctive(), interpretation)
}

/// [`is_stable_model`] for disjunctive programs.
pub fn is_stable_model_disjunctive(
    database: &Database,
    program: &DisjunctiveProgram,
    interpretation: &Interpretation,
) -> bool {
    if !is_classical_model(interpretation, database, program) {
        return false;
    }
    // Ground over exactly dom(I) (every stable model is contained in the
    // possibly-true closure over its own domain; an interpretation with
    // unreachable atoms is rejected below).
    let domain = Domain::from_terms(interpretation.domain());
    let Ok(ground) = ground_sms(database, program, &domain, &GroundingLimits::default()) else {
        return false;
    };
    let mut candidate: HashSet<usize> = HashSet::new();
    for atom in interpretation.atoms() {
        match ground.atoms.id_of(atom) {
            Some(id) if ground.possibly_true[id] => {
                candidate.insert(id);
            }
            // An atom that is not even possibly true (not derivable ignoring
            // negation) cannot belong to a stable model — dropping it yields a
            // smaller model of the reduct (Lemma 7).
            _ => return false,
        }
    }
    is_stable_ground(&ground, &candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::{atom, cst, Term};
    use ntgd_parser::{parse_database, parse_program};

    /// Example 1's program.
    fn example1() -> (Database, Program) {
        (
            parse_database("person(alice).").unwrap(),
            parse_program(
                "person(X) -> hasFather(X, Y).\
                 hasFather(X, Y) -> sameAs(Y, Y).\
                 hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
            )
            .unwrap(),
        )
    }

    #[test]
    fn example4_the_bob_interpretation_is_a_stable_model() {
        // The paper's Example 4: I⁺ = {person(alice), hasFather(alice,bob),
        // sameAs(bob,bob)} is a stable model under the new semantics (but not
        // under the LP approach).
        let (db, p) = example1();
        let i = Interpretation::from_atoms(vec![
            atom("person", vec![cst("alice")]),
            atom("hasFather", vec![cst("alice"), cst("bob")]),
            atom("sameAs", vec![cst("bob"), cst("bob")]),
        ]);
        assert!(is_stable_model(&db, &p, &i));
    }

    #[test]
    fn the_null_witness_interpretation_is_also_stable() {
        let (db, p) = example1();
        let i = Interpretation::from_atoms(vec![
            atom("person", vec![cst("alice")]),
            atom("hasFather", vec![cst("alice"), Term::null(0)]),
            atom("sameAs", vec![Term::null(0), Term::null(0)]),
        ]);
        assert!(is_stable_model(&db, &p, &i));
    }

    #[test]
    fn supersets_with_unsupported_atoms_are_not_stable() {
        let (db, p) = example1();
        // abnormal(alice) is not supported: the smaller model without it
        // satisfies the reduct.
        let i = Interpretation::from_atoms(vec![
            atom("person", vec![cst("alice")]),
            atom("hasFather", vec![cst("alice"), cst("bob")]),
            atom("sameAs", vec![cst("bob"), cst("bob")]),
            atom("abnormal", vec![cst("alice")]),
        ]);
        assert!(!is_stable_model(&db, &p, &i));
    }

    #[test]
    fn non_models_are_rejected() {
        let (db, p) = example1();
        // Missing the sameAs fact: not even a classical model.
        let i = Interpretation::from_atoms(vec![
            atom("person", vec![cst("alice")]),
            atom("hasFather", vec![cst("alice"), cst("bob")]),
        ]);
        assert!(!is_stable_model(&db, &p, &i));
        // Missing the database: rejected as well.
        let j = Interpretation::from_atoms(vec![atom("sameAs", vec![cst("bob"), cst("bob")])]);
        assert!(!is_stable_model(&db, &p, &j));
    }

    #[test]
    fn section_3_3_example_j_is_not_stable() {
        // D = {p(0)}, Σ = { p(X) ∧ ¬t(X) → r(X),  r(X) → t(X) }.
        // J = {p(0), t(0)} is a minimal model but NOT a stable model: the
        // content of t is fixed during the stability check, so {p(0)} ⊊ J
        // satisfies the transformed rules.
        let db = parse_database("p(0).").unwrap();
        let p = parse_program("p(X), not t(X) -> r(X). r(X) -> t(X).").unwrap();
        let j =
            Interpretation::from_atoms(vec![atom("p", vec![cst("0")]), atom("t", vec![cst("0")])]);
        assert!(is_classical_model(&j, &db, &p.to_disjunctive()));
        assert!(!is_stable_model(&db, &p, &j));
        // And indeed (D, Σ) has no stable model at all containing only these
        // atoms; the full candidate {p(0), r(0), t(0)} is not stable either.
        let k = Interpretation::from_atoms(vec![
            atom("p", vec![cst("0")]),
            atom("r", vec![cst("0")]),
            atom("t", vec![cst("0")]),
        ]);
        assert!(!is_stable_model(&db, &p, &k));
    }

    #[test]
    fn database_only_interpretations_are_stable_for_satisfied_programs() {
        let db = parse_database("p(a). q(a).").unwrap();
        let p = parse_program("p(X) -> q(X).").unwrap();
        let i = db.to_interpretation();
        assert!(is_stable_model(&db, &p, &i));
    }

    #[test]
    fn immediate_consequence_counterexample_from_section_5_1() {
        // D = {s(a)}, Σ = {s(X) → ∃Y p(X,Y)}: the interpretation with two
        // fathers {s(a), p(a,b), p(a,c)} reproduces itself under T but is NOT
        // stable (either single-father subset witnesses non-minimality).
        let db = parse_database("s(a).").unwrap();
        let p = parse_program("s(X) -> p(X, Y).").unwrap();
        let i = Interpretation::from_atoms(vec![
            atom("s", vec![cst("a")]),
            atom("p", vec![cst("a"), cst("b")]),
            atom("p", vec![cst("a"), cst("c")]),
        ]);
        assert!(!is_stable_model(&db, &p, &i));
        let single = Interpretation::from_atoms(vec![
            atom("s", vec![cst("a")]),
            atom("p", vec![cst("a"), cst("b")]),
        ]);
        assert!(is_stable_model(&db, &p, &single));
    }

    #[test]
    fn disjunctive_minimality_is_enforced() {
        // node(v) -> red(v) | green(v): taking both colours is not stable.
        let db = parse_database("node(v).").unwrap();
        let prog = ntgd_parser::parse_unit("node(X) -> red(X) | green(X).")
            .unwrap()
            .disjunctive_program()
            .unwrap();
        let both = Interpretation::from_atoms(vec![
            atom("node", vec![cst("v")]),
            atom("red", vec![cst("v")]),
            atom("green", vec![cst("v")]),
        ]);
        assert!(!is_stable_model_disjunctive(&db, &prog, &both));
        let red_only = Interpretation::from_atoms(vec![
            atom("node", vec![cst("v")]),
            atom("red", vec![cst("v")]),
        ]);
        assert!(is_stable_model_disjunctive(&db, &prog, &red_only));
    }
}
