//! The immediate consequence operator `T_{Σ,I}` (paper, Section 5.1).
//!
//! An atom `p(t̄) ∈ I⁺` is an *immediate consequence* for a set `S` of atoms
//! and `Σ` relative to `I` if some rule `σ` has a homomorphism `h` with
//! `h(B(σ)) ⊆ S ∪ I⁻` and `p(t̄) ∈ h(H(σ))`.  Lemma 7 states that every
//! stable model `M` satisfies `M⁺ = T^∞_{Σ,M}(D)` — it can be reconstructed
//! by "executing" the program using `M` as an oracle for negative literals —
//! and Lemma 8/Proposition 9 bound the number of iterations/atoms for
//! weakly-acyclic programs via the chase.
//!
//! The functions here make those statements executable; they are used by the
//! tests of this crate and by experiment E8.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use ntgd_core::{Atom, CompiledRuleSet, Database, Interpretation, Program, Substitution};

/// Derives every immediate consequence of the rules whose positive body maps
/// into `current` by a homomorphism using at least one atom at or after
/// `watermark` (`watermark == 0` means all homomorphisms), invoking `emit`
/// for each derived atom.
///
/// This is the shared rule-evaluation core of
/// [`immediate_consequence_step`] and [`immediate_consequence_closure`]:
/// negative literals are evaluated against the oracle `I`, and every head
/// atom instance belonging to `I⁺` (under some extension of the body
/// homomorphism over `dom(I)`) is an immediate consequence.  `plans` holds
/// the cached positive-body and per-head-atom plans of `program` (compiled
/// once per closure, executed every round); body homomorphisms stay borrowed
/// slot bindings and are only materialised for the head-extension probe.
fn derive_consequences<F: FnMut(Atom)>(
    program: &Program,
    plans: &CompiledRuleSet,
    oracle: &Interpretation,
    current: &Interpretation,
    watermark: usize,
    emit: &mut F,
) {
    let empty = Substitution::new();
    for (index, rule) in program.iter() {
        let rule_plans = plans.rule(index);
        rule_plans
            .body_positive()
            .for_each_delta(current, &empty, watermark, &mut |binding| {
                // Negative literals are evaluated against the oracle I.
                let negatives_ok = rule
                    .body_negative()
                    .iter()
                    .all(|a| oracle.satisfies_negation_of(&binding.apply_atom(a)));
                if !negatives_ok {
                    return ControlFlow::Continue(());
                }
                // Every head atom instance that belongs to I⁺ (under some
                // extension of h over dom(I)) is an immediate consequence.
                let h = binding.to_substitution();
                for (position, head_atom) in rule.head().iter().enumerate() {
                    rule_plans.head_atoms()[position].for_each(oracle, &h, &mut |ext| {
                        emit(ext.apply_atom(head_atom));
                        ControlFlow::Continue(())
                    });
                }
                ControlFlow::Continue(())
            });
    }
}

/// One application of `T_{Σ,I}` to `S` (returns `T_{Σ,I}(S) ∪ S`).
pub fn immediate_consequence_step(
    program: &Program,
    oracle: &Interpretation,
    current: &Interpretation,
) -> BTreeSet<Atom> {
    let plans = CompiledRuleSet::from_program(program, current);
    let mut derived: BTreeSet<Atom> = current.sorted_atoms().into_iter().collect();
    derive_consequences(program, &plans, oracle, current, 0, &mut |atom| {
        derived.insert(atom);
    });
    derived
}

/// The least fixpoint `T^∞_{Σ,I}(D)`.
///
/// Computed semi-naively: after the first round, rule bodies are only
/// matched against homomorphisms using an atom derived in the previous round
/// (the negative literals and the head extension are evaluated against the
/// fixed oracle, so every homomorphism contributes in exactly one round).
/// Rule plans are compiled once for the whole fixpoint.
pub fn immediate_consequence_closure(
    database: &Database,
    program: &Program,
    oracle: &Interpretation,
) -> Interpretation {
    let mut current = database.to_interpretation();
    let plans = CompiledRuleSet::from_program(program, &current);
    let mut watermark = 0usize;
    loop {
        let next_watermark = current.len();
        let mut derived: Vec<Atom> = Vec::new();
        derive_consequences(program, &plans, oracle, &current, watermark, &mut |atom| {
            derived.push(atom);
        });
        let mut changed = false;
        for atom in derived {
            changed |= current.insert(atom);
        }
        if !changed {
            return current;
        }
        watermark = next_watermark;
    }
}

/// Checks the conclusion of Lemma 7 for a given interpretation: does
/// `M⁺ = T^∞_{Σ,M}(D)` hold?
///
/// Note that the converse fails in general (Section 5.1 gives the two-father
/// counterexample), so this is a *necessary* condition for stability only.
pub fn is_supported_by_operator(
    database: &Database,
    program: &Program,
    interpretation: &Interpretation,
) -> bool {
    let closure = immediate_consequence_closure(database, program, interpretation);
    closure.same_atoms_as(interpretation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::{atom, cst, Term};
    use ntgd_parser::{parse_database, parse_program};

    #[test]
    fn closure_reconstructs_the_positive_chase_with_an_oracle() {
        let db = parse_database("person(alice).").unwrap();
        let p = parse_program("person(X) -> hasFather(X, Y). hasFather(X, Y) -> sameAs(Y, Y).")
            .unwrap();
        let m = Interpretation::from_atoms(vec![
            atom("person", vec![cst("alice")]),
            atom("hasFather", vec![cst("alice"), cst("bob")]),
            atom("sameAs", vec![cst("bob"), cst("bob")]),
        ]);
        assert!(is_supported_by_operator(&db, &p, &m));
    }

    #[test]
    fn unsupported_atoms_break_the_fixpoint_equation() {
        let db = parse_database("person(alice).").unwrap();
        let p = parse_program("person(X) -> hasFather(X, Y).").unwrap();
        let m = Interpretation::from_atoms(vec![
            atom("person", vec![cst("alice")]),
            atom("hasFather", vec![cst("alice"), cst("bob")]),
            atom("stranger", vec![cst("zed")]),
        ]);
        assert!(!is_supported_by_operator(&db, &p, &m));
    }

    #[test]
    fn negative_literals_consult_the_oracle() {
        let db = parse_database("p(a).").unwrap();
        let p = parse_program("p(X), not q(X) -> r(X).").unwrap();
        // Oracle where q(a) holds: r(a) is NOT derivable.
        let with_q =
            Interpretation::from_atoms(vec![atom("p", vec![cst("a")]), atom("q", vec![cst("a")])]);
        let closure = immediate_consequence_closure(&db, &p, &with_q);
        assert!(!closure.contains(&atom("r", vec![cst("a")])));
        // Oracle without q(a): r(a) is derivable.
        let without_q =
            Interpretation::from_atoms(vec![atom("p", vec![cst("a")]), atom("r", vec![cst("a")])]);
        let closure = immediate_consequence_closure(&db, &p, &without_q);
        assert!(closure.contains(&atom("r", vec![cst("a")])));
        assert!(is_supported_by_operator(&db, &p, &without_q));
    }

    #[test]
    fn section_5_1_counterexample_supported_but_not_stable() {
        // I⁺ = {s(a), p(a,b), p(a,c)} satisfies I⁺ = T∞(D) but is not a
        // stable model (checked in `stability`).
        let db = parse_database("s(a).").unwrap();
        let p = parse_program("s(X) -> p(X, Y).").unwrap();
        let i = Interpretation::from_atoms(vec![
            atom("s", vec![cst("a")]),
            atom("p", vec![cst("a"), cst("b")]),
            atom("p", vec![cst("a"), cst("c")]),
        ]);
        assert!(is_supported_by_operator(&db, &p, &i));
        assert!(!crate::stability::is_stable_model(&db, &p, &i));
    }

    #[test]
    fn closure_size_is_bounded_by_the_chase_bound() {
        // Proposition 9: |M⁺| is bounded by the (restricted-chase derived)
        // bound f(D,Σ).
        let db = parse_database("person(alice). person(bob).").unwrap();
        let p = parse_program("person(X) -> hasFather(X, Y). hasFather(X, Y) -> sameAs(Y, Y).")
            .unwrap();
        let m = Interpretation::from_atoms(vec![
            atom("person", vec![cst("alice")]),
            atom("person", vec![cst("bob")]),
            atom("hasFather", vec![cst("alice"), Term::null(0)]),
            atom("hasFather", vec![cst("bob"), Term::null(1)]),
            atom("sameAs", vec![Term::null(0), Term::null(0)]),
            atom("sameAs", vec![Term::null(1), Term::null(1)]),
        ]);
        let chase = ntgd_chase::restricted_chase(&db, &p, &ntgd_chase::ChaseConfig::default());
        assert!(m.len() <= chase.instance.len());
        assert!(is_supported_by_operator(&db, &p, &m));
    }
}
