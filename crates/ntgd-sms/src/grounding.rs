//! Grounding of `SM[D,Σ]` over a finite candidate domain.
//!
//! Every rule `∀X∀Y(ϕ(X,Y) → ⋁ᵢ ∃Zᵢ ψᵢ(X,Zᵢ))` is instantiated over the
//! candidate domain: the universal variables range over the domain (restricted
//! to instantiations whose positive body lies in the *possibly-true* closure —
//! sound by Lemma 7), and each head disjunct is expanded into one
//! conjunction per assignment of its existential variables to domain
//! elements.  The result is a set of ground implications
//!
//! ```text
//! body⁺ ∧ ¬body⁻ ∧ (negated constants are in the domain)  →  ⋁ (conjunctions)
//! ```
//!
//! which is exactly the propositional shape consumed by the SAT-based
//! generator and by the stability check.

use std::collections::{BTreeSet, HashMap};
use std::ops::ControlFlow;

use ntgd_core::{
    parallel, Atom, CompiledDisjunctiveRuleSet, Database, DisjunctiveProgram, Interpretation,
    Substitution, Term,
};

use crate::universe::Domain;

/// A dense table of ground atoms.
#[derive(Clone, Debug, Default)]
pub struct AtomTable {
    atoms: Vec<Atom>,
    index: HashMap<Atom, usize>,
}

impl AtomTable {
    /// Creates an empty table.
    pub fn new() -> AtomTable {
        AtomTable::default()
    }

    /// Interns an atom, returning its identifier.
    pub fn intern(&mut self, atom: Atom) -> usize {
        if let Some(&id) = self.index.get(&atom) {
            return id;
        }
        let id = self.atoms.len();
        self.index.insert(atom.clone(), id);
        self.atoms.push(atom);
        id
    }

    /// Identifier of an atom, if already interned.
    pub fn id_of(&self, atom: &Atom) -> Option<usize> {
        self.index.get(atom).copied()
    }

    /// The atom with the given identifier.
    pub fn atom(&self, id: usize) -> &Atom {
        &self.atoms[id]
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over `(id, atom)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Atom)> + '_ {
        self.atoms.iter().enumerate()
    }

    /// Rolls the table back to its first `len` atoms, dropping the interned
    /// atoms (and their identifiers) with `id >= len`.
    ///
    /// Identifiers are dense and assigned in interning order, so — exactly
    /// like [`Interpretation::truncate`] — the atoms of an epoch occupy a
    /// suffix of the table and rollback costs `O(atoms removed)`.  Surviving
    /// identifiers are untouched.  A no-op if `len >= self.len()`.
    pub fn truncate(&mut self, len: usize) {
        while self.atoms.len() > len {
            let atom = self.atoms.pop().expect("table is non-empty");
            self.index.remove(&atom);
        }
    }
}

/// A ground SMS rule: implication with a disjunction-of-conjunctions head.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroundSmsRule {
    /// Positive body atom ids.
    pub body_pos: Vec<usize>,
    /// Negated body atom ids.
    pub body_neg: Vec<usize>,
    /// Ground terms occurring in the negated body but not in the positive
    /// body instance: the rule instance only "fires" if these are in the
    /// domain of the candidate interpretation (paper semantics of negative
    /// literals over total interpretations).
    pub neg_domain_terms: Vec<Term>,
    /// Head disjuncts, each a conjunction of atom ids.
    pub disjuncts: Vec<Vec<usize>>,
    /// The index of the originating rule in the input program.
    pub source_rule: usize,
}

/// Errors raised during grounding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroundingError {
    /// The possibly-true closure or the rule instantiation exceeded the
    /// configured limits.
    TooLarge {
        /// Number of atoms produced so far.
        atoms: usize,
        /// Number of ground rules produced so far.
        rules: usize,
    },
}

impl std::fmt::Display for GroundingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroundingError::TooLarge { atoms, rules } => write!(
                f,
                "grounding exceeded the configured limits ({atoms} atoms, {rules} rules)"
            ),
        }
    }
}

impl std::error::Error for GroundingError {}

/// Limits for the grounding step.
#[derive(Clone, Copy, Debug)]
pub struct GroundingLimits {
    /// Maximum number of possibly-true atoms.
    pub max_atoms: usize,
    /// Maximum number of ground rule instances.
    pub max_rules: usize,
}

impl Default for GroundingLimits {
    fn default() -> Self {
        GroundingLimits {
            max_atoms: 200_000,
            max_rules: 500_000,
        }
    }
}

/// The grounded `SM[D,Σ]` program.
#[derive(Clone, Debug)]
pub struct GroundSmsProgram {
    /// Table of all ground atoms referenced by the grounding.
    pub atoms: AtomTable,
    /// `possibly_true[id]` — whether the atom can occur in a stable model
    /// (atoms outside the closure are always false).
    pub possibly_true: Vec<bool>,
    /// Identifiers of the database facts.
    pub facts: Vec<usize>,
    /// The ground rules.
    pub rules: Vec<GroundSmsRule>,
    /// The candidate domain used for grounding.
    pub domain: Domain,
    /// The possibly-true closure as an interpretation (used to enumerate
    /// query instantiations).
    pub closure: Interpretation,
}

impl GroundSmsProgram {
    /// Number of possibly-true atoms (the SAT variables of the generator).
    pub fn possibly_true_count(&self) -> usize {
        self.possibly_true.iter().filter(|b| **b).count()
    }
}

/// Enumerates all assignments of `variables` to terms of `domain`, invoking
/// `visit` with each substitution extending `base`.
fn for_each_assignment<F>(
    variables: &[ntgd_core::Symbol],
    domain: &Domain,
    base: &Substitution,
    visit: &mut F,
) where
    F: FnMut(&Substitution),
{
    fn recurse<F>(
        variables: &[ntgd_core::Symbol],
        idx: usize,
        domain: &Domain,
        current: &mut Substitution,
        visit: &mut F,
    ) where
        F: FnMut(&Substitution),
    {
        if idx == variables.len() {
            visit(current);
            return;
        }
        for t in domain.terms() {
            let saved = current.clone();
            if current.try_bind(Term::Var(variables[idx]), *t) {
                recurse(variables, idx + 1, domain, current, visit);
            }
            *current = saved;
        }
    }
    let mut current = base.clone();
    recurse(variables, 0, domain, &mut current, visit);
}

/// The existential variables of every disjunct of a rule, hoisted out of the
/// per-homomorphism loops.
fn existentials_per_disjunct(rule: &ntgd_core::rule::Ndtgd) -> Vec<Vec<ntgd_core::Symbol>> {
    (0..rule.disjuncts().len())
        .map(|d| rule.existential_variables_of(d).into_iter().collect())
        .collect()
}

/// The per-disjunct existential variables of every rule of a program (the
/// shape consumed by the closure and instantiation passes).
pub(crate) fn existentials_for_program(
    program: &DisjunctiveProgram,
) -> Vec<Vec<Vec<ntgd_core::Symbol>>> {
    program
        .rules()
        .iter()
        .map(existentials_per_disjunct)
        .collect()
}

/// Computes the possibly-true closure: the least set of atoms over the domain
/// containing the database and closed under firing every rule (ignoring
/// negative literals) with every instantiation of its existential variables.
///
/// `plans` holds the cached rule plans shared with the instantiation phase of
/// [`ground_sms`]; every round executes them without recompiling.
///
/// Large rounds evaluate the rules in parallel on the scoped worker pool:
/// every worker matches against the frozen closure snapshot and emits
/// candidate atoms into a private buffer, and the buffers are merged into
/// one sorted addition set before insertion — the closure (arena order
/// included) is therefore identical at every thread count.
fn possibly_true_closure(
    database: &Database,
    program: &DisjunctiveProgram,
    plans: &CompiledDisjunctiveRuleSet,
    existentials_by_rule: &[Vec<Vec<ntgd_core::Symbol>>],
    domain: &Domain,
    limits: &GroundingLimits,
) -> Result<Interpretation, GroundingError> {
    let mut closure = database.to_interpretation();
    // Register every domain term so that matching can bind unsafe variables
    // if ever needed, and so `dom(I)` checks see the full candidate domain.
    for t in domain.terms() {
        closure.add_domain_element(*t);
    }
    advance_possibly_true_closure(
        &mut closure,
        program,
        plans,
        existentials_by_rule,
        domain,
        limits,
        0,
    )?;
    Ok(closure)
}

/// Runs the closure rounds of [`possibly_true_closure`] to fixpoint, starting
/// from the given arena watermark: with `watermark == 0` the first round is a
/// full match (the from-scratch build), with a positive watermark only
/// homomorphisms touching an atom inserted at or after it are matched — the
/// semi-naive *advance* used by [`crate::incremental::IncrementalSmsState`]
/// to push an already-closed state forward after new facts were inserted.
///
/// Sound for incremental callers because the pre-watermark state is a
/// fixpoint of the closure operator over the same domain: every homomorphism
/// not touching the suffix was already fired.
pub(crate) fn advance_possibly_true_closure(
    closure: &mut Interpretation,
    program: &DisjunctiveProgram,
    plans: &CompiledDisjunctiveRuleSet,
    existentials_by_rule: &[Vec<Vec<ntgd_core::Symbol>>],
    domain: &Domain,
    limits: &GroundingLimits,
    initial_watermark: usize,
) -> Result<(), GroundingError> {
    let empty = Substitution::new();
    // Semi-naive rounds: after the first round, rule bodies are only matched
    // against homomorphisms that use an atom derived in the previous round
    // (`watermark` is the closure size before that round's insertions).
    let mut watermark = initial_watermark;
    let rule_indices: Vec<usize> = (0..program.rules().len()).collect();
    loop {
        let next_watermark = closure.len();
        // One work item per rule; each worker reads the frozen closure and
        // collects its candidate additions locally.  Duplicates across
        // workers are fine — the merge below is a set union.
        let work = if watermark == 0 {
            closure.len().max(1)
        } else {
            closure.len().saturating_sub(watermark)
        };
        let threads = parallel::threads_for(work);
        let closure_ref = &*closure;
        let buckets: Vec<Vec<Atom>> =
            parallel::par_map_with(&rule_indices, threads, |_, &index| {
                let rule = &program.rules()[index];
                let existentials = &existentials_by_rule[index];
                let mut local: Vec<Atom> = Vec::new();
                plans.rule(index).body_positive().for_each_delta(
                    closure_ref,
                    &empty,
                    watermark,
                    &mut |binding| {
                        // Materialised lazily: disjuncts without existential
                        // variables instantiate straight off the slot binding.
                        let mut h: Option<Substitution> = None;
                        for (d, disjunct) in rule.disjuncts().iter().enumerate() {
                            let exist = &existentials[d];
                            if exist.is_empty() {
                                for atom in disjunct {
                                    let ground = binding.apply_atom(atom);
                                    if ground.is_ground() && !closure_ref.contains(&ground) {
                                        local.push(ground);
                                    }
                                }
                                continue;
                            }
                            let h = h.get_or_insert_with(|| binding.to_substitution());
                            for_each_assignment(exist, domain, h, &mut |assignment| {
                                for atom in disjunct {
                                    let ground = assignment.apply_atom(atom);
                                    if ground.is_ground() && !closure_ref.contains(&ground) {
                                        local.push(ground);
                                    }
                                }
                            });
                        }
                        ControlFlow::Continue(())
                    },
                );
                local
            });
        let additions: BTreeSet<Atom> = buckets.into_iter().flatten().collect();
        if additions.is_empty() {
            return Ok(());
        }
        for a in additions {
            closure.insert(a);
        }
        watermark = next_watermark;
        if closure.len() > limits.max_atoms {
            return Err(GroundingError::TooLarge {
                atoms: closure.len(),
                rules: 0,
            });
        }
    }
}

/// One rule instance collected by the parallel instantiation pass, before
/// the sequential intern: positive-body and head atoms are already resolved
/// to closure ids (the closure is interned up front and read-only), while
/// negated-body atoms — the only atoms that may be new to the table — stay
/// as atoms until the single-threaded intern pass assigns their ids.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct PendingGroundRule {
    body_pos: Vec<usize>,
    body_neg: Vec<Atom>,
    neg_domain_terms: Vec<Term>,
    disjuncts: Vec<Vec<usize>>,
    source_rule: usize,
}

/// Pass 1 of the instantiation (parallel): per-rule buffers of ground rule
/// instances whose positive-body homomorphism touches a closure atom at or
/// after `watermark` (with `watermark == 0`: every homomorphism — the
/// from-scratch build).  Positive-body and head atoms are resolved against
/// the read-only `atoms` table, which must already contain the full closure.
///
/// `already_collected` seeds the cross-worker tally against `limits` (the
/// number of deduplicated instances a previous pass already produced), so an
/// incremental append stops collecting as soon as the *global* cap is
/// certain to be exceeded.
#[allow(clippy::too_many_arguments)] // crate-internal plumbing shared by the batch and incremental grounders
pub(crate) fn collect_pending(
    program: &DisjunctiveProgram,
    plans: &CompiledDisjunctiveRuleSet,
    existentials_by_rule: &[Vec<Vec<ntgd_core::Symbol>>],
    domain: &Domain,
    closure: &Interpretation,
    watermark: usize,
    atoms: &AtomTable,
    limits: &GroundingLimits,
    already_collected: usize,
) -> Vec<Vec<PendingGroundRule>> {
    let empty = Substitution::new();
    let rule_indices: Vec<usize> = (0..program.rules().len()).collect();
    let threads = parallel::threads_for(closure.len().saturating_sub(watermark).max(1));
    // Cross-worker tally of *deduplicated* instances collected so far.
    // Duplicates can only arise within one rule (`source_rule` is part of
    // rule identity), so this sum equals the global deduplicated count; once
    // it exceeds the cap the grounding is guaranteed to fail, and every
    // worker stops collecting — the limit bounds memory globally again, not
    // merely per rule.  Success-path results are untouched (workers only
    // stop when failure is certain), so determinism is preserved.
    let collected = std::sync::atomic::AtomicUsize::new(already_collected);
    let collected_ref = &collected;
    parallel::par_map_with(&rule_indices, threads, |_, &ridx| {
        let rule = &program.rules()[ridx];
        let body_atoms: Vec<Atom> = rule.body_positive().into_iter().cloned().collect();
        let neg_atoms: Vec<Atom> = rule.body_negative().into_iter().cloned().collect();
        let existentials = &existentials_by_rule[ridx];
        let mut local: Vec<PendingGroundRule> = Vec::new();
        let mut local_seen: BTreeSet<PendingGroundRule> = BTreeSet::new();
        plans.rule(ridx).body_positive().for_each_delta(
            closure,
            &empty,
            watermark,
            &mut |binding| {
                let body_pos: Vec<usize> = body_atoms
                    .iter()
                    .map(|a| {
                        atoms
                            .id_of(&binding.apply_atom(a))
                            .expect("positive body instances are in the closure")
                    })
                    .collect();
                let pos_terms: BTreeSet<Term> = body_atoms
                    .iter()
                    .flat_map(|a| binding.apply_atom(a).terms().copied().collect::<Vec<_>>())
                    .collect();
                let mut body_neg = Vec::new();
                let mut neg_domain_terms: BTreeSet<Term> = BTreeSet::new();
                for a in &neg_atoms {
                    let ground = binding.apply_atom(a);
                    debug_assert!(
                        ground.is_ground(),
                        "safety guarantees ground negative bodies"
                    );
                    for t in ground.terms() {
                        if !pos_terms.contains(t) {
                            neg_domain_terms.insert(*t);
                        }
                    }
                    body_neg.push(ground);
                }
                let mut disjuncts: Vec<Vec<usize>> = Vec::new();
                let mut h: Option<Substitution> = None;
                for (d, disjunct) in rule.disjuncts().iter().enumerate() {
                    let exist = &existentials[d];
                    if exist.is_empty() {
                        let conj: Vec<usize> = disjunct
                            .iter()
                            .map(|atom| {
                                atoms
                                    .id_of(&binding.apply_atom(atom))
                                    .expect("head instantiations are in the closure")
                            })
                            .collect();
                        disjuncts.push(conj);
                        continue;
                    }
                    let h = h.get_or_insert_with(|| binding.to_substitution());
                    for_each_assignment(exist, domain, h, &mut |assignment| {
                        let conj: Vec<usize> = disjunct
                            .iter()
                            .map(|atom| {
                                let ground = assignment.apply_atom(atom);
                                atoms
                                    .id_of(&ground)
                                    .expect("head instantiations are in the closure")
                            })
                            .collect();
                        disjuncts.push(conj);
                    });
                }
                disjuncts.sort();
                disjuncts.dedup();
                let pending = PendingGroundRule {
                    body_pos,
                    body_neg,
                    neg_domain_terms: neg_domain_terms.into_iter().collect(),
                    disjuncts,
                    source_rule: ridx,
                };
                if local_seen.insert(pending.clone()) {
                    local.push(pending);
                    collected_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                if collected_ref.load(std::sync::atomic::Ordering::Relaxed) > limits.max_rules {
                    // Over the global limit: the sequential pass below is
                    // certain to report `TooLarge`, so stop paying for
                    // instances that can never be used.
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            },
        );
        local
    })
}

/// Pass 2 of the instantiation (sequential): interns negated-body atoms —
/// the only atoms that may be new to the table — walking the per-rule
/// buffers in rule order, deduplicates against `seen` (which persists across
/// incremental appends) and pushes the finalised rules.  Atoms newly added
/// to the table are flagged `false` in `possibly_true` (negated-body atoms
/// outside the closure are never possibly true).
pub(crate) fn intern_pending(
    buckets: Vec<Vec<PendingGroundRule>>,
    atoms: &mut AtomTable,
    possibly_true: &mut Vec<bool>,
    rules: &mut Vec<GroundSmsRule>,
    seen: &mut BTreeSet<GroundSmsRule>,
    limits: &GroundingLimits,
) -> Result<(), GroundingError> {
    debug_assert_eq!(atoms.len(), possibly_true.len());
    for bucket in buckets {
        for pending in bucket {
            let body_neg: Vec<usize> = pending
                .body_neg
                .into_iter()
                .map(|ground| {
                    let id = atoms.intern(ground);
                    if id == possibly_true.len() {
                        possibly_true.push(false);
                    }
                    id
                })
                .collect();
            let ground_rule = GroundSmsRule {
                body_pos: pending.body_pos,
                body_neg,
                neg_domain_terms: pending.neg_domain_terms,
                disjuncts: pending.disjuncts,
                source_rule: pending.source_rule,
            };
            if seen.insert(ground_rule.clone()) {
                rules.push(ground_rule);
            }
            if rules.len() > limits.max_rules {
                return Err(GroundingError::TooLarge {
                    atoms: atoms.len(),
                    rules: rules.len(),
                });
            }
        }
    }
    Ok(())
}

/// Grounds `SM[D,Σ]` over the given domain.  Every rule is compiled into its
/// plan form exactly once per call; the closure rounds and the instantiation
/// phase execute the cached plans.
///
/// The instantiation phase mirrors the closure's buffer-merge pattern: a
/// **parallel collect** (one work item per rule on the persistent pool, each
/// enumerating its rule's bindings over the frozen closure and resolving
/// closure ids read-only) followed by a **sequential intern** that walks the
/// per-rule buffers in rule order, assigns table ids to negated-body atoms
/// and applies the dedup/limit checks — the one remaining sequential
/// bottleneck, now reduced to hash-map insertions.  Because duplicate rule
/// instances can only arise within one rule (`source_rule` is part of rule
/// identity), per-rule deduplication inside the workers is exact, and the
/// merged stream — and hence every table id — is identical to the
/// single-threaded enumeration at every thread count.
pub fn ground_sms(
    database: &Database,
    program: &DisjunctiveProgram,
    domain: &Domain,
    limits: &GroundingLimits,
) -> Result<GroundSmsProgram, GroundingError> {
    let plans =
        CompiledDisjunctiveRuleSet::from_disjunctive(program, &database.to_interpretation());
    ground_sms_with_plans(database, program, &plans, domain, limits).map(|(ground, _)| ground)
}

/// [`ground_sms`] against an externally compiled (and therefore reusable)
/// rule-plan set; additionally returns the instance-dedup set so that
/// incremental callers can keep extending the grounding without
/// re-deduplicating from scratch.
pub(crate) fn ground_sms_with_plans(
    database: &Database,
    program: &DisjunctiveProgram,
    plans: &CompiledDisjunctiveRuleSet,
    domain: &Domain,
    limits: &GroundingLimits,
) -> Result<(GroundSmsProgram, BTreeSet<GroundSmsRule>), GroundingError> {
    let existentials_by_rule = existentials_for_program(program);
    let closure = possibly_true_closure(
        database,
        program,
        plans,
        &existentials_by_rule,
        domain,
        limits,
    )?;
    let mut atoms = AtomTable::new();
    // Intern the closure first so that possibly-true atoms occupy a prefix of
    // the table; `possibly_true` is then extended as negative-body atoms are
    // interned.
    for a in closure.sorted_atoms() {
        atoms.intern(a);
    }
    let mut possibly_true = vec![true; atoms.len()];

    // Pass 1 (parallel): per-rule instantiation buffers over the frozen
    // closure and the read-only prefix of the atom table.
    let buckets = collect_pending(
        program,
        plans,
        &existentials_by_rule,
        domain,
        &closure,
        0,
        &atoms,
        limits,
        0,
    );

    // Pass 2 (sequential): intern negated-body atoms and finalise, walking
    // the buffers in rule order — the same order, and therefore the same
    // table ids, as the previous single-threaded enumeration.
    let mut rules: Vec<GroundSmsRule> = Vec::new();
    let mut seen: BTreeSet<GroundSmsRule> = BTreeSet::new();
    intern_pending(
        buckets,
        &mut atoms,
        &mut possibly_true,
        &mut rules,
        &mut seen,
        limits,
    )?;

    let facts: Vec<usize> = database
        .facts()
        .map(|f| atoms.id_of(f).expect("database atoms are in the closure"))
        .collect();
    Ok((
        GroundSmsProgram {
            atoms,
            possibly_true,
            facts,
            rules,
            domain: domain.clone(),
            closure,
        },
        seen,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{build_domain, NullBudget};
    use ntgd_core::{atom, cst};
    use ntgd_parser::{parse_database, parse_unit};

    fn setup(db: &str, rules: &str, budget: NullBudget) -> GroundSmsProgram {
        let db = parse_database(db).unwrap();
        let prog = parse_unit(rules).unwrap().disjunctive_program().unwrap();
        let dom = build_domain(&db, &prog, None, budget);
        ground_sms(&db, &prog, &dom, &GroundingLimits::default()).unwrap()
    }

    #[test]
    fn existentials_expand_into_one_disjunct_per_domain_element() {
        let g = setup(
            "person(alice).",
            "person(X) -> hasFather(X, Y).",
            NullBudget::Auto,
        );
        // Domain = {alice, _n0}; one rule instance with two disjuncts.
        assert_eq!(g.domain.len(), 2);
        assert_eq!(g.rules.len(), 1);
        assert_eq!(g.rules[0].disjuncts.len(), 2);
        // Closure: person(alice), hasFather(alice, alice), hasFather(alice, _n0).
        assert_eq!(g.possibly_true_count(), 3);
        assert!(g
            .closure
            .contains(&atom("hasFather", vec![cst("alice"), cst("alice")])));
    }

    #[test]
    fn negative_body_atoms_are_interned_but_not_possibly_true() {
        let g = setup("p(a).", "p(X), not q(X) -> r(X).", NullBudget::None);
        let q_id = g.atoms.id_of(&atom("q", vec![cst("a")])).unwrap();
        assert!(!g.possibly_true[q_id]);
        let r_id = g.atoms.id_of(&atom("r", vec![cst("a")])).unwrap();
        assert!(g.possibly_true[r_id]);
        assert_eq!(g.rules.len(), 1);
        assert_eq!(g.rules[0].body_neg, vec![q_id]);
        assert!(g.rules[0].neg_domain_terms.is_empty());
    }

    #[test]
    fn constants_only_in_negative_literals_need_domain_guards() {
        let g = setup(
            "p(a).",
            "p(X), not q(X, special) -> r(X).",
            NullBudget::None,
        );
        assert_eq!(g.rules[0].neg_domain_terms, vec![cst("special")]);
    }

    #[test]
    fn disjunctive_heads_produce_multiple_disjunct_groups() {
        let g = setup(
            "node(v).",
            "node(X) -> red(X) | green(X).",
            NullBudget::None,
        );
        assert_eq!(g.rules.len(), 1);
        assert_eq!(g.rules[0].disjuncts.len(), 2);
        // Both colourings are possibly true.
        assert!(g.closure.contains(&atom("red", vec![cst("v")])));
        assert!(g.closure.contains(&atom("green", vec![cst("v")])));
    }

    #[test]
    fn rules_with_empty_bodies_fire_unconditionally() {
        let g = setup("dom(a).", "-> zero(X).", NullBudget::None);
        assert_eq!(g.rules.len(), 1);
        assert!(g.rules[0].body_pos.is_empty());
        // zero(t) for every domain element t is possibly true.
        assert!(g.closure.contains(&atom("zero", vec![cst("a")])));
    }

    #[test]
    fn grounding_respects_limits() {
        let db = parse_database("p(a). p(b). p(c). p(d).").unwrap();
        let prog = parse_unit("p(X), p(Y) -> q(X, Y, Z).")
            .unwrap()
            .disjunctive_program()
            .unwrap();
        let dom = build_domain(&db, &prog, None, NullBudget::Exact(4));
        let limits = GroundingLimits {
            max_atoms: 10,
            max_rules: 10,
        };
        assert!(ground_sms(&db, &prog, &dom, &limits).is_err());
    }

    #[test]
    fn atom_table_round_trips() {
        let mut t = AtomTable::new();
        let a = atom("p", vec![cst("a")]);
        let id = t.intern(a.clone());
        assert_eq!(t.intern(a.clone()), id);
        assert_eq!(t.id_of(&a), Some(id));
        assert_eq!(t.atom(id), &a);
        assert_eq!(t.len(), 1);
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn atom_table_truncate_drops_a_suffix_and_reuses_ids() {
        let mut t = AtomTable::new();
        let a = atom("p", vec![cst("a")]);
        let b = atom("p", vec![cst("b")]);
        let c = atom("q", vec![cst("c")]);
        assert_eq!(t.intern(a.clone()), 0);
        let watermark = t.len();
        assert_eq!(t.intern(b.clone()), 1);
        assert_eq!(t.intern(c.clone()), 2);
        t.truncate(watermark);
        assert_eq!(t.len(), 1);
        assert_eq!(t.id_of(&a), Some(0));
        assert_eq!(t.id_of(&b), None);
        assert_eq!(t.id_of(&c), None);
        // Re-interning after a truncate reuses the freed dense ids.
        assert_eq!(t.intern(c.clone()), 1);
        assert_eq!(t.atom(1), &c);
    }

    #[test]
    fn atom_table_truncate_edge_cases_mirror_the_arena() {
        let mut t = AtomTable::new();
        let a = atom("p", vec![cst("a")]);
        t.intern(a.clone());
        // Truncate past the end: a no-op.
        t.truncate(100);
        assert_eq!(t.len(), 1);
        // A no-op intern (already present) does not grow the table, so a
        // truncate to the same watermark keeps everything.
        let watermark = t.len();
        t.intern(a.clone());
        t.truncate(watermark);
        assert_eq!(t.id_of(&a), Some(0));
        // Double-truncate to the same mark is idempotent.
        t.intern(atom("q", vec![cst("b")]));
        t.truncate(watermark);
        t.truncate(watermark);
        assert_eq!(t.len(), 1);
        assert_eq!(t.id_of(&a), Some(0));
        // Truncate to zero empties the table and restarts ids at 0.
        t.truncate(0);
        assert!(t.is_empty());
        assert_eq!(t.id_of(&a), None);
        assert_eq!(t.intern(atom("r", vec![cst("z")])), 0);
    }

    #[test]
    fn facts_are_registered() {
        let g = setup("p(a). p(b).", "p(X) -> q(X).", NullBudget::None);
        assert_eq!(g.facts.len(), 2);
        for &f in &g.facts {
            assert!(g.possibly_true[f]);
        }
    }
}
