//! **Incremental `MODELS`**: a session-resident possibly-true closure and
//! grounding that survive across fact assertions and retractions.
//!
//! The batch pipeline rebuilds `SM[D,Σ]` from scratch for every request:
//! candidate domain, possibly-true closure, rule instantiation, then the
//! CEGAR search.  A long-lived reasoning session (see `ntgd-server`) asserts
//! small fact deltas between `MODELS` requests, so almost all of that work
//! is identical from request to request.  [`IncrementalSmsState`] keeps the
//! expensive middle of the pipeline alive:
//!
//! * the **possibly-true closure** is advanced semi-naively — the facts
//!   asserted since the last request seed the closure worklist at the
//!   pre-assert watermark (`advance_possibly_true_closure`), so matching
//!   cost is proportional to the delta neighbourhood, never the instance;
//! * the **grounding** appends only rule instances whose positive-body
//!   homomorphism touches a closure-new atom (`collect_pending` with the
//!   same watermark), executing the rule plans compiled once per program;
//! * the **atom table** is truncatable ([`crate::grounding::AtomTable::truncate`]), so
//!   `RETRACT-TO` rolls closure, table and rule list back to an earlier
//!   snapshot in `O(retracted)` — exactly like the arena epoch rollback of
//!   [`ntgd_core::Interpretation::truncate`].
//!
//! # Caching contract (what invalidates what)
//!
//! The cached state is a function of `(program, candidate domain, live fact
//! set)`.  Per request the state recomputes the candidate domain — exactly
//! [`build_domain`], so the grounding is semantically identical to the
//! from-scratch engine's and an *untruncated* model enumeration returns the
//! same set.  (The cached atom table orders delta atoms by arrival rather
//! than by the fresh build's sorted intern, so a `max_models`-truncated
//! enumeration may sample different members of that set than a from-scratch
//! run — on either path, capped listings are samples, not a canonical
//! prefix.)  Then:
//!
//! * **unchanged fact set** → the cached grounding is returned untouched
//!   (a *hit*);
//! * **new facts, same domain** → semi-naive closure advance + grounding
//!   append (a *reuse*): sound because the pre-assert state is a fixpoint of
//!   the closure operator over the same domain, so the delta worklist finds
//!   exactly the new derivations;
//! * **domain changed** (a new constant entered the active domain, or the
//!   `Auto` null budget moved) → full rebuild (a *rebuild*): a grown domain
//!   retroactively adds existential instantiations to *old* rule instances,
//!   which no append-only advance can express;
//! * **retraction** → truncate back to the newest snapshot at or below the
//!   target fact count (a *rollback*); retracting past the oldest snapshot
//!   drops the state entirely (an *invalidation*, the next request
//!   rebuilds).
//!
//! For programs whose positive part has no existential variables the `Auto`
//! null budget is provably zero, so the per-request domain recomputation
//! skips the restricted chase entirely; programs *with* existentials pay the
//! same `Auto`-budget chase as the from-scratch engine (the budget is
//! defined by a from-scratch restricted chase and is not incrementalisable
//! without changing answers).
//!
//! All counters and the cached state itself are deterministic across worker
//! counts and pool modes: every parallel pass used here inherits the
//! ordered-merge contract of [`ntgd_core::parallel`].

use std::collections::BTreeSet;
use std::sync::Arc;

use ntgd_core::{
    obs, Atom, CompiledDisjunctiveRuleSet, Database, DisjunctiveProgram, Interpretation,
};

use crate::grounding::{
    advance_possibly_true_closure, collect_pending, existentials_for_program,
    ground_sms_with_plans, intern_pending, GroundSmsProgram, GroundSmsRule, GroundingError,
    GroundingLimits,
};
use crate::universe::{build_domain, NullBudget};

/// Process-wide closure-maintenance counters: cheap-path advances versus
/// full regroundings (the expensive path an operator wants to watch).
static SMS_CLOSURE_ADVANCES: obs::Counter = obs::Counter::new("sms.closure_advances");
static SMS_GROUNDINGS: obs::Counter = obs::Counter::new("sms.groundings");

/// Cumulative reuse counters of one [`IncrementalSmsState`].
///
/// Every counter is a pure function of the request history (never of thread
/// count, pool mode or timing), so services can assert them in transcripts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SmsReuseStats {
    /// Requests answered by building closure + grounding from scratch.
    pub rebuilds: u64,
    /// Requests answered by advancing the cached closure/grounding
    /// semi-naively from the fact delta.
    pub reuses: u64,
    /// Requests answered with the cached grounding untouched (no new facts).
    pub hits: u64,
    /// Retractions absorbed by truncating to an earlier snapshot.
    pub rollbacks: u64,
    /// Retractions below the oldest snapshot (state dropped; the next
    /// request rebuilds).
    pub invalidations: u64,
}

/// One rollback point of the cached state: everything needed to truncate
/// closure, atom table, `possibly_true` flags, rule list and fact ids back
/// to the grounding of an earlier fact prefix.
///
/// Deliberately a handful of watermarks, not copies of derivable data: the
/// candidate domain is invariant across the snapshots of one live state
/// (an advance requires domain equality; a domain change rebuilds and
/// resets the snapshot list), and the database-fact identifiers are
/// re-derived lazily after a rollback (`facts_stale`) — so a long session
/// retains O(1) memory per snapshot, not O(facts).
#[derive(Clone, Copy, Debug)]
struct SmsSnapshot {
    /// Number of session facts this snapshot grounds.
    facts: usize,
    /// Closure arena watermark.
    closure_len: usize,
    /// Atom-table watermark.
    atoms_len: usize,
    /// Ground-rule watermark.
    rules_len: usize,
    /// `flip_log` watermark (possibly-true flags flipped after this point
    /// are reset on rollback).
    flips: usize,
}

/// A frozen SMS grounding over a fixed fact prefix, shareable between
/// sessions through an [`Arc`]: the compiled disjunctive plans, the grounded
/// program (whose possibly-true closure is itself a frozen
/// [`ntgd_core::InterpretationBase`] fork, so adopting it copies no closure
/// atoms), and the dedup set — everything a forked session needs to answer
/// `MODELS` without re-grounding the base.  Produced by
/// [`IncrementalSmsState::freeze`], consumed by
/// [`IncrementalSmsState::with_base`].
pub struct SmsBaseSnapshot {
    /// Rule plans compiled when the snapshot was built.
    plans: Arc<CompiledDisjunctiveRuleSet>,
    /// The grounding of exactly `facts`.
    ground: GroundSmsProgram,
    /// Instance dedup set at the freeze.
    seen: BTreeSet<GroundSmsRule>,
    /// The fact log the snapshot grounds (adoption verifies the session's
    /// log still extends this prefix — a session that retracted below the
    /// fork watermark and regrew differently must not adopt).
    facts: Vec<Atom>,
}

impl SmsBaseSnapshot {
    /// Number of possibly-true closure atoms in the frozen grounding.
    pub fn closure_atoms(&self) -> usize {
        self.ground.closure.len()
    }

    /// Number of ground rule instances in the frozen grounding.
    pub fn ground_rules(&self) -> usize {
        self.ground.rules.len()
    }

    /// Number of session facts the snapshot grounds.
    pub fn facts_consumed(&self) -> usize {
        self.facts.len()
    }
}

/// The live cached grounding plus the bookkeeping to advance and roll it
/// back.
struct LiveState {
    /// Rule plans, compiled once per rebuild and executed by every advance
    /// (shared with the base snapshot when adopted).
    plans: Arc<CompiledDisjunctiveRuleSet>,
    /// The maintained grounding (closure, atom table, flags, rules, facts).
    ground: GroundSmsProgram,
    /// Instance dedup across advances (duplicate instances can arise from
    /// distinct homomorphisms that agree on the instantiated rule).
    seen: BTreeSet<GroundSmsRule>,
    /// Atom ids whose `possibly_true` flag was flipped `false → true` by an
    /// advance (a negated-body atom that later entered the closure), in flip
    /// order — the rollback log for those flags.
    flip_log: Vec<usize>,
    /// Snapshots in fact-count order (always at least one: the rebuild).
    snapshots: Vec<SmsSnapshot>,
    /// How many facts of the session log this state has consumed.
    facts_consumed: usize,
    /// Set by a rollback: `ground.facts` lists ids for retracted facts and
    /// must be re-derived from the live fact log before the grounding is
    /// handed out (the ids themselves are stable — only the list is stale).
    facts_stale: bool,
}

/// Reusable SMS grounding state for one loaded program: see the module
/// documentation for the caching contract.
pub struct IncrementalSmsState {
    program: Arc<DisjunctiveProgram>,
    null_budget: NullBudget,
    limits: GroundingLimits,
    existentials_by_rule: Vec<Vec<Vec<ntgd_core::Symbol>>>,
    /// Whether any rule has an existential variable (when not, the `Auto`
    /// null budget is zero without running a chase).
    has_existentials: bool,
    /// A shared frozen grounding of the session's base fact prefix, if this
    /// state was forked from one.  Consulted only while `live` is `None`:
    /// the first request over the exact base prefix is answered zero-copy,
    /// and the first request over an extension adopts (clones) the snapshot
    /// instead of rebuilding.
    base: Option<Arc<SmsBaseSnapshot>>,
    live: Option<LiveState>,
    stats: SmsReuseStats,
}

impl IncrementalSmsState {
    /// Creates an empty state for a program; the first
    /// [`IncrementalSmsState::ensure_current`] call performs the initial
    /// (from-scratch) build.
    pub fn new(
        program: Arc<DisjunctiveProgram>,
        null_budget: NullBudget,
        limits: GroundingLimits,
    ) -> IncrementalSmsState {
        let existentials_by_rule = existentials_for_program(&program);
        let has_existentials = existentials_by_rule
            .iter()
            .flatten()
            .any(|exist| !exist.is_empty());
        IncrementalSmsState {
            program,
            null_budget,
            limits,
            existentials_by_rule,
            has_existentials,
            base: None,
            live: None,
            stats: SmsReuseStats::default(),
        }
    }

    /// Attaches a shared frozen base snapshot (see [`SmsBaseSnapshot`]):
    /// requests over the snapshot's fact prefix (or an extension of it) are
    /// answered from the snapshot instead of rebuilding.
    pub fn with_base(mut self, base: Arc<SmsBaseSnapshot>) -> IncrementalSmsState {
        self.base = Some(base);
        self
    }

    /// Freezes this state's live grounding into a shareable
    /// [`SmsBaseSnapshot`] of exactly `facts` (the state must be current for
    /// that log).  Returns `None` when there is nothing frozen-worthy: no
    /// live grounding, or one for a different fact prefix.
    pub fn freeze(mut self, facts: &[Atom]) -> Option<Arc<SmsBaseSnapshot>> {
        let mut live = self.live.take()?;
        if live.facts_stale {
            Self::refresh_facts(&mut live, facts);
        }
        if live.facts_consumed != facts.len() {
            return None;
        }
        // Freeze the closure arena so that adopting the snapshot copies no
        // closure atoms: adopters fork it and grow a private overlay.
        let closure = std::mem::take(&mut live.ground.closure);
        live.ground.closure = Interpretation::fork(&closure.freeze());
        Some(Arc::new(SmsBaseSnapshot {
            plans: live.plans,
            ground: live.ground,
            seen: live.seen,
            facts: facts.to_vec(),
        }))
    }

    /// The cumulative reuse counters.
    pub fn stats(&self) -> SmsReuseStats {
        self.stats
    }

    /// Current possibly-true closure size (0 before the first build).
    pub fn closure_atoms(&self) -> usize {
        self.live
            .as_ref()
            .map(|live| live.ground.closure.len())
            .unwrap_or(0)
    }

    /// Current number of cached ground rule instances.
    pub fn ground_rules(&self) -> usize {
        self.live
            .as_ref()
            .map(|live| live.ground.rules.len())
            .unwrap_or(0)
    }

    /// Returns `true` if `facts` extends (or equals) the base snapshot's
    /// fact prefix.
    fn extends_base(base: &SmsBaseSnapshot, facts: &[Atom]) -> bool {
        facts.len() >= base.facts.len() && facts[..base.facts.len()] == base.facts[..]
    }

    /// A live state adopted from a shared snapshot: clones the grounding
    /// (the closure clone is O(1) — it shares the frozen arena) and anchors
    /// the snapshot list at the base prefix, so later retractions can roll
    /// back to the fork watermark but never into the shared base.
    fn adopt(base: &SmsBaseSnapshot) -> LiveState {
        LiveState {
            plans: Arc::clone(&base.plans),
            ground: base.ground.clone(),
            seen: base.seen.clone(),
            flip_log: Vec::new(),
            snapshots: vec![SmsSnapshot {
                facts: base.facts.len(),
                closure_len: base.ground.closure.len(),
                atoms_len: base.ground.atoms.len(),
                rules_len: base.ground.rules.len(),
                flips: 0,
            }],
            facts_consumed: base.facts.len(),
            facts_stale: false,
        }
    }

    /// Brings the cached grounding up to date with the live fact log and
    /// returns it.  `facts` must be a deduplicated log that extends (or
    /// equals) the prefix this state has already consumed — retractions go
    /// through [`IncrementalSmsState::retract_to_facts`] first, which the
    /// session guarantees.
    ///
    /// On error the state is left at its previous snapshot (advances are
    /// transactional), except that a failed *rebuild* drops the state.
    ///
    /// # Panics
    ///
    /// Panics if a fact contains a variable or a labelled null (the session
    /// validates facts before accepting them, like
    /// [`Database::from_facts`]).
    pub fn ensure_current(&mut self, facts: &[Atom]) -> Result<&GroundSmsProgram, GroundingError> {
        if let Some(live) = self.live.as_mut() {
            if live.facts_consumed == facts.len() {
                if live.facts_stale {
                    Self::refresh_facts(live, facts);
                }
                self.stats.hits += 1;
                return Ok(&self.live.as_ref().expect("checked above").ground);
            }
        } else if let Some(base) = &self.base {
            if Self::extends_base(base, facts) {
                if base.facts.len() == facts.len() {
                    // Zero-copy shared hit: the request asks for exactly the
                    // frozen base prefix.
                    self.stats.hits += 1;
                    return Ok(&self.base.as_ref().expect("checked above").ground);
                }
                // The log extends the base: adopt the snapshot and let the
                // advance/rebuild logic below take it from there.
                self.live = Some(Self::adopt(base));
            }
        }
        let database =
            Database::from_facts(facts.iter().cloned()).expect("session facts are constant-only");
        let budget = match self.null_budget {
            // No existential variables anywhere: the restricted chase of the
            // positive part cannot invent a null, so the Auto budget is zero
            // — skip the per-request chase.
            NullBudget::Auto | NullBudget::AutoExact if !self.has_existentials => {
                NullBudget::Exact(0)
            }
            budget => budget,
        };
        let domain = build_domain(&database, &self.program, None, budget);
        if let Some(live) = self.live.as_mut() {
            if live.facts_consumed <= facts.len() && live.ground.domain == domain {
                let _advance = obs::span("sms.advance");
                SMS_CLOSURE_ADVANCES.incr();
                match Self::advance(
                    live,
                    &self.program,
                    &self.existentials_by_rule,
                    &self.limits,
                    facts,
                ) {
                    Ok(()) => {
                        self.stats.reuses += 1;
                        return Ok(&self.live.as_ref().expect("advanced above").ground);
                    }
                    Err(error) => return Err(error),
                }
            }
        }
        self.stats.rebuilds += 1;
        SMS_GROUNDINGS.incr();
        let _grounding = obs::span("sms.grounding");
        let plans = Arc::new(CompiledDisjunctiveRuleSet::from_disjunctive(
            &self.program,
            &database.to_interpretation(),
        ));
        let built = ground_sms_with_plans(&database, &self.program, &plans, &domain, &self.limits);
        let (ground, seen) = match built {
            Ok(result) => result,
            Err(error) => {
                // A failed rebuild leaves nothing to reuse: the old state
                // (if any) grounds a different domain or fact prefix.
                self.live = None;
                return Err(error);
            }
        };
        let snapshot = SmsSnapshot {
            facts: facts.len(),
            closure_len: ground.closure.len(),
            atoms_len: ground.atoms.len(),
            rules_len: ground.rules.len(),
            flips: 0,
        };
        self.live = Some(LiveState {
            plans,
            ground,
            seen,
            flip_log: Vec::new(),
            snapshots: vec![snapshot],
            facts_consumed: facts.len(),
            facts_stale: false,
        });
        Ok(&self.live.as_ref().expect("just built").ground)
    }

    /// Rolls the cached state back so it grounds at most the first `facts`
    /// session facts: truncates to the newest snapshot at or below that
    /// count (`O(atoms + rules retracted)`), or drops the state when no such
    /// snapshot survives.  A no-op when the state has not consumed past the
    /// target.
    pub fn retract_to_facts(&mut self, facts: usize) {
        let Some(live) = self.live.as_mut() else {
            return;
        };
        if live.facts_consumed <= facts {
            return;
        }
        while live.snapshots.last().is_some_and(|s| s.facts > facts) {
            live.snapshots.pop();
        }
        match live.snapshots.last() {
            None => {
                self.live = None;
                self.stats.invalidations += 1;
            }
            Some(&snapshot) => {
                Self::roll_back(live, &snapshot);
                self.stats.rollbacks += 1;
            }
        }
    }

    /// Advances a live state to cover `facts`: inserts the delta facts,
    /// closes semi-naively from the pre-assert watermark, interns the
    /// closure-new atoms and appends the rule instances their bindings
    /// enable.  Transactional: on error the state is truncated back to the
    /// pre-advance snapshot.
    fn advance(
        live: &mut LiveState,
        program: &DisjunctiveProgram,
        existentials_by_rule: &[Vec<Vec<ntgd_core::Symbol>>],
        limits: &GroundingLimits,
        facts: &[Atom],
    ) -> Result<(), GroundingError> {
        let before = SmsSnapshot {
            facts: live.facts_consumed,
            closure_len: live.ground.closure.len(),
            atoms_len: live.ground.atoms.len(),
            rules_len: live.ground.rules.len(),
            flips: live.flip_log.len(),
        };
        let closure_watermark = live.ground.closure.len();
        for fact in &facts[live.facts_consumed..] {
            live.ground.closure.insert(fact.clone());
        }
        let advanced = advance_possibly_true_closure(
            &mut live.ground.closure,
            program,
            &live.plans,
            existentials_by_rule,
            &live.ground.domain,
            limits,
            closure_watermark,
        )
        .and_then(|()| {
            // Intern the closure delta: brand-new atoms extend the table as
            // possibly true; atoms previously interned as negated-body atoms
            // flip to possibly true (logged for rollback).
            let new_atoms: Vec<Atom> = live
                .ground
                .closure
                .atoms_from(closure_watermark)
                .cloned()
                .collect();
            for atom in new_atoms {
                let id = live.ground.atoms.intern(atom);
                if id == live.ground.possibly_true.len() {
                    live.ground.possibly_true.push(true);
                } else if !live.ground.possibly_true[id] {
                    live.ground.possibly_true[id] = true;
                    live.flip_log.push(id);
                }
            }
            let buckets = collect_pending(
                program,
                &live.plans,
                existentials_by_rule,
                &live.ground.domain,
                &live.ground.closure,
                closure_watermark,
                &live.ground.atoms,
                limits,
                live.ground.rules.len(),
            );
            intern_pending(
                buckets,
                &mut live.ground.atoms,
                &mut live.ground.possibly_true,
                &mut live.ground.rules,
                &mut live.seen,
                limits,
            )
        });
        if let Err(error) = advanced {
            Self::roll_back(live, &before);
            return Err(error);
        }
        // Fact ids: append the delta (ids are stable and the log is
        // deduplicated); after a rollback the whole list is re-derived once.
        if live.facts_stale {
            Self::refresh_facts(live, facts);
        } else {
            let consumed = live.facts_consumed;
            for fact in &facts[consumed..] {
                live.ground.facts.push(
                    live.ground
                        .atoms
                        .id_of(fact)
                        .expect("asserted facts are in the closure"),
                );
            }
        }
        live.facts_consumed = facts.len();
        live.snapshots.push(SmsSnapshot {
            facts: facts.len(),
            closure_len: live.ground.closure.len(),
            atoms_len: live.ground.atoms.len(),
            rules_len: live.ground.rules.len(),
            flips: live.flip_log.len(),
        });
        Ok(())
    }

    /// Re-derives `ground.facts` from the live fact log (every live fact is
    /// in the closure, so its table id exists) and clears the stale flag.
    fn refresh_facts(live: &mut LiveState, facts: &[Atom]) {
        live.ground.facts = facts
            .iter()
            .map(|fact| {
                live.ground
                    .atoms
                    .id_of(fact)
                    .expect("live facts are in the closure")
            })
            .collect();
        live.facts_stale = false;
    }

    /// Truncates a live state to a snapshot, in time proportional to what is
    /// being retracted: flipped flags are reset from the flip log, the atom
    /// table and flag vector are truncated, rule instances are removed from
    /// the dedup set and the closure arena is rolled back.
    fn roll_back(live: &mut LiveState, snapshot: &SmsSnapshot) {
        for id in live.flip_log.drain(snapshot.flips..) {
            live.ground.possibly_true[id] = false;
        }
        live.ground.atoms.truncate(snapshot.atoms_len);
        live.ground.possibly_true.truncate(snapshot.atoms_len);
        live.ground.closure.truncate(snapshot.closure_len);
        for rule in &live.ground.rules[snapshot.rules_len..] {
            live.seen.remove(rule);
        }
        live.ground.rules.truncate(snapshot.rules_len);
        // The domain is invariant across the snapshots of one live state, so
        // nothing to restore there; the fact-id list is re-derived lazily.
        live.facts_stale = true;
        live.facts_consumed = snapshot.facts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SmsEngine, SmsOptions};
    use ntgd_core::Interpretation;
    use ntgd_parser::{parse_database, parse_unit};

    fn state(rules: &str) -> (Arc<DisjunctiveProgram>, IncrementalSmsState) {
        let program = Arc::new(parse_unit(rules).unwrap().disjunctive_program().unwrap());
        let state = IncrementalSmsState::new(
            Arc::clone(&program),
            NullBudget::Auto,
            GroundingLimits::default(),
        );
        (program, state)
    }

    fn facts(text: &str) -> Vec<Atom> {
        parse_database(text).unwrap().facts().cloned().collect()
    }

    /// Sorted model renderings via the incremental state.
    fn models_incremental(
        program: &Arc<DisjunctiveProgram>,
        state: &mut IncrementalSmsState,
        live: &[Atom],
    ) -> Vec<String> {
        let ground = state.ensure_current(live).unwrap();
        let engine = SmsEngine::new_shared(Arc::clone(program));
        let mut rendered: Vec<String> = engine
            .stable_models_over(ground, 1024)
            .unwrap()
            .iter()
            .map(Interpretation::to_string)
            .collect();
        rendered.sort();
        rendered
    }

    /// Sorted model renderings via the from-scratch oracle.
    fn models_oracle(program: &Arc<DisjunctiveProgram>, live: &[Atom]) -> Vec<String> {
        let database = Database::from_facts(live.iter().cloned()).unwrap();
        let engine = SmsEngine::new_shared(Arc::clone(program)).with_options(SmsOptions {
            max_models: 1024,
            ..SmsOptions::default()
        });
        let mut rendered: Vec<String> = engine
            .stable_models(&database)
            .unwrap()
            .iter()
            .map(Interpretation::to_string)
            .collect();
        rendered.sort();
        rendered
    }

    #[test]
    fn advance_matches_the_oracle_when_the_domain_is_stable() {
        // All constants are introduced up front (the `seen` facts), so
        // asserting edges never changes the candidate domain and every
        // request after the first is a semi-naive advance.
        let (program, mut state) =
            state("e(X, Y), not blocked(X) -> r(X, Y). r(X, Y), e(Y, Z) -> r(X, Z).");
        let mut live = facts("seen(a). seen(b). seen(c). blocked(c).");
        assert_eq!(
            models_incremental(&program, &mut state, &live),
            models_oracle(&program, &live)
        );
        for batch in ["e(a, b).", "e(b, c).", "e(c, a)."] {
            live.extend(facts(batch));
            assert_eq!(
                models_incremental(&program, &mut state, &live),
                models_oracle(&program, &live)
            );
        }
        let stats = state.stats();
        assert_eq!(stats.rebuilds, 1, "only the initial build is from scratch");
        assert_eq!(stats.reuses, 3);
    }

    #[test]
    fn domain_growth_forces_a_rebuild_and_still_matches() {
        let (program, mut state) = state("p(X) -> q(X). q(X), not r(X) -> s(X).");
        let mut live = facts("p(a).");
        assert_eq!(
            models_incremental(&program, &mut state, &live),
            models_oracle(&program, &live)
        );
        live.extend(facts("p(b).")); // new constant: the domain grows
        assert_eq!(
            models_incremental(&program, &mut state, &live),
            models_oracle(&program, &live)
        );
        assert_eq!(state.stats().rebuilds, 2);
        assert_eq!(state.stats().reuses, 0);
    }

    #[test]
    fn existential_programs_follow_the_auto_budget() {
        // Asserting a person moves the Auto null budget, so the state must
        // rebuild — and agree with the oracle — at every step.
        let (program, mut state) = state("person(X) -> hasFather(X, Y).");
        let mut live = facts("person(alice).");
        assert_eq!(
            models_incremental(&program, &mut state, &live),
            models_oracle(&program, &live)
        );
        live.extend(facts("person(carol)."));
        assert_eq!(
            models_incremental(&program, &mut state, &live),
            models_oracle(&program, &live)
        );
    }

    #[test]
    fn unchanged_facts_are_cache_hits() {
        let (program, mut state) = state("p(X), not q(X) -> r(X).");
        let live = facts("p(a). q(a).");
        let first = models_incremental(&program, &mut state, &live);
        let second = models_incremental(&program, &mut state, &live);
        assert_eq!(first, second);
        assert_eq!(state.stats().hits, 1);
        assert_eq!(state.stats().rebuilds, 1);
    }

    #[test]
    fn retract_truncates_to_a_snapshot_and_regrows_identically() {
        let (program, mut state) =
            state("e(X, Y) -> n(X). e(X, Y) -> n(Y). n(X), not sink(X) -> live(X).");
        let base = facts("seen(a). seen(b). seen(c). sink(c).");
        let mut live = base.clone();
        let base_models = models_incremental(&program, &mut state, &live);
        live.extend(facts("e(a, b)."));
        models_incremental(&program, &mut state, &live);
        live.extend(facts("e(b, c)."));
        let grown_models = models_incremental(&program, &mut state, &live);

        // Retract to the base prefix: the rollback truncates, never rebuilds.
        state.retract_to_facts(base.len());
        live.truncate(base.len());
        assert_eq!(models_incremental(&program, &mut state, &live), base_models);
        let stats = state.stats();
        assert_eq!(stats.rollbacks, 1);
        assert_eq!(stats.rebuilds, 1, "no re-ground after retract");

        // Re-growing the same facts reaches the same models again.
        live.extend(facts("e(a, b). e(b, c)."));
        assert_eq!(
            models_incremental(&program, &mut state, &live),
            grown_models
        );
        assert_eq!(state.stats().rebuilds, 1);
    }

    #[test]
    fn retract_below_the_oldest_snapshot_invalidates() {
        let (program, mut state) = state("p(X), not q(X) -> r(X).");
        let live = facts("p(a). p(b).");
        models_incremental(&program, &mut state, &live);
        state.retract_to_facts(1);
        assert_eq!(state.stats().invalidations, 1);
        // The next request rebuilds from the shorter prefix and agrees.
        let shorter = facts("p(a).");
        assert_eq!(
            models_incremental(&program, &mut state, &shorter),
            models_oracle(&program, &shorter)
        );
        assert_eq!(state.stats().rebuilds, 2);
    }

    #[test]
    fn asserting_a_previously_negated_atom_flips_it_possibly_true() {
        // q(a) first enters the grounding as a negated-body atom (possibly
        // false); asserting it later must flip the flag — and retracting
        // must flip it back.
        let (program, mut state) = state("p(X), not q(X) -> r(X). seen(X) -> reach(X).");
        let mut live = facts("p(a). seen(a).");
        assert_eq!(
            models_incremental(&program, &mut state, &live),
            models_oracle(&program, &live)
        );
        let marker = live.len();
        live.extend(facts("q(a)."));
        assert_eq!(
            models_incremental(&program, &mut state, &live),
            models_oracle(&program, &live)
        );
        assert_eq!(state.stats().reuses, 1, "q(a) adds no domain term");
        state.retract_to_facts(marker);
        live.truncate(marker);
        assert_eq!(
            models_incremental(&program, &mut state, &live),
            models_oracle(&program, &live)
        );
    }

    #[test]
    fn forked_state_hits_the_shared_snapshot_zero_copy() {
        let (program, mut builder) = state("p(X), not q(X) -> r(X).");
        let base_facts = facts("p(a). q(b).");
        let expected = models_incremental(&program, &mut builder, &base_facts);
        let snapshot = builder.freeze(&base_facts).expect("live state freezes");
        assert!(snapshot.closure_atoms() > 0);
        assert_eq!(snapshot.facts_consumed(), base_facts.len());

        let mut fork = IncrementalSmsState::new(
            Arc::clone(&program),
            NullBudget::Auto,
            GroundingLimits::default(),
        )
        .with_base(Arc::clone(&snapshot));
        assert_eq!(
            models_incremental(&program, &mut fork, &base_facts),
            expected
        );
        // Answered from the shared snapshot without building anything.
        assert_eq!(fork.stats().hits, 1);
        assert_eq!(fork.stats().rebuilds, 0);
    }

    #[test]
    fn forked_state_adopts_and_advances_like_a_private_one() {
        // Constants are all introduced up front, so the fork's delta keeps
        // the candidate domain stable and the adopted state advances.
        let (program, mut builder) =
            state("e(X, Y), not blocked(X) -> r(X, Y). r(X, Y), e(Y, Z) -> r(X, Z).");
        let base_facts = facts("seen(a). seen(b). seen(c). blocked(c).");
        models_incremental(&program, &mut builder, &base_facts);
        let snapshot = builder.freeze(&base_facts).expect("live state freezes");

        let mut fork = IncrementalSmsState::new(
            Arc::clone(&program),
            NullBudget::Auto,
            GroundingLimits::default(),
        )
        .with_base(Arc::clone(&snapshot));
        let mut live = base_facts.clone();
        live.extend(facts("e(a, b). e(b, c)."));
        assert_eq!(
            models_incremental(&program, &mut fork, &live),
            models_oracle(&program, &live)
        );
        assert_eq!(fork.stats().rebuilds, 0, "the base grounding is reused");
        assert_eq!(fork.stats().reuses, 1);
        // Retracting to the fork watermark rolls back to the adopted
        // snapshot; answers still match the oracle.
        fork.retract_to_facts(base_facts.len());
        assert_eq!(
            models_incremental(&program, &mut fork, &base_facts),
            models_oracle(&program, &base_facts)
        );
        assert_eq!(fork.stats().rollbacks, 1);
        assert_eq!(fork.stats().rebuilds, 0);
    }

    #[test]
    fn forked_state_must_not_adopt_a_diverged_prefix() {
        let (program, mut builder) = state("p(X), not q(X) -> r(X).");
        let base_facts = facts("p(a). p(b).");
        models_incremental(&program, &mut builder, &base_facts);
        let snapshot = builder.freeze(&base_facts).expect("live state freezes");

        let mut fork = IncrementalSmsState::new(
            Arc::clone(&program),
            NullBudget::Auto,
            GroundingLimits::default(),
        )
        .with_base(snapshot);
        // The session retracted below the fork watermark and regrew with a
        // different fact: the snapshot no longer applies and the state must
        // rebuild, not adopt.
        let diverged = facts("p(a). q(a).");
        assert_eq!(
            models_incremental(&program, &mut fork, &diverged),
            models_oracle(&program, &diverged)
        );
        assert_eq!(fork.stats().rebuilds, 1);
        assert_eq!(fork.stats().hits, 0);
    }

    #[test]
    fn disjunctive_programs_advance_incrementally() {
        let (program, mut state) =
            state("node(X) -> red(X) | green(X). edge(X, Y), red(X), red(Y) -> clash.");
        let mut live = facts("seen(u). seen(v).");
        models_incremental(&program, &mut state, &live);
        live.extend(facts("node(u)."));
        assert_eq!(
            models_incremental(&program, &mut state, &live),
            models_oracle(&program, &live)
        );
        live.extend(facts("node(v). edge(u, v)."));
        assert_eq!(
            models_incremental(&program, &mut state, &live),
            models_oracle(&program, &live)
        );
        assert_eq!(state.stats().reuses, 2);
    }
}
