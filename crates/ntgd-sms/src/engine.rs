//! The SMS query-answering engine: candidate generation + stability checking
//! (the guess-and-check algorithm of Section 5.3, made practical with a SAT
//! back-end).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::ControlFlow;
use std::sync::Arc;

use ntgd_core::{
    obs, parallel, Atom, CompiledConjunction, Database, DisjunctiveProgram, Interpretation,
    Program, Query, Substitution, Term,
};
use ntgd_sat::{CnfBuilder, Lit};

use crate::grounding::{ground_sms, GroundSmsProgram, GroundingError, GroundingLimits};
use crate::stability::find_instability_witness;
use crate::universe::{build_domain, NullBudget};

/// One tick per CEGAR guess-and-check pass: how many candidate batches a
/// search burned before converging (or exhausting the space).
static SMS_CEGAR_ITERATIONS: obs::Counter = obs::Counter::new("sms.cegar_iterations");

/// Options controlling the engine.
#[derive(Clone, Debug)]
pub struct SmsOptions {
    /// How many fresh nulls to include in the candidate domain.
    pub null_budget: NullBudget,
    /// Grounding limits.
    pub grounding: GroundingLimits,
    /// Maximum number of stable models returned by [`SmsEngine::stable_models`].
    pub max_models: usize,
    /// Maximum number of candidate models examined by one CEGAR search before
    /// giving up with [`SmsError::CandidateLimit`].
    pub max_candidates: usize,
}

impl Default for SmsOptions {
    fn default() -> Self {
        SmsOptions {
            null_budget: NullBudget::Auto,
            grounding: GroundingLimits::default(),
            max_models: 4_096,
            max_candidates: 100_000,
        }
    }
}

/// Errors reported by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmsError {
    /// Grounding exceeded its limits.
    Grounding(GroundingError),
    /// The CEGAR loop examined too many unstable candidates.
    CandidateLimit,
}

impl std::fmt::Display for SmsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmsError::Grounding(e) => write!(f, "{e}"),
            SmsError::CandidateLimit => {
                write!(f, "candidate limit exceeded during the stable-model search")
            }
        }
    }
}

impl std::error::Error for SmsError {}

impl From<GroundingError> for SmsError {
    fn from(e: GroundingError) -> Self {
        SmsError::Grounding(e)
    }
}

/// Cautious-entailment answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SmsAnswer {
    /// The query holds in every stable model.
    Entailed,
    /// Some stable model refutes the query.
    NotEntailed,
    /// There is no stable model at all (hence everything is cautiously
    /// entailed, vacuously).
    Inconsistent,
}

/// Search statistics of the most interesting kind for the experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SmsStatistics {
    /// Classical-model candidates generated.
    pub candidates: usize,
    /// Candidates that passed the stability check.
    pub stable: usize,
    /// Possibly-true ground atoms (SAT variables of the generator).
    pub ground_atoms: usize,
    /// Ground rule instances.
    pub ground_rules: usize,
}

/// How a query constrains the candidate search.
enum QueryMode<'a> {
    /// No query constraint.
    Unconstrained,
    /// Candidates must satisfy the query (brave witness search).
    MustSatisfy(&'a Query),
    /// Candidates must refute the query (cautious counter-model search).
    MustRefute(&'a Query),
}

impl<'a> QueryMode<'a> {
    fn query(&self) -> Option<&'a Query> {
        match self {
            QueryMode::Unconstrained => None,
            QueryMode::MustSatisfy(q) | QueryMode::MustRefute(q) => Some(q),
        }
    }
}

/// The stable-model-semantics engine for a fixed (disjunctive) program.
///
/// The program is held behind an [`Arc`], so cloning the engine — or
/// constructing one per query from a shared program, as the `ntgd-server`
/// session does — never deep-copies the rules.
#[derive(Clone, Debug)]
pub struct SmsEngine {
    program: Arc<DisjunctiveProgram>,
    options: SmsOptions,
}

impl SmsEngine {
    /// Creates an engine for a non-disjunctive program.  The engine only
    /// reads the program, so a borrow suffices; the disjunctive form it
    /// answers over is built here.
    pub fn new(program: &Program) -> SmsEngine {
        SmsEngine {
            program: Arc::new(program.to_disjunctive()),
            options: SmsOptions::default(),
        }
    }

    /// Creates an engine for a disjunctive program.
    pub fn new_disjunctive(program: DisjunctiveProgram) -> SmsEngine {
        SmsEngine::new_shared(Arc::new(program))
    }

    /// Creates an engine over an already-shared disjunctive program without
    /// cloning it (long-lived callers keep the `Arc` and mint engines per
    /// request).
    pub fn new_shared(program: Arc<DisjunctiveProgram>) -> SmsEngine {
        SmsEngine {
            program,
            options: SmsOptions::default(),
        }
    }

    /// Replaces the engine options.
    pub fn with_options(mut self, options: SmsOptions) -> SmsEngine {
        self.options = options;
        self
    }

    /// Sets the null budget.
    pub fn with_null_budget(mut self, budget: NullBudget) -> SmsEngine {
        self.options.null_budget = budget;
        self
    }

    /// The program this engine answers queries for.
    pub fn program(&self) -> &DisjunctiveProgram {
        &self.program
    }

    /// The options in effect.
    pub fn options(&self) -> &SmsOptions {
        &self.options
    }

    fn ground(
        &self,
        database: &Database,
        query: Option<&Query>,
    ) -> Result<GroundSmsProgram, SmsError> {
        let domain = build_domain(database, &self.program, query, self.options.null_budget);
        Ok(ground_sms(
            database,
            &self.program,
            &domain,
            &self.options.grounding,
        )?)
    }

    /// Enumerates stable models of `(database, Σ)` (up to `max_models`).
    pub fn stable_models(&self, database: &Database) -> Result<Vec<Interpretation>, SmsError> {
        self.search(database, QueryMode::Unconstrained, self.options.max_models)
            .map(|(models, _)| models)
    }

    /// Like [`SmsEngine::stable_models`] but also returns search statistics.
    pub fn stable_models_with_statistics(
        &self,
        database: &Database,
    ) -> Result<(Vec<Interpretation>, SmsStatistics), SmsError> {
        self.search(database, QueryMode::Unconstrained, self.options.max_models)
    }

    /// Returns `true` if at least one stable model exists.
    pub fn has_stable_model(&self, database: &Database) -> Result<bool, SmsError> {
        Ok(!self
            .search(database, QueryMode::Unconstrained, 1)?
            .0
            .is_empty())
    }

    /// Cautious entailment of a Boolean query: `(D,Σ) ⊨_SMS q` iff every
    /// stable model satisfies `q` (Section 3.4).
    pub fn entails_cautious(
        &self,
        database: &Database,
        query: &Query,
    ) -> Result<SmsAnswer, SmsError> {
        let counter = self.search(database, QueryMode::MustRefute(query), 1)?;
        if !counter.0.is_empty() {
            return Ok(SmsAnswer::NotEntailed);
        }
        if self.has_stable_model(database)? {
            Ok(SmsAnswer::Entailed)
        } else {
            Ok(SmsAnswer::Inconsistent)
        }
    }

    /// Brave entailment of a Boolean query: some stable model satisfies `q`.
    pub fn entails_brave(&self, database: &Database, query: &Query) -> Result<bool, SmsError> {
        Ok(!self
            .search(database, QueryMode::MustSatisfy(query), 1)?
            .0
            .is_empty())
    }

    /// Certain answers of an n-ary query (intersection over all stable
    /// models); `None` if there is no stable model.
    pub fn certain_answers(
        &self,
        database: &Database,
        query: &Query,
    ) -> Result<Option<BTreeSet<Vec<Term>>>, SmsError> {
        let models = self.stable_models(database)?;
        let mut iter = models.iter();
        let Some(first) = iter.next() else {
            return Ok(None);
        };
        let mut acc = query.answers(first);
        for m in iter {
            let answers = query.answers(m);
            acc = acc.intersection(&answers).cloned().collect();
        }
        Ok(Some(acc))
    }

    /// Possible (brave) answers of an n-ary query (union over stable models).
    pub fn possible_answers(
        &self,
        database: &Database,
        query: &Query,
    ) -> Result<BTreeSet<Vec<Term>>, SmsError> {
        let models = self.stable_models(database)?;
        let mut acc = BTreeSet::new();
        for m in &models {
            acc.extend(query.answers(m));
        }
        Ok(acc)
    }

    /// Checks whether an explicit interpretation is a stable model
    /// (Definition 1), delegating to [`crate::stability`].
    pub fn is_stable_model(&self, database: &Database, interpretation: &Interpretation) -> bool {
        crate::stability::is_stable_model_disjunctive(database, &self.program, interpretation)
    }

    /// Enumerates stable models over an **externally built** grounding
    /// (e.g. the cached, incrementally advanced grounding of
    /// [`crate::incremental::IncrementalSmsState`]), up to `max_models`.
    ///
    /// The caller is responsible for the grounding matching this engine's
    /// program; the CEGAR search only reads it.
    pub fn stable_models_over(
        &self,
        ground: &GroundSmsProgram,
        max_models: usize,
    ) -> Result<Vec<Interpretation>, SmsError> {
        self.search_ground(ground, QueryMode::Unconstrained, max_models)
            .map(|(models, _)| models)
    }

    /// Like [`SmsEngine::stable_models_over`] but also returns search
    /// statistics.
    pub fn stable_models_over_with_statistics(
        &self,
        ground: &GroundSmsProgram,
        max_models: usize,
    ) -> Result<(Vec<Interpretation>, SmsStatistics), SmsError> {
        self.search_ground(ground, QueryMode::Unconstrained, max_models)
    }

    /// The core CEGAR search: ground, then enumerate classical models of the
    /// grounding (restricted by the query mode), keeping the stable ones.
    fn search(
        &self,
        database: &Database,
        mode: QueryMode<'_>,
        max_models: usize,
    ) -> Result<(Vec<Interpretation>, SmsStatistics), SmsError> {
        let ground = self.ground(database, mode.query())?;
        self.search_ground(&ground, mode, max_models)
    }

    /// The CEGAR search proper, over a prebuilt grounding.
    fn search_ground(
        &self,
        ground: &GroundSmsProgram,
        mode: QueryMode<'_>,
        max_models: usize,
    ) -> Result<(Vec<Interpretation>, SmsStatistics), SmsError> {
        let mut stats = SmsStatistics {
            ground_atoms: ground.possibly_true_count(),
            ground_rules: ground.rules.len(),
            ..Default::default()
        };

        let mut builder = CnfBuilder::new();
        let mut var_of: HashMap<usize, Lit> = HashMap::new();
        let mut pt_ids: Vec<usize> = Vec::new();
        for (id, _) in ground.atoms.iter() {
            if ground.possibly_true[id] {
                var_of.insert(id, builder.new_var().positive());
                pt_ids.push(id);
            }
        }
        // Cache of "term occurs in the domain of the candidate" literals.
        let mut in_dom_cache: HashMap<Term, Lit> = HashMap::new();
        let mut in_dom = |builder: &mut CnfBuilder, term: &Term| -> Lit {
            if let Some(l) = in_dom_cache.get(term) {
                return *l;
            }
            let containing: Vec<Lit> = pt_ids
                .iter()
                .filter(|&&id| ground.atoms.atom(id).terms().any(|t| t == term))
                .map(|id| var_of[id])
                .collect();
            let lit = builder.or_lit(&containing);
            in_dom_cache.insert(*term, lit);
            lit
        };

        // D ⊆ I.
        for &f in &ground.facts {
            builder.force(var_of[&f]);
        }
        // I ⊨ Σ (grounded).
        for rule in &ground.rules {
            let mut antecedent: Vec<Lit> = Vec::new();
            for &id in &rule.body_pos {
                antecedent.push(var_of[&id]);
            }
            let mut impossible = false;
            for &id in &rule.body_neg {
                // A negated atom outside the possibly-true closure is always
                // false: the literal is satisfied, nothing to add.
                if let Some(&lit) = var_of.get(&id) {
                    antecedent.push(!lit);
                }
            }
            for t in &rule.neg_domain_terms {
                if t.is_constant() || t.is_null() {
                    antecedent.push(in_dom(&mut builder, t));
                } else {
                    impossible = true;
                }
            }
            if impossible {
                continue;
            }
            let disjuncts: Vec<Vec<Lit>> = rule
                .disjuncts
                .iter()
                .map(|conj| conj.iter().map(|id| var_of[id]).collect())
                .collect();
            if disjuncts.is_empty() {
                let clause: Vec<Lit> = antecedent.iter().map(|&l| !l).collect();
                builder.clause(&clause);
            } else {
                builder.rule(&antecedent, &disjuncts);
            }
        }
        // Query constraint.
        match &mode {
            QueryMode::Unconstrained => {}
            QueryMode::MustRefute(q) => {
                for instance in query_instances(q, ground) {
                    // Forbid this satisfying instantiation: some positive atom
                    // false, some negated atom true, or some negated-only term
                    // outside the domain.
                    let mut clause: Vec<Lit> = Vec::new();
                    let mut always_violated = false;
                    for id in &instance.positive {
                        match var_of.get(id) {
                            Some(&lit) => clause.push(!lit),
                            None => always_violated = true,
                        }
                    }
                    for id in &instance.negative {
                        if let Some(&lit) = var_of.get(id) {
                            clause.push(lit);
                        }
                    }
                    for t in &instance.domain_terms {
                        clause.push(!in_dom(&mut builder, t));
                    }
                    if !always_violated {
                        builder.clause(&clause);
                    }
                }
            }
            QueryMode::MustSatisfy(q) => {
                let mut witnesses: Vec<Lit> = Vec::new();
                for instance in query_instances(q, ground) {
                    let mut conj: Vec<Lit> = Vec::new();
                    let mut impossible = false;
                    for id in &instance.positive {
                        match var_of.get(id) {
                            Some(&lit) => conj.push(lit),
                            None => impossible = true,
                        }
                    }
                    for id in &instance.negative {
                        if let Some(&lit) = var_of.get(id) {
                            conj.push(!lit);
                        }
                    }
                    for t in &instance.domain_terms {
                        let lit = in_dom(&mut builder, t);
                        conj.push(lit);
                    }
                    if !impossible {
                        let w = builder.and_lit(&conj);
                        witnesses.push(w);
                    }
                }
                if witnesses.is_empty() {
                    // The query can never be satisfied over the closure.
                    return Ok((Vec::new(), stats));
                }
                builder.at_least_one(&witnesses);
            }
        }

        // CEGAR: enumerate classical models; keep the stable ones; refute the
        // unstable ones with a witness-based refinement (every model that the
        // same witness would refute is excluded in one step).
        //
        // Candidates are collected in small batches and their (independent,
        // read-only) stability checks run concurrently on the scoped worker
        // pool; the batch size is a constant — NOT the thread count — and
        // results are consumed in collection order, so the candidate
        // sequence, every refinement, and the returned model list are
        // bit-identical at every thread count.
        let mut models: Vec<Interpretation> = Vec::new();
        let mut exhausted = false;
        'search: while !exhausted {
            SMS_CEGAR_ITERATIONS.incr();
            let _iteration = obs::span("sms.cegar_iteration");
            // Collect up to CANDIDATE_BATCH distinct classical models.  The
            // per-candidate blocking clause (the sequential loop's "safety
            // net") is added at collection time, which both guarantees
            // progress and makes the batch candidates distinct; witness
            // refinements are deferred to the processing pass below.
            let remaining = max_models - models.len();
            let batch_target = CANDIDATE_BATCH.min(remaining.max(1));
            let mut batch: Vec<(Vec<bool>, HashSet<usize>)> = Vec::new();
            while batch.len() < batch_target {
                if stats.candidates >= self.options.max_candidates {
                    return Err(SmsError::CandidateLimit);
                }
                let result = builder.solve_unconstrained();
                let Some(assignment) = result.model().map(<[bool]>::to_vec) else {
                    exhausted = true;
                    break;
                };
                stats.candidates += 1;
                let candidate: HashSet<usize> = pt_ids
                    .iter()
                    .copied()
                    .filter(|id| assignment[var_of[id].var().index()])
                    .collect();
                let blocking: Vec<Lit> = pt_ids
                    .iter()
                    .map(|id| {
                        let lit = var_of[id];
                        if assignment[lit.var().index()] {
                            !lit
                        } else {
                            lit
                        }
                    })
                    .collect();
                builder.clause(&blocking);
                batch.push((assignment, candidate));
            }
            if batch.is_empty() {
                break;
            }
            // The coNP stability checks of the batch, in parallel: each is a
            // self-contained SAT search over the shared read-only grounding.
            // The worker count is gated by the grounding size (tiny programs
            // check inline); the batch *composition* above is not, so the
            // candidate sequence never depends on the gate.
            let check_threads = parallel::threads_for(stats.ground_atoms);
            let witnesses = parallel::par_map_with(&batch, check_threads, |_, (_, candidate)| {
                find_instability_witness(ground, candidate)
            });
            for ((_, candidate), witness) in batch.iter().zip(witnesses) {
                match witness {
                    None => {
                        stats.stable += 1;
                        let mut interpretation = Interpretation::from_atoms(
                            candidate.iter().map(|&id| ground.atoms.atom(id).clone()),
                        );
                        // Candidates are interpretations over the *candidate
                        // universe*, not merely over the terms of their true
                        // atoms: re-register the universe so negative
                        // literals over domain elements that happen to carry
                        // no atom in this model evaluate correctly on the
                        // returned interpretation.
                        for t in ground.domain.terms() {
                            interpretation.add_domain_element(*t);
                        }
                        models.push(interpretation);
                        if models.len() >= max_models {
                            // The collection blocking clause already excludes
                            // this model from future batches.
                            break 'search;
                        }
                    }
                    Some(witness) => {
                        // Refinement: any candidate M′ with witness ⊊ M′ in
                        // which every rule instance that the witness fails to
                        // satisfy is blocked (some negated atom true, or a
                        // negated-only term outside the domain) is refuted by
                        // the same witness, so it can be excluded wholesale.
                        let mut refinement: Vec<Lit> = Vec::new();
                        let ordered_witness: Vec<usize> = {
                            let mut ids: Vec<usize> = witness.iter().copied().collect();
                            ids.sort_unstable();
                            ids
                        };
                        for &id in &ordered_witness {
                            refinement.push(var_of[&id]);
                        }
                        let outside: Vec<Lit> = pt_ids
                            .iter()
                            .filter(|id| !witness.contains(id))
                            .map(|id| var_of[id])
                            .collect();
                        let proper = builder.or_lit(&outside);
                        refinement.push(proper);
                        let mut refinement_applicable = true;
                        for rule in &ground.rules {
                            if !rule.body_pos.iter().all(|id| witness.contains(id)) {
                                continue;
                            }
                            let satisfied = rule
                                .disjuncts
                                .iter()
                                .any(|conj| conj.iter().all(|id| witness.contains(id)));
                            if satisfied {
                                continue;
                            }
                            // The instance must be blocked in M′ for the
                            // witness to refute it.
                            let mut blockers: Vec<Lit> = Vec::new();
                            for id in &rule.body_neg {
                                if let Some(&lit) = var_of.get(id) {
                                    blockers.push(lit);
                                }
                            }
                            for t in &rule.neg_domain_terms {
                                let lit = in_dom(&mut builder, t);
                                blockers.push(!lit);
                            }
                            if blockers.is_empty() {
                                refinement_applicable = false;
                                break;
                            }
                            let blocked = builder.or_lit(&blockers);
                            refinement.push(blocked);
                        }
                        if refinement_applicable {
                            let refuted = builder.and_lit(&refinement);
                            builder.force(!refuted);
                        }
                        // The per-candidate blocking clause added at
                        // collection time already guarantees progress.
                    }
                }
            }
        }
        Ok((models, stats))
    }
}

/// Number of classical-model candidates one CEGAR iteration collects before
/// running their stability checks concurrently.  Deliberately a constant
/// rather than the worker count: the candidate sequence (and with it every
/// refinement and the returned model order) must not depend on how many
/// threads happen to be available.
///
/// The batch is speculative: witness refinements land only after the whole
/// batch is collected, so up to `CANDIDATE_BATCH - 1` candidates that a
/// refinement would have pruned may still be collected (counted against
/// `max_candidates`) and checked.  That bounded redundancy buys the
/// concurrency of the coNP checks; the per-candidate blocking clauses keep
/// progress and termination identical to the sequential loop.
const CANDIDATE_BATCH: usize = 8;

/// A ground instantiation of a query: atom ids of its positive and negative
/// literals, plus the terms that occur only negatively (and therefore need an
/// explicit domain-membership condition).
struct QueryInstance {
    positive: Vec<usize>,
    negative: Vec<usize>,
    domain_terms: Vec<Term>,
}

/// Enumerates the ground instantiations of a query whose positive literals
/// lie in the possibly-true closure.
fn query_instances(query: &Query, ground: &GroundSmsProgram) -> Vec<QueryInstance> {
    let positive_atoms: Vec<Atom> = query
        .literals()
        .iter()
        .filter(|l| l.is_positive())
        .map(|l| l.atom().clone())
        .collect();
    let negative_atoms: Vec<Atom> = query
        .literals()
        .iter()
        .filter(|l| l.is_negative())
        .map(|l| l.atom().clone())
        .collect();
    // One compiled plan per query evaluation; instantiations are read off
    // the borrowed slot binding without materialising substitutions.
    let plan = CompiledConjunction::compile_atoms(&positive_atoms, &ground.closure);
    let mut out = Vec::new();
    plan.for_each(&ground.closure, &Substitution::new(), &mut |binding| {
        let mut pos_ids = Vec::new();
        let mut pos_terms: BTreeSet<Term> = BTreeSet::new();
        let mut valid = true;
        for a in &positive_atoms {
            let g = binding.apply_atom(a);
            pos_terms.extend(g.terms().copied());
            match ground.atoms.id_of(&g) {
                Some(id) => pos_ids.push(id),
                None => {
                    valid = false;
                    break;
                }
            }
        }
        if !valid {
            return ControlFlow::Continue(());
        }
        let mut neg_ids = Vec::new();
        let mut domain_terms: BTreeSet<Term> = BTreeSet::new();
        for a in &negative_atoms {
            let g = binding.apply_atom(a);
            debug_assert!(g.is_ground(), "queries are safe");
            for t in g.terms() {
                if !pos_terms.contains(t) {
                    domain_terms.insert(*t);
                }
            }
            // The negated atom may or may not be in the closure; if it is not,
            // it can never be true, but its identifier may also be absent —
            // skip it in that case (the literal is then trivially false-atom).
            if let Some(id) = ground.atoms.id_of(&g) {
                neg_ids.push(id);
            }
        }
        out.push(QueryInstance {
            positive: pos_ids,
            negative: neg_ids,
            domain_terms: domain_terms.into_iter().collect(),
        });
        ControlFlow::Continue(())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::cst;
    use ntgd_parser::{parse_database, parse_program, parse_query, parse_unit};

    const EXAMPLE1_RULES: &str = "person(X) -> hasFather(X, Y).\
         hasFather(X, Y) -> sameAs(Y, Y).\
         hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).";

    fn engine(rules: &str) -> SmsEngine {
        SmsEngine::new(&parse_program(rules).unwrap())
    }

    #[test]
    fn example1_positive_queries_behave_as_in_the_paper() {
        let db = parse_database("person(alice).").unwrap();
        let e = engine(EXAMPLE1_RULES);
        let q_normal = parse_query("?- person(X), not abnormal(X).").unwrap();
        assert_eq!(
            e.entails_cautious(&db, &q_normal).unwrap(),
            SmsAnswer::Entailed
        );
        let q_abnormal = parse_query("?- person(X), abnormal(X).").unwrap();
        assert_eq!(
            e.entails_cautious(&db, &q_abnormal).unwrap(),
            SmsAnswer::NotEntailed
        );
        assert!(!e.entails_brave(&db, &q_abnormal).unwrap());
    }

    #[test]
    fn example2_and_4_the_new_semantics_does_not_entail_the_negative_query() {
        // The heart of the paper: ¬hasFather(alice, bob) is NOT entailed
        // under the new semantics, because the interpretation of Example 4
        // (bob as the father) is a stable model.
        let db = parse_database("person(alice).").unwrap();
        let e = engine(EXAMPLE1_RULES);
        let q = parse_query("?- not hasFather(alice, bob).").unwrap();
        assert_eq!(e.entails_cautious(&db, &q).unwrap(), SmsAnswer::NotEntailed);
        // Under the paper's literal-in-I semantics, a *negative* literal only
        // holds in I when its terms belong to dom(I).  No stable model of this
        // program mentions bob without making him the father, so the query is
        // not even bravely entailed.
        assert!(!e.entails_brave(&db, &q).unwrap());
        // By contrast, ¬hasFather(alice, alice) is bravely entailed: the
        // stable model whose witness is the invented null mentions alice but
        // not hasFather(alice, alice).
        let q2 = parse_query("?- not hasFather(alice, alice).").unwrap();
        assert!(e.entails_brave(&db, &q2).unwrap());
    }

    #[test]
    fn example3_alice_is_never_abnormal() {
        // Under the new semantics ¬abnormal(alice) IS entailed (contrast with
        // the EFWFS discussion in Example 3).
        let db = parse_database("person(alice).").unwrap();
        let e = engine(EXAMPLE1_RULES);
        let q = parse_query("?- not abnormal(alice).").unwrap();
        assert_eq!(e.entails_cautious(&db, &q).unwrap(), SmsAnswer::Entailed);
    }

    #[test]
    fn stable_models_of_example1_include_constant_and_null_witnesses() {
        let db = parse_database("person(alice).").unwrap();
        let e = engine(EXAMPLE1_RULES);
        let models = e.stable_models(&db).unwrap();
        // Domain = {alice, _n0}; the father can be alice, or the null.
        assert_eq!(models.len(), 2);
        for m in &models {
            assert!(m.contains(&ntgd_core::atom("person", vec![cst("alice")])));
            assert!(!m.atoms().any(|a| a.predicate().as_str() == "abnormal"));
        }
    }

    #[test]
    fn programs_without_stable_models_are_reported_inconsistent() {
        let db = parse_database("p(0).").unwrap();
        let e = engine("p(X), not t(X) -> r(X). r(X) -> t(X).");
        assert!(!e.has_stable_model(&db).unwrap());
        let q = parse_query("?- r(0).").unwrap();
        assert_eq!(
            e.entails_cautious(&db, &q).unwrap(),
            SmsAnswer::Inconsistent
        );
    }

    #[test]
    fn even_loop_has_two_stable_models_and_brave_cautious_differ() {
        let db = parse_database("seed(x).").unwrap();
        let e = engine("seed(X), not b -> a. seed(X), not a -> b.");
        let models = e.stable_models(&db).unwrap();
        assert_eq!(models.len(), 2);
        let qa = parse_query("?- a.").unwrap();
        assert_eq!(
            e.entails_cautious(&db, &qa).unwrap(),
            SmsAnswer::NotEntailed
        );
        assert!(e.entails_brave(&db, &qa).unwrap());
    }

    #[test]
    fn certain_and_possible_answers() {
        let db = parse_database("person(alice). person(bob). rich(bob).").unwrap();
        let e = engine("person(X), not rich(X) -> modest(X).");
        let q = parse_query("?(X) :- modest(X).").unwrap();
        let certain = e.certain_answers(&db, &q).unwrap().unwrap();
        assert_eq!(certain, BTreeSet::from([vec![cst("alice")]]));
        assert_eq!(e.possible_answers(&db, &q).unwrap().len(), 1);
    }

    #[test]
    fn returned_models_preserve_the_candidate_universe() {
        // Regression test: the CEGAR loop used to rebuild stable models with
        // `Interpretation::from_atoms`, which dropped the candidate
        // universe's extra domain elements — a negative literal over a
        // domain element carrying no atom in the model was then wrongly
        // rejected by `satisfies_negation_of`.
        use ntgd_core::atom;
        let db = parse_database("p(a).").unwrap();
        let e = engine("p(X) -> r(X, Y).").with_null_budget(NullBudget::Exact(1));
        let models = e.stable_models(&db).unwrap();
        // The witness Y ranges over the universe {a, _n0}: two models.
        assert_eq!(models.len(), 2);
        let constant_witness = models
            .iter()
            .find(|m| m.contains(&atom("r", vec![cst("a"), cst("a")])))
            .expect("the model reusing the database constant exists");
        // Its domain strictly exceeds the terms of its atoms: the budget
        // null carries no atom here but belongs to the candidate universe…
        assert!(constant_witness.in_domain(&Term::Null(0)));
        // …so the negative literal ¬r(a, _n0) belongs to the model.
        assert!(
            constant_witness.satisfies_negation_of(&atom("r", vec![cst("a"), Term::Null(0)])),
            "negative literals over atom-free universe elements must hold"
        );
        // Preserving the universe keeps the model a stable model under the
        // direct Definition-1 check (which grounds over dom(I)).
        assert!(e.is_stable_model(&db, constant_witness));
    }

    #[test]
    fn existential_witnesses_may_reuse_database_constants() {
        // p(a), q(b).   p(X) -> r(X, Y).
        // Stable models can pick Y ∈ {a, b, null}: three stable models.
        let db = parse_database("p(a). q(b).").unwrap();
        let e = engine("p(X) -> r(X, Y).");
        let models = e.stable_models(&db).unwrap();
        assert_eq!(models.len(), 3);
    }

    #[test]
    fn disjunctive_programs_are_answered_directly() {
        let db = parse_database("node(v). node(w).").unwrap();
        let prog = parse_unit("node(X) -> red(X) | green(X).")
            .unwrap()
            .disjunctive_program()
            .unwrap();
        let e = SmsEngine::new_disjunctive(prog);
        let models = e.stable_models(&db).unwrap();
        // Each node independently red or green: 4 stable models.
        assert_eq!(models.len(), 4);
        let q = parse_query("?- red(v), green(v).").unwrap();
        assert!(!e.entails_brave(&db, &q).unwrap());
    }

    #[test]
    fn statistics_are_reported() {
        let db = parse_database("person(alice).").unwrap();
        let e = engine(EXAMPLE1_RULES);
        let (models, stats) = e.stable_models_with_statistics(&db).unwrap();
        assert_eq!(models.len(), stats.stable);
        assert!(stats.candidates >= stats.stable);
        assert!(stats.ground_atoms > 0);
        assert!(stats.ground_rules > 0);
    }

    #[test]
    fn theorem1_lp_and_sms_coincide_on_existential_free_programs() {
        // Theorem 1: on Skolemized (here: existential-free) programs the LP
        // approach and the new approach have the same stable models.
        let cases = [
            ("seed(x).", "seed(X), not b -> a. seed(X), not a -> b."),
            ("p(a). p(b). q(a).", "p(X), not q(X) -> r(X)."),
            ("p(0).", "p(X), not t(X) -> r(X). r(X) -> t(X)."),
            (
                "e(a,b). e(b,c).",
                "e(X,Y), e(Y,Z) -> e(X,Z). e(X,Y), not e(Y,X) -> oneway(X,Y).",
            ),
        ];
        for (db_text, rules) in cases {
            let db = parse_database(db_text).unwrap();
            let program = parse_program(rules).unwrap();
            let sms = SmsEngine::new(&program).with_null_budget(NullBudget::None);
            let mut sms_models: Vec<Vec<Atom>> = sms
                .stable_models(&db)
                .unwrap()
                .iter()
                .map(Interpretation::sorted_atoms)
                .collect();
            sms_models.sort();
            let lp = ntgd_lp::LpEngine::new(&db, &program, &ntgd_lp::LpLimits::default()).unwrap();
            let mut lp_models: Vec<Vec<Atom>> = lp
                .models()
                .iter()
                .map(Interpretation::sorted_atoms)
                .collect();
            lp_models.sort();
            assert_eq!(sms_models, lp_models, "mismatch for {rules}");
        }
    }
}
