//! Normal (disjunctive) tuple-generating dependencies.
//!
//! An NTGD (paper, Section 2) is a formula
//! `∀X∀Y (ϕ(X,Y) → ∃Z ψ(X,Z))` where the body `ϕ` is a conjunction of
//! literals and the head `ψ` is a conjunction of atoms.  A normal *disjunctive*
//! TGD (NDTGD, Section 6) instead has a head that is a disjunction of
//! conjunctions of atoms, each with its own existential variables.
//!
//! The quantifier structure is implicit in our representation: every variable
//! occurring in the body is universally quantified, and every head variable
//! that does not occur in the body is existentially quantified.

use std::collections::BTreeSet;
use std::fmt;

use crate::atom::{Atom, Literal};
use crate::error::{CoreError, CoreResult};
use crate::schema::Schema;
use crate::symbol::Symbol;

/// A normal tuple-generating dependency.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ntgd {
    body: Vec<Literal>,
    head: Vec<Atom>,
}

impl Ntgd {
    /// Creates and validates an NTGD.
    ///
    /// Validation enforces (i) a non-empty head and (ii) *safety*: every
    /// variable occurring in a negative body literal also occurs in a positive
    /// body literal.  Bodies may be empty (e.g. `→ ∃X zero(X)` from the 2-QBF
    /// encoding of Section 5.3) and rules may contain constants (an extension
    /// the paper explicitly allows).
    pub fn new(body: Vec<Literal>, head: Vec<Atom>) -> CoreResult<Ntgd> {
        let rule = Ntgd { body, head };
        rule.validate()?;
        Ok(rule)
    }

    /// Creates a positive TGD (no negative literals) from body atoms.
    pub fn tgd(body: Vec<Atom>, head: Vec<Atom>) -> CoreResult<Ntgd> {
        Ntgd::new(body.into_iter().map(Literal::positive).collect(), head)
    }

    fn validate(&self) -> CoreResult<()> {
        if self.head.is_empty() {
            return Err(CoreError::EmptyHead {
                rule: format!("{} -> .", render_body(&self.body)),
            });
        }
        let positive_vars = self.positive_body_variables();
        for lit in self.body.iter().filter(|l| l.is_negative()) {
            for v in lit.variables() {
                if !positive_vars.contains(&v) {
                    return Err(CoreError::UnsafeRule {
                        rule: self.to_string(),
                        variable: v.as_str().to_owned(),
                        reason: "occurs in a negative literal but in no positive body literal"
                            .to_owned(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The body `B(σ)`.
    pub fn body(&self) -> &[Literal] {
        &self.body
    }

    /// The positive body literals `B⁺(σ)` (as atoms).
    pub fn body_positive(&self) -> Vec<&Atom> {
        self.body
            .iter()
            .filter(|l| l.is_positive())
            .map(|l| l.atom())
            .collect()
    }

    /// The negative body literals `B⁻(σ)` (as atoms).
    pub fn body_negative(&self) -> Vec<&Atom> {
        self.body
            .iter()
            .filter(|l| l.is_negative())
            .map(|l| l.atom())
            .collect()
    }

    /// The head `H(σ)`.
    pub fn head(&self) -> &[Atom] {
        &self.head
    }

    /// Returns `true` if the rule has no negative body literal (i.e. it is a
    /// plain TGD).
    pub fn is_positive(&self) -> bool {
        self.body.iter().all(Literal::is_positive)
    }

    /// The *positive part* of the rule: drop every negative body literal.
    /// The set of positive parts of a program is the `Σ⁺` of the paper.
    pub fn positive_part(&self) -> Ntgd {
        Ntgd {
            body: self
                .body
                .iter()
                .filter(|l| l.is_positive())
                .cloned()
                .collect(),
            head: self.head.clone(),
        }
    }

    /// Variables occurring in positive body literals.
    pub fn positive_body_variables(&self) -> BTreeSet<Symbol> {
        self.body
            .iter()
            .filter(|l| l.is_positive())
            .flat_map(|l| l.variables().collect::<Vec<_>>())
            .collect()
    }

    /// All variables occurring in the body (the universally quantified ones).
    pub fn universal_variables(&self) -> BTreeSet<Symbol> {
        self.body
            .iter()
            .flat_map(|l| l.variables().collect::<Vec<_>>())
            .collect()
    }

    /// Variables occurring in the head.
    pub fn head_variables(&self) -> BTreeSet<Symbol> {
        self.head
            .iter()
            .flat_map(|a| a.variables().collect::<Vec<_>>())
            .collect()
    }

    /// The frontier: variables shared between body and head.
    pub fn frontier_variables(&self) -> BTreeSet<Symbol> {
        let body = self.universal_variables();
        self.head_variables()
            .into_iter()
            .filter(|v| body.contains(v))
            .collect()
    }

    /// The existentially quantified variables: head variables that do not
    /// occur in the body.
    pub fn existential_variables(&self) -> BTreeSet<Symbol> {
        let body = self.universal_variables();
        self.head_variables()
            .into_iter()
            .filter(|v| !body.contains(v))
            .collect()
    }

    /// Returns `true` if the head contains at least one existential variable.
    pub fn has_existential(&self) -> bool {
        !self.existential_variables().is_empty()
    }

    /// Registers the rule's predicates into a schema.
    pub fn declare_into(&self, schema: &mut Schema) -> CoreResult<()> {
        for l in &self.body {
            schema.declare_atom(l.atom())?;
        }
        for a in &self.head {
            schema.declare_atom(a)?;
        }
        Ok(())
    }

    /// Converts the rule to the equivalent single-disjunct NDTGD.
    pub fn to_ndtgd(&self) -> Ndtgd {
        Ndtgd {
            body: self.body.clone(),
            disjuncts: vec![self.head.clone()],
        }
    }
}

fn render_body(body: &[Literal]) -> String {
    if body.is_empty() {
        return String::new();
    }
    body.iter()
        .map(|l| l.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_atoms(atoms: &[Atom]) -> String {
    atoms
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for Ntgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {}.",
            render_body(&self.body),
            render_atoms(&self.head)
        )
    }
}

/// A normal *disjunctive* tuple-generating dependency (paper, Section 6):
/// `∀X∀Y (ϕ(X,Y) → ⋁ᵢ ∃Zᵢ ψᵢ(X,Zᵢ))`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ndtgd {
    body: Vec<Literal>,
    disjuncts: Vec<Vec<Atom>>,
}

impl Ndtgd {
    /// Creates and validates an NDTGD.  Requires at least one disjunct, each
    /// non-empty, and the same safety condition as [`Ntgd::new`].
    pub fn new(body: Vec<Literal>, disjuncts: Vec<Vec<Atom>>) -> CoreResult<Ndtgd> {
        if disjuncts.is_empty() || disjuncts.iter().any(Vec::is_empty) {
            return Err(CoreError::EmptyHead {
                rule: render_body(&body),
            });
        }
        // Safety is identical to the non-disjunctive case.
        let probe = Ntgd::new(body.clone(), disjuncts[0].clone())?;
        let _ = probe;
        Ok(Ndtgd { body, disjuncts })
    }

    /// The body.
    pub fn body(&self) -> &[Literal] {
        &self.body
    }

    /// The head disjuncts (each a conjunction of atoms).
    pub fn disjuncts(&self) -> &[Vec<Atom>] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn disjunct_count(&self) -> usize {
        self.disjuncts.len()
    }

    /// Returns `true` if the rule has exactly one disjunct (i.e. is an NTGD).
    pub fn is_non_disjunctive(&self) -> bool {
        self.disjuncts.len() == 1
    }

    /// Converts to an NTGD if non-disjunctive.
    pub fn to_ntgd(&self) -> Option<Ntgd> {
        if self.is_non_disjunctive() {
            Ntgd::new(self.body.clone(), self.disjuncts[0].clone()).ok()
        } else {
            None
        }
    }

    /// The positive body literals.
    pub fn body_positive(&self) -> Vec<&Atom> {
        self.body
            .iter()
            .filter(|l| l.is_positive())
            .map(|l| l.atom())
            .collect()
    }

    /// The negative body literals.
    pub fn body_negative(&self) -> Vec<&Atom> {
        self.body
            .iter()
            .filter(|l| l.is_negative())
            .map(|l| l.atom())
            .collect()
    }

    /// All body variables.
    pub fn universal_variables(&self) -> BTreeSet<Symbol> {
        self.body
            .iter()
            .flat_map(|l| l.variables().collect::<Vec<_>>())
            .collect()
    }

    /// Existential variables of a given disjunct.
    pub fn existential_variables_of(&self, disjunct: usize) -> BTreeSet<Symbol> {
        let body = self.universal_variables();
        self.disjuncts[disjunct]
            .iter()
            .flat_map(|a| a.variables().collect::<Vec<_>>())
            .filter(|v| !body.contains(v))
            .collect()
    }

    /// The `Σ⁺,∧` transformation of Section 6: drop negative literals and turn
    /// the disjunction into a conjunction, producing a single positive TGD.
    pub fn positive_conjunctive_part(&self) -> Ntgd {
        let body: Vec<Literal> = self
            .body
            .iter()
            .filter(|l| l.is_positive())
            .cloned()
            .collect();
        let head: Vec<Atom> = self.disjuncts.iter().flatten().cloned().collect();
        Ntgd { body, head }
    }

    /// Registers the rule's predicates into a schema.
    pub fn declare_into(&self, schema: &mut Schema) -> CoreResult<()> {
        for l in &self.body {
            schema.declare_atom(l.atom())?;
        }
        for d in &self.disjuncts {
            for a in d {
                schema.declare_atom(a)?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Ndtgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let heads = self
            .disjuncts
            .iter()
            .map(|d| render_atoms(d))
            .collect::<Vec<_>>()
            .join(" | ");
        write!(f, "{} -> {}.", render_body(&self.body), heads)
    }
}

impl From<Ntgd> for Ndtgd {
    fn from(rule: Ntgd) -> Self {
        rule.to_ndtgd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, cst, neg, pos, var};

    /// `person(X) → ∃Y hasFather(X,Y)` from Example 1.
    fn father_rule() -> Ntgd {
        Ntgd::new(
            vec![pos("person", vec![var("X")])],
            vec![atom("hasFather", vec![var("X"), var("Y")])],
        )
        .unwrap()
    }

    /// The "abnormal" rule of Example 1.
    fn abnormal_rule() -> Ntgd {
        Ntgd::new(
            vec![
                pos("hasFather", vec![var("X"), var("Y")]),
                pos("hasFather", vec![var("X"), var("Z")]),
                neg("sameAs", vec![var("Y"), var("Z")]),
            ],
            vec![atom("abnormal", vec![var("X")])],
        )
        .unwrap()
    }

    #[test]
    fn variable_classification() {
        let r = father_rule();
        assert_eq!(
            r.universal_variables(),
            BTreeSet::from([Symbol::intern("X")])
        );
        assert_eq!(
            r.frontier_variables(),
            BTreeSet::from([Symbol::intern("X")])
        );
        assert_eq!(
            r.existential_variables(),
            BTreeSet::from([Symbol::intern("Y")])
        );
        assert!(r.has_existential());
        assert!(r.is_positive());

        let a = abnormal_rule();
        assert!(a.existential_variables().is_empty());
        assert!(!a.is_positive());
        assert_eq!(a.body_positive().len(), 2);
        assert_eq!(a.body_negative().len(), 1);
    }

    #[test]
    fn safety_is_enforced() {
        let err = Ntgd::new(
            vec![neg("q", vec![var("X")])],
            vec![atom("p", vec![var("X")])],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::UnsafeRule { .. }));
        // A negated 0-ary atom is safe even with an otherwise empty body.
        assert!(Ntgd::new(
            vec![neg("saturate", vec![])],
            vec![atom("saturate", vec![])]
        )
        .is_ok());
    }

    #[test]
    fn empty_heads_are_rejected_and_empty_bodies_allowed() {
        assert!(Ntgd::new(vec![pos("p", vec![var("X")])], vec![]).is_err());
        // `→ ∃X zero(X)` from the 2-QBF encoding.
        let r = Ntgd::new(vec![], vec![atom("zero", vec![var("X")])]).unwrap();
        assert_eq!(
            r.existential_variables(),
            BTreeSet::from([Symbol::intern("X")])
        );
    }

    #[test]
    fn positive_part_drops_negative_literals() {
        let a = abnormal_rule();
        let p = a.positive_part();
        assert!(p.is_positive());
        assert_eq!(p.body().len(), 2);
        assert_eq!(p.head(), a.head());
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(father_rule().to_string(), "person(X) -> hasFather(X,Y).");
        assert_eq!(
            abnormal_rule().to_string(),
            "hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X)."
        );
    }

    #[test]
    fn schema_declaration_collects_predicates() {
        let mut s = Schema::new();
        abnormal_rule().declare_into(&mut s).unwrap();
        assert_eq!(s.arity(Symbol::intern("hasFather")), Some(2));
        assert_eq!(s.arity(Symbol::intern("sameAs")), Some(2));
        assert_eq!(s.arity(Symbol::intern("abnormal")), Some(1));
    }

    #[test]
    fn ndtgd_construction_and_views() {
        // r(X) → p(X) ∨ ∃Y s(X,Y)
        let d = Ndtgd::new(
            vec![pos("r", vec![var("X")])],
            vec![
                vec![atom("p", vec![var("X")])],
                vec![atom("s", vec![var("X"), var("Y")])],
            ],
        )
        .unwrap();
        assert_eq!(d.disjunct_count(), 2);
        assert!(!d.is_non_disjunctive());
        assert!(d.to_ntgd().is_none());
        assert_eq!(
            d.existential_variables_of(1),
            BTreeSet::from([Symbol::intern("Y")])
        );
        assert!(d.existential_variables_of(0).is_empty());
        let pc = d.positive_conjunctive_part();
        assert_eq!(pc.head().len(), 2);
        assert_eq!(d.to_string(), "r(X) -> p(X) | s(X,Y).");
    }

    #[test]
    fn ndtgd_rejects_empty_disjuncts() {
        assert!(Ndtgd::new(vec![pos("r", vec![var("X")])], vec![]).is_err());
        assert!(Ndtgd::new(vec![pos("r", vec![var("X")])], vec![vec![]]).is_err());
    }

    #[test]
    fn ntgd_round_trips_through_ndtgd() {
        let r = abnormal_rule();
        let d = r.to_ndtgd();
        assert!(d.is_non_disjunctive());
        assert_eq!(d.to_ntgd().unwrap(), r);
    }

    #[test]
    fn constants_are_allowed_in_rules() {
        let r = Ntgd::new(
            vec![pos("p", vec![cst("a"), var("X")])],
            vec![atom("q", vec![cst("b")])],
        )
        .unwrap();
        assert!(r.universal_variables().contains(&Symbol::intern("X")));
        assert!(r.head_variables().is_empty());
    }
}
