//! Total interpretations, represented by their positive part.
//!
//! A (two-valued) interpretation `I` over a schema is, in the paper, a set of
//! literals over constants and nulls such that for every atom over `dom(I)`
//! either the atom or its negation belongs to `I`.  Such an interpretation is
//! fully determined by its positive part `I⁺` together with its domain, so we
//! store exactly that:  `¬p(t̄) ∈ I` iff every term of `t̄` belongs to
//! `dom(I)` and `p(t̄) ∉ I⁺`.
//!
//! The domain is by default the set of terms occurring in `I⁺`; additional
//! domain elements can be registered explicitly (used by engines that fix a
//! candidate domain before choosing which atoms are true).
//!
//! # Storage layout
//!
//! Atoms live in an append-only **arena** addressed by dense [`AtomId`]s, in
//! insertion order.  On top of the arena the interpretation maintains, fully
//! incrementally on [`Interpretation::insert`]:
//!
//! * a hash table from atom hashes to ids (duplicate detection with a single
//!   hash computation and no atom clone),
//! * a per-predicate index (`predicate → [AtomId]`), and
//! * a per-argument-position index (`(predicate, position, term) → [AtomId]`)
//!   that the [`crate::matcher`] join engine probes instead of scanning all
//!   atoms of a predicate.
//!
//! All id lists are in insertion order (ascending), so a suffix of the arena
//! — "every atom inserted since watermark `w`" — can be selected by binary
//! search.  The matcher's semi-naive *delta* entry points use this to match
//! only against newly derived atoms.
//!
//! # Base + overlay (copy-on-write forking)
//!
//! An interpretation is physically a pair of `Segment`s: an optional
//! **base** — an immutable, [`Arc`]-shared [`InterpretationBase`] produced by
//! [`Interpretation::freeze`] — and a private mutable **overlay**.  Forking a
//! frozen base ([`Interpretation::fork`]) is O(1): the fork holds an `Arc` to
//! the base and starts with an empty overlay; all subsequent inserts land in
//! the overlay.
//!
//! [`AtomId`]s stay dense across the boundary: base atoms occupy ids
//! `0..base_len`, overlay atoms `base_len..len`, and overlay index lists
//! store *absolute* ids.  A probe therefore returns an [`IdProbe`] — the
//! concatenation of the base index tail and the overlay index tail, which is
//! ascending as a whole — and everything built on ascending id lists
//! (watermark deltas, compiled plans, [`Interpretation::truncate`]) works
//! unchanged.  Truncation never crosses the boundary: rolling back below
//! `base_len` is a contract violation and panics rather than corrupting the
//! shared base.
//!
//! # Snapshot reads under parallelism
//!
//! The interpretation is the shared read-only snapshot of every parallel
//! round (see [`crate::parallel`]): workers probe the indexes and arena
//! through `&Interpretation` while all mutation ([`Interpretation::insert`])
//! happens between rounds on a single thread.  Because [`AtomId`]s are dense,
//! assigned in insertion order and never reused, a watermark taken before a
//! round selects the same delta suffix for every worker, which is what makes
//! the per-`(rule, pivot)` partition of a delta round exact.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::iter::Peekable;
use std::sync::Arc;

use crate::atom::{Atom, Literal};
use crate::symbol::Symbol;
use crate::term::Term;

/// Dense identifier of an atom within one [`Interpretation`]'s arena.
///
/// Ids are assigned in insertion order starting from zero and are never
/// reused; they are meaningful only relative to the interpretation that
/// issued them.  In a forked interpretation, ids below
/// [`Interpretation::base_len`] address the shared base segment and the rest
/// address the private overlay — the numbering is continuous, so consumers
/// never observe the boundary.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AtomId(pub u32);

impl AtomId {
    /// The id as a usize arena offset.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Hash of an atom given as `(predicate, args)` parts.  Used for both stored
/// atoms and probe lookups so that the two always agree.
fn parts_hash(predicate: Symbol, args: &[Term]) -> u64 {
    let mut hasher = DefaultHasher::new();
    predicate.hash(&mut hasher);
    args.hash(&mut hasher);
    hasher.finish()
}

fn atom_hash(atom: &Atom) -> u64 {
    parts_hash(atom.predicate(), atom.args())
}

/// Expected index tails per atom reserved up front by
/// [`Interpretation::with_capacity`]; matches the by-hash bucket (one id per
/// hash in the absence of collisions).
const BUCKET_CAPACITY: usize = 1;

/// One storage segment: an arena plus its indexes and domain bookkeeping.
///
/// The monolithic (unforked) interpretation is a single segment; a forked
/// interpretation layers a mutable overlay segment over a frozen base
/// segment.  Overlay id lists store ids offset by the base length, so the
/// arena of an overlay segment holds the atom with id `base_len + i` at
/// offset `i`.
#[derive(Clone, Default, Debug)]
struct Segment {
    /// Atom storage in insertion order.
    arena: Vec<Atom>,
    /// Atom-hash → ids with that hash (almost always a single id).
    by_hash: HashMap<u64, Vec<AtomId>>,
    /// Predicate → ids, ascending.
    by_predicate: HashMap<Symbol, Vec<AtomId>>,
    /// (predicate, argument position, ground term) → ids, ascending.
    by_position: HashMap<(Symbol, u32, Term), Vec<AtomId>>,
    domain: BTreeSet<Term>,
    /// Occurrences of each domain term in this segment's arena (`domain`
    /// holds exactly the terms with a positive count).  Maintained so that
    /// [`Interpretation::truncate`] can drop terms whose last occurrence is
    /// rolled back.
    domain_occurrences: HashMap<Term, usize>,
    extra_domain: BTreeSet<Term>,
}

/// A frozen, immutable interpretation segment, shared between forks through
/// an [`Arc`].  Produced by [`Interpretation::freeze`], consumed by
/// [`Interpretation::fork`].
#[derive(Clone, Debug)]
pub struct InterpretationBase {
    segment: Segment,
}

impl InterpretationBase {
    /// Number of atoms in the frozen base (the fork watermark: forked
    /// overlay atoms receive ids `>= len()`).
    pub fn len(&self) -> usize {
        self.segment.arena.len()
    }

    /// Returns `true` if the base holds no atoms.
    pub fn is_empty(&self) -> bool {
        self.segment.arena.is_empty()
    }

    /// Iterates over the base atoms in insertion order.
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> + '_ {
        self.segment.arena.iter()
    }
}

/// The result of an index probe: the ascending concatenation of a base index
/// tail and an overlay index tail.
///
/// Base ids are all `< base_len` and overlay ids all `>= base_len`, so the
/// concatenation is ascending as a whole and supports the same
/// binary-search-at-a-watermark operations as a single slice.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdProbe<'a> {
    base: &'a [AtomId],
    overlay: &'a [AtomId],
}

impl<'a> IdProbe<'a> {
    /// An empty probe result.
    pub fn empty() -> IdProbe<'static> {
        IdProbe {
            base: &[],
            overlay: &[],
        }
    }

    /// Total number of ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.base.len() + self.overlay.len()
    }

    /// Returns `true` if the probe matched nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.overlay.is_empty()
    }

    /// Iterates over the ids in ascending order.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = AtomId> + 'a {
        self.base.iter().chain(self.overlay.iter()).copied()
    }

    /// The two underlying ascending slices, `(base, overlay)`.  Hot loops
    /// iterate these back to back instead of through [`IdProbe::iter`]: two
    /// tight slice loops avoid the chain iterator's per-element branch.
    #[inline]
    pub fn slices(self) -> (&'a [AtomId], &'a [AtomId]) {
        (self.base, self.overlay)
    }

    /// The ids with `index < watermark` (ascending).  O(log n).
    pub fn below(self, watermark: usize) -> IdProbe<'a> {
        let base_cut = self.base.partition_point(|id| id.index() < watermark);
        let overlay_cut = self.overlay.partition_point(|id| id.index() < watermark);
        IdProbe {
            base: &self.base[..base_cut],
            overlay: &self.overlay[..overlay_cut],
        }
    }

    /// The ids with `index >= watermark` (ascending).  O(log n).
    pub fn since(self, watermark: usize) -> IdProbe<'a> {
        let base_cut = self.base.partition_point(|id| id.index() < watermark);
        let overlay_cut = self.overlay.partition_point(|id| id.index() < watermark);
        IdProbe {
            base: &self.base[base_cut..],
            overlay: &self.overlay[overlay_cut..],
        }
    }
}

/// Lazy ascending merge of two sorted deduplicated `Term` sequences,
/// emitting each term once.  Used to present the union of base and overlay
/// domain sets in exactly the order a monolithic [`BTreeSet`] would.
struct SortedTermMerge<'a> {
    left: Peekable<std::collections::btree_set::Iter<'a, Term>>,
    right: Peekable<std::collections::btree_set::Iter<'a, Term>>,
}

impl<'a> SortedTermMerge<'a> {
    fn new(left: &'a BTreeSet<Term>, right: &'a BTreeSet<Term>) -> SortedTermMerge<'a> {
        SortedTermMerge {
            left: left.iter().peekable(),
            right: right.iter().peekable(),
        }
    }
}

impl<'a> Iterator for SortedTermMerge<'a> {
    type Item = &'a Term;

    fn next(&mut self) -> Option<&'a Term> {
        match (self.left.peek(), self.right.peek()) {
            (Some(l), Some(r)) => match l.cmp(r) {
                std::cmp::Ordering::Less => self.left.next(),
                std::cmp::Ordering::Greater => self.right.next(),
                std::cmp::Ordering::Equal => {
                    self.right.next();
                    self.left.next()
                }
            },
            (Some(_), None) => self.left.next(),
            (None, _) => self.right.next(),
        }
    }
}

static EMPTY_TERM_SET: BTreeSet<Term> = BTreeSet::new();

/// A total interpretation represented by its positive part plus its domain.
#[derive(Clone, Default, Debug)]
pub struct Interpretation {
    /// The shared frozen base segment, if this interpretation was forked.
    base: Option<Arc<InterpretationBase>>,
    /// The private mutable segment (the whole storage when `base` is
    /// `None`).  Its id lists hold absolute ids (`>= base_len`).
    overlay: Segment,
}

// `Send + Sync` audit: all storage is owned (`Vec`, `HashMap`, `BTreeSet` of
// `Copy` terms) or shared read-only behind `Arc`, so a frozen interpretation
// can be shared by reference with every pool worker of a round.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Interpretation>();
    assert_send_sync::<InterpretationBase>();
};

impl Interpretation {
    /// Creates an empty interpretation (empty positive part, empty domain).
    pub fn new() -> Interpretation {
        Interpretation::default()
    }

    /// Creates an empty interpretation with storage reserved for `atoms`
    /// inserts (arena, hash table, and position index), the base-freeze hot
    /// path of bulk loads.
    pub fn with_capacity(atoms: usize) -> Interpretation {
        Interpretation {
            base: None,
            overlay: Segment {
                arena: Vec::with_capacity(atoms),
                by_hash: HashMap::with_capacity(atoms),
                by_predicate: HashMap::new(),
                // Heuristic: most workloads index ~2 ground positions per
                // atom; a slight under-reservation only costs one rehash.
                by_position: HashMap::with_capacity(atoms.saturating_mul(2)),
                domain: BTreeSet::new(),
                domain_occurrences: HashMap::new(),
                extra_domain: BTreeSet::new(),
            },
        }
    }

    /// Creates an interpretation from ground atoms, reserving capacity up
    /// front from the iterator's size hint.
    ///
    /// # Panics
    ///
    /// Panics if an atom contains a variable.
    pub fn from_atoms<I>(atoms: I) -> Interpretation
    where
        I: IntoIterator<Item = Atom>,
    {
        let iter = atoms.into_iter();
        let (lower, upper) = iter.size_hint();
        let mut out = Interpretation::with_capacity(upper.unwrap_or(lower));
        for a in iter {
            out.insert(a);
        }
        out
    }

    /// Forks a frozen base: O(1), sharing the base segment and starting an
    /// empty private overlay.  Ids, indexes, domain, and watermark semantics
    /// are identical to a monolithic interpretation holding the same atoms.
    pub fn fork(base: &Arc<InterpretationBase>) -> Interpretation {
        Interpretation {
            base: Some(Arc::clone(base)),
            overlay: Segment::default(),
        }
    }

    /// Freezes this interpretation into an immutable shareable base.
    ///
    /// Moves the storage when possible: a monolithic interpretation is
    /// wrapped without copying, and a fork whose overlay is empty returns
    /// the existing base `Arc`.  A fork with a non-empty overlay is
    /// flattened into a fresh monolithic segment first (O(len)).
    pub fn freeze(self) -> Arc<InterpretationBase> {
        match self.base {
            None => Arc::new(InterpretationBase {
                segment: self.overlay,
            }),
            Some(base) if self.overlay.arena.is_empty() && self.overlay.extra_domain.is_empty() => {
                base
            }
            Some(base) => {
                let mut flat = Interpretation::with_capacity(base.len() + self.overlay.arena.len());
                for a in base.atoms() {
                    flat.insert(a.clone());
                }
                for t in &base.segment.extra_domain {
                    flat.add_domain_element(*t);
                }
                for a in self.overlay.arena {
                    flat.insert(a);
                }
                for t in self.overlay.extra_domain {
                    flat.add_domain_element(t);
                }
                Arc::new(InterpretationBase {
                    segment: flat.overlay,
                })
            }
        }
    }

    /// Number of atoms in the shared base segment (0 when not forked).
    /// The floor of [`Interpretation::truncate`].
    pub fn base_len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.len())
    }

    /// Number of atoms in the private overlay segment.
    pub fn overlay_len(&self) -> usize {
        self.overlay.arena.len()
    }

    /// The shared base segment, if this interpretation was forked.
    pub fn base_handle(&self) -> Option<&Arc<InterpretationBase>> {
        self.base.as_ref()
    }

    /// Inserts a ground atom into the positive part.  Returns `true` if it was
    /// new.
    ///
    /// The insert performs one hash computation and, for new atoms, one
    /// `AtomId` push per index entry; the atom itself is moved into the arena
    /// without cloning.  On a forked interpretation the atom lands in the
    /// private overlay (duplicates of base atoms are detected through the
    /// base's hash table first).
    ///
    /// # Panics
    ///
    /// Panics if the atom contains a variable.
    pub fn insert(&mut self, atom: Atom) -> bool {
        assert!(
            atom.is_ground(),
            "interpretations contain only ground atoms, got {atom}"
        );
        let hash = atom_hash(&atom);
        let base_len = self.base_len();
        if let Some(base) = &self.base {
            if let Some(bucket) = base.segment.by_hash.get(&hash) {
                if bucket
                    .iter()
                    .any(|id| base.segment.arena[id.index()] == atom)
                {
                    return false;
                }
            }
        }
        let bucket = self
            .overlay
            .by_hash
            .entry(hash)
            .or_insert_with(|| Vec::with_capacity(BUCKET_CAPACITY));
        if bucket
            .iter()
            .any(|id| self.overlay.arena[id.index() - base_len] == atom)
        {
            return false;
        }
        let id =
            AtomId(u32::try_from(base_len + self.overlay.arena.len()).expect("arena overflow"));
        bucket.push(id);
        for (position, t) in atom.args().iter().enumerate() {
            self.overlay.domain.insert(*t);
            *self.overlay.domain_occurrences.entry(*t).or_insert(0) += 1;
            self.overlay
                .by_position
                .entry((atom.predicate(), position as u32, *t))
                .or_insert_with(|| Vec::with_capacity(BUCKET_CAPACITY))
                .push(id);
        }
        self.overlay
            .by_predicate
            .entry(atom.predicate())
            .or_default()
            .push(id);
        self.overlay.arena.push(atom);
        true
    }

    /// Rolls the arena back to its first `len` atoms: every atom inserted at
    /// or after the watermark `len` (an earlier value of
    /// [`Interpretation::len`]) is removed, together with its index entries
    /// and its contribution to `dom(I)`.
    ///
    /// This is the *epoch rollback* primitive of incremental reasoning
    /// sessions: because [`AtomId`]s are dense and assigned in insertion
    /// order, the atoms of an epoch occupy exactly an arena suffix, every id
    /// list of every index ends with the ids being removed (lists are
    /// ascending), and truncation is `O(atoms removed)` — surviving atoms,
    /// ids and index entries are untouched.  Explicitly registered domain
    /// elements ([`Interpretation::add_domain_element`]) are never removed.
    ///
    /// A no-op if `len >= self.len()`.  Truncating exactly to the fork
    /// watermark empties the overlay and leaves the shared base untouched.
    ///
    /// # Panics
    ///
    /// Panics if `len < self.base_len()`: the base segment is frozen and
    /// shared, so rolling back into it would corrupt every fork — callers
    /// must retract to a mark at or above the fork watermark.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len() {
            return;
        }
        let base_len = self.base_len();
        assert!(
            len >= base_len,
            "cannot truncate a forked interpretation below its base watermark \
             (requested {len}, base holds {base_len} atoms)"
        );
        while base_len + self.overlay.arena.len() > len {
            let id = AtomId((base_len + self.overlay.arena.len() - 1) as u32);
            let atom = self.overlay.arena.pop().expect("arena is non-empty");
            let hash = atom_hash(&atom);
            let bucket = self
                .overlay
                .by_hash
                .get_mut(&hash)
                .expect("stored atoms have a hash bucket");
            bucket.retain(|candidate| *candidate != id);
            if bucket.is_empty() {
                self.overlay.by_hash.remove(&hash);
            }
            for (position, t) in atom.args().iter().enumerate() {
                let occurrences = self
                    .overlay
                    .domain_occurrences
                    .get_mut(t)
                    .expect("domain terms are counted");
                *occurrences -= 1;
                if *occurrences == 0 {
                    self.overlay.domain_occurrences.remove(t);
                    self.overlay.domain.remove(t);
                }
                let key = (atom.predicate(), position as u32, *t);
                let ids = self
                    .overlay
                    .by_position
                    .get_mut(&key)
                    .expect("stored atoms are position-indexed");
                debug_assert_eq!(ids.last(), Some(&id), "id lists are ascending");
                ids.pop();
                if ids.is_empty() {
                    self.overlay.by_position.remove(&key);
                }
            }
            let ids = self
                .overlay
                .by_predicate
                .get_mut(&atom.predicate())
                .expect("stored atoms are predicate-indexed");
            debug_assert_eq!(ids.last(), Some(&id), "id lists are ascending");
            ids.pop();
            if ids.is_empty() {
                self.overlay.by_predicate.remove(&atom.predicate());
            }
        }
    }

    /// Registers an additional domain element that need not occur in `I⁺`.
    pub fn add_domain_element(&mut self, term: Term) {
        assert!(term.is_ground(), "domain elements must be ground");
        if let Some(base) = &self.base {
            if base.segment.extra_domain.contains(&term) {
                return;
            }
        }
        self.overlay.extra_domain.insert(term);
    }

    /// Returns `true` if the positive part contains the atom.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.id_of(atom).is_some()
    }

    /// Returns the arena id of the atom, if present.
    pub fn id_of(&self, atom: &Atom) -> Option<AtomId> {
        self.id_of_parts(atom.predicate(), atom.args())
    }

    /// [`Interpretation::id_of`] for an atom given as `(predicate, args)`
    /// parts, without building an [`Atom`].
    pub fn id_of_parts(&self, predicate: Symbol, args: &[Term]) -> Option<AtomId> {
        let hash = parts_hash(predicate, args);
        if let Some(base) = &self.base {
            if let Some(found) = base.segment.by_hash.get(&hash).and_then(|bucket| {
                bucket.iter().copied().find(|id| {
                    let stored = &base.segment.arena[id.index()];
                    stored.predicate() == predicate && stored.args() == args
                })
            }) {
                return Some(found);
            }
        }
        let base_len = self.base_len();
        self.overlay.by_hash.get(&hash)?.iter().copied().find(|id| {
            let stored = &self.overlay.arena[id.index() - base_len];
            stored.predicate() == predicate && stored.args() == args
        })
    }

    /// [`Interpretation::contains`] for an atom given as parts.
    pub fn contains_parts(&self, predicate: Symbol, args: &[Term]) -> bool {
        self.id_of_parts(predicate, args).is_some()
    }

    /// [`Interpretation::satisfies_negation_of`] for an atom given as parts.
    pub fn satisfies_negation_of_parts(&self, predicate: Symbol, args: &[Term]) -> bool {
        args.iter().all(|t| self.in_domain(t)) && !self.contains_parts(predicate, args)
    }

    /// The atom stored under the given arena id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this interpretation.
    pub fn atom(&self, id: AtomId) -> &Atom {
        let base_len = self.base_len();
        if id.index() < base_len {
            let base = self.base.as_ref().expect("ids below base_len imply a base");
            &base.segment.arena[id.index()]
        } else {
            &self.overlay.arena[id.index() - base_len]
        }
    }

    /// Returns `true` if `t` belongs to `dom(I)`.
    pub fn in_domain(&self, t: &Term) -> bool {
        if self.overlay.domain.contains(t) || self.overlay.extra_domain.contains(t) {
            return true;
        }
        match &self.base {
            Some(base) => base.segment.domain.contains(t) || base.segment.extra_domain.contains(t),
            None => false,
        }
    }

    /// Returns `true` if the *negative* literal `¬atom` belongs to `I`, i.e.
    /// all terms of `atom` are in `dom(I)` and `atom ∉ I⁺`.
    pub fn satisfies_negation_of(&self, atom: &Atom) -> bool {
        atom.terms().all(|t| self.in_domain(t)) && !self.contains(atom)
    }

    /// Returns `true` if the ground literal belongs to `I`.
    pub fn satisfies_literal(&self, lit: &Literal) -> bool {
        if lit.is_positive() {
            self.contains(lit.atom())
        } else {
            self.satisfies_negation_of(lit.atom())
        }
    }

    /// Number of atoms in the positive part `|I⁺|`.
    ///
    /// Also the *watermark* for delta matching: atoms inserted after `len()`
    /// was observed receive ids `>= len()`.
    pub fn len(&self) -> usize {
        self.base_len() + self.overlay.arena.len()
    }

    /// Returns `true` if the positive part is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the positive part in insertion order.
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> + '_ {
        let base = self
            .base
            .as_ref()
            .map(|b| b.segment.arena.as_slice())
            .unwrap_or(&[]);
        base.iter().chain(self.overlay.arena.iter())
    }

    /// Iterates over the atoms inserted at or after the watermark (the value
    /// of [`Interpretation::len`] at some earlier point).
    pub fn atoms_from(&self, watermark: usize) -> impl Iterator<Item = &Atom> + '_ {
        let base_len = self.base_len();
        let base = match &self.base {
            Some(b) if watermark < base_len => &b.segment.arena[watermark..],
            _ => &[],
        };
        let overlay_start = watermark
            .saturating_sub(base_len)
            .min(self.overlay.arena.len());
        base.iter()
            .chain(self.overlay.arena[overlay_start..].iter())
    }

    /// Returns the positive part as a sorted vector (deterministic order).
    pub fn sorted_atoms(&self) -> Vec<Atom> {
        let mut v: Vec<Atom> = self.atoms().cloned().collect();
        v.sort();
        v
    }

    /// The atoms of the positive part with the given predicate.
    pub fn atoms_with_predicate(&self, predicate: Symbol) -> impl Iterator<Item = &Atom> + '_ {
        self.ids_with_predicate(predicate)
            .iter()
            .map(move |id| self.atom(id))
    }

    /// The ids (ascending) of the atoms with the given predicate.
    pub fn ids_with_predicate(&self, predicate: Symbol) -> IdProbe<'_> {
        IdProbe {
            base: self
                .base
                .as_ref()
                .and_then(|b| b.segment.by_predicate.get(&predicate))
                .map(Vec::as_slice)
                .unwrap_or(&[]),
            overlay: self
                .overlay
                .by_predicate
                .get(&predicate)
                .map(Vec::as_slice)
                .unwrap_or(&[]),
        }
    }

    /// Number of atoms with the given predicate.
    pub fn predicate_count(&self, predicate: Symbol) -> usize {
        self.ids_with_predicate(predicate).len()
    }

    /// Index probe: the ids (ascending) of the atoms whose predicate is
    /// `predicate` and whose argument at `position` is the ground term
    /// `term`.  This is the core lookup of the indexed join engine.
    pub fn probe(&self, predicate: Symbol, position: u32, term: Term) -> IdProbe<'_> {
        let key = (predicate, position, term);
        IdProbe {
            base: self
                .base
                .as_ref()
                .and_then(|b| b.segment.by_position.get(&key))
                .map(Vec::as_slice)
                .unwrap_or(&[]),
            overlay: self
                .overlay
                .by_position
                .get(&key)
                .map(Vec::as_slice)
                .unwrap_or(&[]),
        }
    }

    /// Cardinality of an index probe without materialising it.
    pub fn probe_count(&self, predicate: Symbol, position: u32, term: Term) -> usize {
        self.probe(predicate, position, term).len()
    }

    fn base_domain_sets(&self) -> (&BTreeSet<Term>, &BTreeSet<Term>) {
        match &self.base {
            Some(b) => (&b.segment.domain, &b.segment.extra_domain),
            None => (&EMPTY_TERM_SET, &EMPTY_TERM_SET),
        }
    }

    /// The domain `dom(I)` (terms of `I⁺` plus explicitly registered ones).
    pub fn domain(&self) -> BTreeSet<Term> {
        let (base_domain, base_extra) = self.base_domain_sets();
        let mut d = base_domain.clone();
        d.extend(self.overlay.domain.iter().copied());
        d.extend(base_extra.iter().copied());
        d.extend(self.overlay.extra_domain.iter().copied());
        d
    }

    /// Iterates over `dom(I)` without materialising a set: first the terms
    /// of `I⁺` in `Term` order, then the extra domain elements not in `I⁺`,
    /// also in `Term` order — exactly the sequence a monolithic
    /// interpretation with the same contents produces, regardless of how
    /// the atoms are split between base and overlay.
    pub fn domain_iter(&self) -> impl Iterator<Item = &Term> + '_ {
        let (base_domain, base_extra) = self.base_domain_sets();
        let in_true_domain =
            move |t: &Term| base_domain.contains(t) || self.overlay.domain.contains(t);
        SortedTermMerge::new(base_domain, &self.overlay.domain).chain(
            SortedTermMerge::new(base_extra, &self.overlay.extra_domain)
                .filter(move |t| !in_true_domain(t)),
        )
    }

    /// Returns `true` if `self⁺ ⊆ other⁺`.
    pub fn is_subset_of(&self, other: &Interpretation) -> bool {
        self.atoms().all(|a| other.contains(a))
    }

    /// Returns `true` if the positive parts coincide.
    pub fn same_atoms_as(&self, other: &Interpretation) -> bool {
        self.len() == other.len() && self.is_subset_of(other)
    }

    /// Set-difference of positive parts: atoms of `self` not in `other`.
    pub fn difference(&self, other: &Interpretation) -> Vec<Atom> {
        let mut v: Vec<Atom> = self
            .atoms()
            .filter(|a| !other.contains(a))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// The set of predicates with at least one true atom.
    pub fn predicates(&self) -> HashSet<Symbol> {
        let base = self
            .base
            .as_ref()
            .map(|b| &b.segment.by_predicate)
            .into_iter()
            .flatten();
        base.chain(self.overlay.by_predicate.iter())
            .filter(|(_, v)| !v.is_empty())
            .map(|(&p, _)| p)
            .collect()
    }

    /// Returns the nulls occurring in the positive part.
    pub fn nulls(&self) -> BTreeSet<Term> {
        let (base_domain, _) = self.base_domain_sets();
        SortedTermMerge::new(base_domain, &self.overlay.domain)
            .filter(|t| t.is_null())
            .copied()
            .collect()
    }
}

impl PartialEq for Interpretation {
    /// Two interpretations are equal when their positive parts and domains
    /// coincide (regardless of how atoms are split between base and
    /// overlay).
    fn eq(&self, other: &Self) -> bool {
        self.same_atoms_as(other) && self.domain() == other.domain()
    }
}

impl Eq for Interpretation {}

impl fmt::Display for Interpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.sorted_atoms().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Atom> for Interpretation {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        Interpretation::from_atoms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, cst};

    fn sample() -> Interpretation {
        Interpretation::from_atoms(vec![
            atom("p", vec![cst("a")]),
            atom("q", vec![cst("a"), Term::null(0)]),
        ])
    }

    #[test]
    fn insert_builds_domain() {
        let i = sample();
        assert_eq!(i.len(), 2);
        assert!(i.in_domain(&cst("a")));
        assert!(i.in_domain(&Term::null(0)));
        assert!(!i.in_domain(&cst("b")));
        assert_eq!(i.domain().len(), 2);
        assert_eq!(i.nulls().len(), 1);
    }

    #[test]
    fn negative_literals_require_domain_membership() {
        let i = sample();
        // q(a,a) is over the domain and not true, so ¬q(a,a) holds.
        assert!(i.satisfies_negation_of(&atom("q", vec![cst("a"), cst("a")])));
        // p(b) mentions b ∉ dom(I): neither p(b) nor ¬p(b) is in I.
        assert!(!i.satisfies_negation_of(&atom("p", vec![cst("b")])));
        assert!(!i.contains(&atom("p", vec![cst("b")])));
        // p(a) is true, so ¬p(a) does not hold.
        assert!(!i.satisfies_negation_of(&atom("p", vec![cst("a")])));
    }

    #[test]
    fn satisfies_literal_dispatches_on_polarity() {
        let i = sample();
        assert!(i.satisfies_literal(&Literal::positive(atom("p", vec![cst("a")]))));
        assert!(i.satisfies_literal(&Literal::negative(atom("p", vec![Term::null(0)]))));
        assert!(!i.satisfies_literal(&Literal::negative(atom("p", vec![cst("a")]))));
    }

    #[test]
    fn extra_domain_elements_extend_negative_knowledge() {
        let mut i = sample();
        assert!(!i.satisfies_negation_of(&atom("p", vec![cst("bob")])));
        i.add_domain_element(cst("bob"));
        assert!(i.satisfies_negation_of(&atom("p", vec![cst("bob")])));
        assert!(i.domain_iter().count() == 3);
        assert!(i.domain_iter().any(|t| *t == cst("bob")));
    }

    #[test]
    fn subset_and_equality() {
        let i = sample();
        let mut j = i.clone();
        assert!(i.is_subset_of(&j) && j.is_subset_of(&i));
        assert!(i.same_atoms_as(&j));
        assert_eq!(i, j);
        j.insert(atom("p", vec![cst("b")]));
        assert!(i.is_subset_of(&j));
        assert!(!j.is_subset_of(&i));
        assert_eq!(j.difference(&i), vec![atom("p", vec![cst("b")])]);
    }

    #[test]
    #[should_panic(expected = "ground atoms")]
    fn inserting_non_ground_atom_panics() {
        let mut i = Interpretation::new();
        i.insert(atom("p", vec![crate::var("X")]));
    }

    #[test]
    fn duplicate_insert_reports_false() {
        let mut i = sample();
        assert!(!i.insert(atom("p", vec![cst("a")])));
        assert!(i.insert(atom("p", vec![cst("z")])));
    }

    #[test]
    fn display_is_sorted_and_braced() {
        let i = Interpretation::from_atoms(vec![atom("b", vec![]), atom("a", vec![])]);
        assert_eq!(i.to_string(), "{a, b}");
    }

    #[test]
    fn arena_ids_are_dense_and_in_insertion_order() {
        let mut i = Interpretation::new();
        let a = atom("p", vec![cst("a")]);
        let b = atom("p", vec![cst("b")]);
        i.insert(a.clone());
        i.insert(b.clone());
        assert_eq!(i.id_of(&a), Some(AtomId(0)));
        assert_eq!(i.id_of(&b), Some(AtomId(1)));
        assert_eq!(i.atom(AtomId(1)), &b);
        assert_eq!(i.id_of(&atom("p", vec![cst("z")])), None);
        let collected: Vec<&Atom> = i.atoms().collect();
        assert_eq!(collected, vec![&a, &b]);
    }

    #[test]
    fn position_index_probes_by_bound_argument() {
        let i = Interpretation::from_atoms(vec![
            atom("edge", vec![cst("a"), cst("b")]),
            atom("edge", vec![cst("a"), cst("c")]),
            atom("edge", vec![cst("b"), cst("c")]),
        ]);
        let pred = Symbol::intern("edge");
        assert_eq!(i.probe(pred, 0, cst("a")).len(), 2);
        assert_eq!(i.probe(pred, 1, cst("c")).len(), 2);
        assert_eq!(i.probe(pred, 0, cst("z")).len(), 0);
        assert_eq!(i.probe_count(pred, 1, cst("b")), 1);
        assert_eq!(i.predicate_count(pred), 3);
        assert_eq!(i.predicate_count(Symbol::intern("missing")), 0);
        // Probes return ascending ids.
        let ids: Vec<AtomId> = i.probe(pred, 1, cst("c")).iter().collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn truncate_rolls_back_an_arena_suffix_exactly() {
        let mut i = Interpretation::from_atoms(vec![
            atom("p", vec![cst("a")]),
            atom("q", vec![cst("a"), cst("b")]),
        ]);
        let before = i.clone();
        let watermark = i.len();
        i.insert(atom("p", vec![cst("b")]));
        i.insert(atom("q", vec![cst("b"), cst("c")]));
        i.insert(atom("r", vec![Term::null(4)]));
        i.truncate(watermark);
        // Structural equality: arena, ids, indexes, domain all match the
        // pre-epoch state.
        assert_eq!(i, before);
        assert_eq!(i.len(), 2);
        assert_eq!(
            i.atoms().cloned().collect::<Vec<_>>(),
            before.atoms().cloned().collect::<Vec<_>>()
        );
        assert_eq!(i.id_of(&atom("p", vec![cst("a")])), Some(AtomId(0)));
        assert_eq!(i.id_of(&atom("p", vec![cst("b")])), None);
        assert_eq!(i.predicate_count(Symbol::intern("r")), 0);
        assert_eq!(i.probe(Symbol::intern("q"), 0, cst("b")).len(), 0);
        assert!(!i.in_domain(&cst("c")));
        assert!(!i.in_domain(&Term::null(4)));
        // The term `b` occurred both before and inside the epoch: it must
        // survive the rollback.
        assert!(i.in_domain(&cst("b")));
        // Re-inserting after a truncate reuses the freed dense ids.
        assert!(i.insert(atom("p", vec![cst("b")])));
        assert_eq!(i.id_of(&atom("p", vec![cst("b")])), Some(AtomId(2)));
    }

    #[test]
    fn truncate_beyond_the_arena_is_a_no_op_and_keeps_extra_domain() {
        let mut i = sample();
        i.add_domain_element(cst("bob"));
        let before = i.clone();
        i.truncate(100);
        assert_eq!(i, before);
        i.truncate(0);
        assert!(i.is_empty());
        assert_eq!(i.domain().len(), 1, "extra domain elements survive");
        assert!(i.in_domain(&cst("bob")));
    }

    #[test]
    fn truncate_to_zero_empties_every_index() {
        let mut i = Interpretation::from_atoms(vec![
            atom("p", vec![cst("a")]),
            atom("q", vec![cst("a"), cst("b")]),
            atom("p", vec![Term::null(1)]),
        ]);
        i.truncate(0);
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
        assert_eq!(i.atoms().count(), 0);
        assert_eq!(i.domain().len(), 0);
        assert_eq!(i.predicates().len(), 0);
        assert_eq!(i.predicate_count(Symbol::intern("p")), 0);
        assert_eq!(i.probe(Symbol::intern("q"), 0, cst("a")).len(), 0);
        assert_eq!(i.id_of(&atom("p", vec![cst("a")])), None);
        // The emptied interpretation behaves like a fresh one: inserts
        // restart at id 0 and rebuild the indexes.
        assert!(i.insert(atom("q", vec![cst("a"), cst("b")])));
        assert_eq!(
            i.id_of(&atom("q", vec![cst("a"), cst("b")])),
            Some(AtomId(0))
        );
        assert_eq!(i.probe(Symbol::intern("q"), 1, cst("b")).len(), 1);
    }

    #[test]
    fn truncate_after_a_no_op_insert_changes_nothing() {
        let mut i = sample();
        let watermark = i.len();
        // Duplicate insert: no arena growth, no index growth.
        assert!(!i.insert(atom("p", vec![cst("a")])));
        let before = i.clone();
        i.truncate(watermark);
        assert_eq!(i, before);
        assert_eq!(i.len(), watermark);
        assert_eq!(i.id_of(&atom("p", vec![cst("a")])), Some(AtomId(0)));
        assert!(i.in_domain(&cst("a")));
    }

    #[test]
    fn double_truncate_to_the_same_mark_is_idempotent() {
        let mut i = sample();
        let watermark = i.len();
        i.insert(atom("p", vec![cst("b")]));
        i.insert(atom("r", vec![cst("b"), Term::null(7)]));
        i.truncate(watermark);
        let after_first = i.clone();
        // The second truncate sees `len == watermark` and must be a no-op —
        // in particular it must not decrement domain occurrence counts or
        // pop index tails again.
        i.truncate(watermark);
        assert_eq!(i, after_first);
        assert_eq!(i.len(), watermark);
        assert!(i.in_domain(&cst("a")));
        assert!(!i.in_domain(&cst("b")));
        assert!(!i.in_domain(&Term::null(7)));
        // Still a working arena afterwards.
        assert!(i.insert(atom("p", vec![cst("b")])));
        assert_eq!(
            i.id_of(&atom("p", vec![cst("b")])),
            Some(AtomId(watermark as u32))
        );
    }

    #[test]
    fn watermark_suffixes_select_newly_inserted_atoms() {
        let mut i = Interpretation::from_atoms(vec![atom("p", vec![cst("a")])]);
        let watermark = i.len();
        i.insert(atom("p", vec![cst("b")]));
        i.insert(atom("q", vec![cst("c")]));
        let delta: Vec<String> = i.atoms_from(watermark).map(Atom::to_string).collect();
        assert_eq!(delta, vec!["p(b)", "q(c)"]);
        assert_eq!(i.atoms_from(100).count(), 0);
    }

    // ---- base + overlay (copy-on-write forking) ----

    /// A monolithic interpretation and a base+overlay fork holding the same
    /// atoms, split after the first two inserts.
    fn monolithic_and_forked() -> (Interpretation, Interpretation) {
        let first = vec![
            atom("edge", vec![cst("a"), cst("b")]),
            atom("edge", vec![cst("b"), cst("c")]),
        ];
        let second = vec![
            atom("edge", vec![cst("a"), cst("c")]),
            atom("node", vec![cst("d")]),
        ];
        let mut mono = Interpretation::from_atoms(first.clone());
        let base = Interpretation::from_atoms(first).freeze();
        let mut fork = Interpretation::fork(&base);
        for a in second {
            mono.insert(a.clone());
            fork.insert(a);
        }
        (mono, fork)
    }

    #[test]
    fn fork_is_observationally_identical_to_monolithic() {
        let (mono, fork) = monolithic_and_forked();
        assert_eq!(fork.base_len(), 2);
        assert_eq!(fork.overlay_len(), 2);
        assert_eq!(mono, fork);
        assert_eq!(mono.len(), fork.len());
        assert_eq!(
            mono.atoms().collect::<Vec<_>>(),
            fork.atoms().collect::<Vec<_>>()
        );
        assert_eq!(mono.sorted_atoms(), fork.sorted_atoms());
        assert_eq!(mono.domain(), fork.domain());
        assert_eq!(mono.predicates(), fork.predicates());
        assert_eq!(mono.to_string(), fork.to_string());
        // Ids are dense and agree across the boundary.
        for id in 0..mono.len() {
            assert_eq!(mono.atom(AtomId(id as u32)), fork.atom(AtomId(id as u32)));
        }
        let e = atom("edge", vec![cst("a"), cst("c")]);
        assert_eq!(mono.id_of(&e), fork.id_of(&e));
    }

    #[test]
    fn probes_chain_base_then_overlay_ascending() {
        let (mono, fork) = monolithic_and_forked();
        let pred = Symbol::intern("edge");
        let mono_ids: Vec<AtomId> = mono.ids_with_predicate(pred).iter().collect();
        let fork_ids: Vec<AtomId> = fork.ids_with_predicate(pred).iter().collect();
        assert_eq!(mono_ids, fork_ids);
        assert!(fork_ids.windows(2).all(|w| w[0] < w[1]));
        // A probe spanning the boundary: edge(a, _) has one base and one
        // overlay match.
        let probe = fork.probe(pred, 0, cst("a"));
        assert_eq!(probe.len(), 2);
        let spanning: Vec<AtomId> = probe.iter().collect();
        assert_eq!(spanning, vec![AtomId(0), AtomId(2)]);
        // Watermark splits cut the concatenation, not the segments.
        assert_eq!(probe.below(2).iter().collect::<Vec<_>>(), vec![AtomId(0)]);
        assert_eq!(probe.since(2).iter().collect::<Vec<_>>(), vec![AtomId(2)]);
        assert_eq!(fork.predicate_count(pred), mono.predicate_count(pred));
        assert_eq!(
            fork.probe_count(pred, 1, cst("c")),
            mono.probe_count(pred, 1, cst("c"))
        );
    }

    #[test]
    fn forked_duplicate_of_a_base_atom_is_rejected() {
        let (_, mut fork) = monolithic_and_forked();
        assert!(!fork.insert(atom("edge", vec![cst("a"), cst("b")])));
        assert!(!fork.insert(atom("edge", vec![cst("a"), cst("c")])));
        assert_eq!(fork.len(), 4);
    }

    #[test]
    fn domain_iter_order_matches_monolithic_across_the_boundary() {
        let (mut mono, mut fork) = monolithic_and_forked();
        mono.add_domain_element(cst("zed"));
        fork.add_domain_element(cst("zed"));
        // An extra element that is also an atom term stays deduplicated.
        mono.add_domain_element(cst("a"));
        fork.add_domain_element(cst("a"));
        let mono_seq: Vec<Term> = mono.domain_iter().copied().collect();
        let fork_seq: Vec<Term> = fork.domain_iter().copied().collect();
        assert_eq!(mono_seq, fork_seq);
        assert_eq!(mono.nulls(), fork.nulls());
    }

    #[test]
    fn truncate_to_the_base_watermark_empties_the_overlay_only() {
        let (_, mut fork) = monolithic_and_forked();
        let base_len = fork.base_len();
        fork.truncate(base_len);
        assert_eq!(fork.len(), base_len);
        assert_eq!(fork.overlay_len(), 0);
        assert!(fork.contains(&atom("edge", vec![cst("a"), cst("b")])));
        assert!(!fork.contains(&atom("node", vec![cst("d")])));
        assert!(!fork.in_domain(&cst("d")));
        // Truncating to the watermark again (overlay already empty) is a
        // no-op on the base segment.
        fork.truncate(base_len);
        assert_eq!(fork.len(), base_len);
        // The arena keeps working: overlay ids restart at the watermark.
        assert!(fork.insert(atom("node", vec![cst("e")])));
        assert_eq!(
            fork.id_of(&atom("node", vec![cst("e")])),
            Some(AtomId(base_len as u32))
        );
    }

    #[test]
    fn truncate_across_the_base_boundary_rolls_back_mixed_epochs() {
        let (_, mut fork) = monolithic_and_forked();
        let mark = fork.len();
        fork.insert(atom("node", vec![cst("e")]));
        fork.insert(atom("edge", vec![cst("c"), cst("a")]));
        fork.truncate(mark);
        assert_eq!(fork.len(), mark);
        assert_eq!(fork.overlay_len(), mark - fork.base_len());
        assert!(!fork.contains(&atom("node", vec![cst("e")])));
        assert_eq!(fork.probe(Symbol::intern("edge"), 0, cst("c")).len(), 0);
        assert!(fork.contains(&atom("edge", vec![cst("a"), cst("c")])));
    }

    #[test]
    #[should_panic(expected = "below its base watermark")]
    fn truncate_below_the_base_watermark_panics() {
        let (_, mut fork) = monolithic_and_forked();
        fork.truncate(fork.base_len() - 1);
    }

    #[test]
    fn freeze_of_an_unforked_interpretation_is_zero_copy_and_refreezable() {
        let (mono, fork) = monolithic_and_forked();
        // Freezing a fork with an empty overlay returns the same base.
        let base = Interpretation::from_atoms(vec![atom("p", vec![cst("a")])]).freeze();
        let refrozen = Interpretation::fork(&base).freeze();
        assert!(Arc::ptr_eq(&base, &refrozen));
        // Freezing a fork with a non-empty overlay flattens it; the result
        // behaves like the monolithic equivalent.
        let flat = fork.freeze();
        assert_eq!(flat.len(), mono.len());
        let reforked = Interpretation::fork(&flat);
        assert_eq!(reforked, mono);
        assert_eq!(
            reforked.atoms().collect::<Vec<_>>(),
            mono.atoms().collect::<Vec<_>>()
        );
    }

    #[test]
    fn forks_are_independent_of_each_other() {
        let base = Interpretation::from_atoms(vec![atom("p", vec![cst("a")])]).freeze();
        let mut f1 = Interpretation::fork(&base);
        let mut f2 = Interpretation::fork(&base);
        f1.insert(atom("p", vec![cst("b")]));
        f2.insert(atom("p", vec![cst("c")]));
        assert!(f1.contains(&atom("p", vec![cst("b")])));
        assert!(!f1.contains(&atom("p", vec![cst("c")])));
        assert!(f2.contains(&atom("p", vec![cst("c")])));
        assert!(!f2.contains(&atom("p", vec![cst("b")])));
        // Both assign the same dense id to their first overlay atom.
        assert_eq!(f1.id_of(&atom("p", vec![cst("b")])), Some(AtomId(1)));
        assert_eq!(f2.id_of(&atom("p", vec![cst("c")])), Some(AtomId(1)));
    }
}
