//! Total interpretations, represented by their positive part.
//!
//! A (two-valued) interpretation `I` over a schema is, in the paper, a set of
//! literals over constants and nulls such that for every atom over `dom(I)`
//! either the atom or its negation belongs to `I`.  Such an interpretation is
//! fully determined by its positive part `I⁺` together with its domain, so we
//! store exactly that:  `¬p(t̄) ∈ I` iff every term of `t̄` belongs to
//! `dom(I)` and `p(t̄) ∉ I⁺`.
//!
//! The domain is by default the set of terms occurring in `I⁺`; additional
//! domain elements can be registered explicitly (used by engines that fix a
//! candidate domain before choosing which atoms are true).
//!
//! # Storage layout
//!
//! Atoms live in an append-only **arena** addressed by dense [`AtomId`]s, in
//! insertion order.  On top of the arena the interpretation maintains, fully
//! incrementally on [`Interpretation::insert`]:
//!
//! * a hash table from atom hashes to ids (duplicate detection with a single
//!   hash computation and no atom clone),
//! * a per-predicate index (`predicate → [AtomId]`), and
//! * a per-argument-position index (`(predicate, position, term) → [AtomId]`)
//!   that the [`crate::matcher`] join engine probes instead of scanning all
//!   atoms of a predicate.
//!
//! All id lists are in insertion order (ascending), so a suffix of the arena
//! — "every atom inserted since watermark `w`" — can be selected by binary
//! search.  The matcher's semi-naive *delta* entry points use this to match
//! only against newly derived atoms.
//!
//! # Snapshot reads under parallelism
//!
//! The interpretation is the shared read-only snapshot of every parallel
//! round (see [`crate::parallel`]): workers probe the indexes and arena
//! through `&Interpretation` while all mutation ([`Interpretation::insert`])
//! happens between rounds on a single thread.  Because [`AtomId`]s are dense,
//! assigned in insertion order and never reused, a watermark taken before a
//! round selects the same delta suffix for every worker, which is what makes
//! the per-`(rule, pivot)` partition of a delta round exact.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::atom::{Atom, Literal};
use crate::symbol::Symbol;
use crate::term::Term;

/// Dense identifier of an atom within one [`Interpretation`]'s arena.
///
/// Ids are assigned in insertion order starting from zero and are never
/// reused; they are meaningful only relative to the interpretation that
/// issued them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AtomId(pub u32);

impl AtomId {
    /// The id as a usize arena offset.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Hash of an atom given as `(predicate, args)` parts.  Used for both stored
/// atoms and probe lookups so that the two always agree.
fn parts_hash(predicate: Symbol, args: &[Term]) -> u64 {
    let mut hasher = DefaultHasher::new();
    predicate.hash(&mut hasher);
    args.hash(&mut hasher);
    hasher.finish()
}

fn atom_hash(atom: &Atom) -> u64 {
    parts_hash(atom.predicate(), atom.args())
}

/// A total interpretation represented by its positive part plus its domain.
#[derive(Clone, Default, Debug)]
pub struct Interpretation {
    /// The arena: atom storage in insertion order, addressed by [`AtomId`].
    arena: Vec<Atom>,
    /// Atom-hash → ids with that hash (almost always a single id).
    by_hash: HashMap<u64, Vec<AtomId>>,
    /// Predicate → ids, ascending.
    by_predicate: HashMap<Symbol, Vec<AtomId>>,
    /// (predicate, argument position, ground term) → ids, ascending.
    by_position: HashMap<(Symbol, u32, Term), Vec<AtomId>>,
    domain: BTreeSet<Term>,
    /// Occurrences of each domain term in the arena (`domain` holds exactly
    /// the terms with a positive count).  Maintained so that
    /// [`Interpretation::truncate`] can drop terms whose last occurrence is
    /// rolled back.
    domain_occurrences: HashMap<Term, usize>,
    extra_domain: BTreeSet<Term>,
}

// `Send + Sync` audit: all storage is owned (`Vec`, `HashMap`, `BTreeSet` of
// `Copy` terms), so a frozen interpretation can be shared by reference with
// every pool worker of a round.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Interpretation>();
};

impl Interpretation {
    /// Creates an empty interpretation (empty positive part, empty domain).
    pub fn new() -> Interpretation {
        Interpretation::default()
    }

    /// Creates an interpretation from ground atoms.
    ///
    /// # Panics
    ///
    /// Panics if an atom contains a variable.
    pub fn from_atoms<I>(atoms: I) -> Interpretation
    where
        I: IntoIterator<Item = Atom>,
    {
        let mut out = Interpretation::new();
        for a in atoms {
            out.insert(a);
        }
        out
    }

    /// Inserts a ground atom into the positive part.  Returns `true` if it was
    /// new.
    ///
    /// The insert performs one hash computation and, for new atoms, one
    /// `AtomId` push per index entry; the atom itself is moved into the arena
    /// without cloning.
    ///
    /// # Panics
    ///
    /// Panics if the atom contains a variable.
    pub fn insert(&mut self, atom: Atom) -> bool {
        assert!(
            atom.is_ground(),
            "interpretations contain only ground atoms, got {atom}"
        );
        let hash = atom_hash(&atom);
        let bucket = self.by_hash.entry(hash).or_default();
        if bucket.iter().any(|id| self.arena[id.index()] == atom) {
            return false;
        }
        let id = AtomId(u32::try_from(self.arena.len()).expect("arena overflow"));
        bucket.push(id);
        for (position, t) in atom.args().iter().enumerate() {
            self.domain.insert(*t);
            *self.domain_occurrences.entry(*t).or_insert(0) += 1;
            self.by_position
                .entry((atom.predicate(), position as u32, *t))
                .or_default()
                .push(id);
        }
        self.by_predicate
            .entry(atom.predicate())
            .or_default()
            .push(id);
        self.arena.push(atom);
        true
    }

    /// Rolls the arena back to its first `len` atoms: every atom inserted at
    /// or after the watermark `len` (an earlier value of
    /// [`Interpretation::len`]) is removed, together with its index entries
    /// and its contribution to `dom(I)`.
    ///
    /// This is the *epoch rollback* primitive of incremental reasoning
    /// sessions: because [`AtomId`]s are dense and assigned in insertion
    /// order, the atoms of an epoch occupy exactly an arena suffix, every id
    /// list of every index ends with the ids being removed (lists are
    /// ascending), and truncation is `O(atoms removed)` — surviving atoms,
    /// ids and index entries are untouched.  Explicitly registered domain
    /// elements ([`Interpretation::add_domain_element`]) are never removed.
    ///
    /// A no-op if `len >= self.len()`.
    pub fn truncate(&mut self, len: usize) {
        while self.arena.len() > len {
            let id = AtomId((self.arena.len() - 1) as u32);
            let atom = self.arena.pop().expect("arena is non-empty");
            let hash = atom_hash(&atom);
            let bucket = self
                .by_hash
                .get_mut(&hash)
                .expect("stored atoms have a hash bucket");
            bucket.retain(|candidate| *candidate != id);
            if bucket.is_empty() {
                self.by_hash.remove(&hash);
            }
            for (position, t) in atom.args().iter().enumerate() {
                let occurrences = self
                    .domain_occurrences
                    .get_mut(t)
                    .expect("domain terms are counted");
                *occurrences -= 1;
                if *occurrences == 0 {
                    self.domain_occurrences.remove(t);
                    self.domain.remove(t);
                }
                let key = (atom.predicate(), position as u32, *t);
                let ids = self
                    .by_position
                    .get_mut(&key)
                    .expect("stored atoms are position-indexed");
                debug_assert_eq!(ids.last(), Some(&id), "id lists are ascending");
                ids.pop();
                if ids.is_empty() {
                    self.by_position.remove(&key);
                }
            }
            let ids = self
                .by_predicate
                .get_mut(&atom.predicate())
                .expect("stored atoms are predicate-indexed");
            debug_assert_eq!(ids.last(), Some(&id), "id lists are ascending");
            ids.pop();
            if ids.is_empty() {
                self.by_predicate.remove(&atom.predicate());
            }
        }
    }

    /// Registers an additional domain element that need not occur in `I⁺`.
    pub fn add_domain_element(&mut self, term: Term) {
        assert!(term.is_ground(), "domain elements must be ground");
        self.extra_domain.insert(term);
    }

    /// Returns `true` if the positive part contains the atom.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.id_of(atom).is_some()
    }

    /// Returns the arena id of the atom, if present.
    pub fn id_of(&self, atom: &Atom) -> Option<AtomId> {
        self.id_of_parts(atom.predicate(), atom.args())
    }

    /// [`Interpretation::id_of`] for an atom given as `(predicate, args)`
    /// parts, without building an [`Atom`].
    pub fn id_of_parts(&self, predicate: Symbol, args: &[Term]) -> Option<AtomId> {
        self.by_hash
            .get(&parts_hash(predicate, args))?
            .iter()
            .copied()
            .find(|id| {
                let stored = &self.arena[id.index()];
                stored.predicate() == predicate && stored.args() == args
            })
    }

    /// [`Interpretation::contains`] for an atom given as parts.
    pub fn contains_parts(&self, predicate: Symbol, args: &[Term]) -> bool {
        self.id_of_parts(predicate, args).is_some()
    }

    /// [`Interpretation::satisfies_negation_of`] for an atom given as parts.
    pub fn satisfies_negation_of_parts(&self, predicate: Symbol, args: &[Term]) -> bool {
        args.iter().all(|t| self.in_domain(t)) && !self.contains_parts(predicate, args)
    }

    /// The atom stored under the given arena id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this interpretation.
    pub fn atom(&self, id: AtomId) -> &Atom {
        &self.arena[id.index()]
    }

    /// Returns `true` if `t` belongs to `dom(I)`.
    pub fn in_domain(&self, t: &Term) -> bool {
        self.domain.contains(t) || self.extra_domain.contains(t)
    }

    /// Returns `true` if the *negative* literal `¬atom` belongs to `I`, i.e.
    /// all terms of `atom` are in `dom(I)` and `atom ∉ I⁺`.
    pub fn satisfies_negation_of(&self, atom: &Atom) -> bool {
        atom.terms().all(|t| self.in_domain(t)) && !self.contains(atom)
    }

    /// Returns `true` if the ground literal belongs to `I`.
    pub fn satisfies_literal(&self, lit: &Literal) -> bool {
        if lit.is_positive() {
            self.contains(lit.atom())
        } else {
            self.satisfies_negation_of(lit.atom())
        }
    }

    /// Number of atoms in the positive part `|I⁺|`.
    ///
    /// Also the *watermark* for delta matching: atoms inserted after `len()`
    /// was observed receive ids `>= len()`.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Returns `true` if the positive part is empty.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Iterates over the positive part in insertion order.
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> + '_ {
        self.arena.iter()
    }

    /// Iterates over the atoms inserted at or after the watermark (the value
    /// of [`Interpretation::len`] at some earlier point).
    pub fn atoms_from(&self, watermark: usize) -> impl Iterator<Item = &Atom> + '_ {
        self.arena[watermark.min(self.arena.len())..].iter()
    }

    /// Returns the positive part as a sorted vector (deterministic order).
    pub fn sorted_atoms(&self) -> Vec<Atom> {
        let mut v: Vec<Atom> = self.arena.clone();
        v.sort();
        v
    }

    /// The atoms of the positive part with the given predicate.
    pub fn atoms_with_predicate(&self, predicate: Symbol) -> impl Iterator<Item = &Atom> + '_ {
        self.ids_with_predicate(predicate)
            .iter()
            .map(|id| &self.arena[id.index()])
    }

    /// The ids (ascending) of the atoms with the given predicate.
    pub fn ids_with_predicate(&self, predicate: Symbol) -> &[AtomId] {
        self.by_predicate
            .get(&predicate)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of atoms with the given predicate.
    pub fn predicate_count(&self, predicate: Symbol) -> usize {
        self.ids_with_predicate(predicate).len()
    }

    /// Index probe: the ids (ascending) of the atoms whose predicate is
    /// `predicate` and whose argument at `position` is the ground term
    /// `term`.  This is the core lookup of the indexed join engine.
    pub fn probe(&self, predicate: Symbol, position: u32, term: Term) -> &[AtomId] {
        self.by_position
            .get(&(predicate, position, term))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Cardinality of an index probe without materialising it.
    pub fn probe_count(&self, predicate: Symbol, position: u32, term: Term) -> usize {
        self.probe(predicate, position, term).len()
    }

    /// The domain `dom(I)` (terms of `I⁺` plus explicitly registered ones).
    pub fn domain(&self) -> BTreeSet<Term> {
        let mut d = self.domain.clone();
        d.extend(self.extra_domain.iter().copied());
        d
    }

    /// Iterates over `dom(I)` without materialising a set (each term once,
    /// in `Term` order within each of the two underlying sets).
    pub fn domain_iter(&self) -> impl Iterator<Item = &Term> + '_ {
        self.domain
            .iter()
            .chain(self.extra_domain.difference(&self.domain))
    }

    /// Returns `true` if `self⁺ ⊆ other⁺`.
    pub fn is_subset_of(&self, other: &Interpretation) -> bool {
        self.arena.iter().all(|a| other.contains(a))
    }

    /// Returns `true` if the positive parts coincide.
    pub fn same_atoms_as(&self, other: &Interpretation) -> bool {
        self.len() == other.len() && self.is_subset_of(other)
    }

    /// Set-difference of positive parts: atoms of `self` not in `other`.
    pub fn difference(&self, other: &Interpretation) -> Vec<Atom> {
        let mut v: Vec<Atom> = self
            .arena
            .iter()
            .filter(|a| !other.contains(a))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// The set of predicates with at least one true atom.
    pub fn predicates(&self) -> HashSet<Symbol> {
        self.by_predicate
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&p, _)| p)
            .collect()
    }

    /// Returns the nulls occurring in the positive part.
    pub fn nulls(&self) -> BTreeSet<Term> {
        self.domain
            .iter()
            .filter(|t| t.is_null())
            .copied()
            .collect()
    }
}

impl PartialEq for Interpretation {
    /// Two interpretations are equal when their positive parts and domains
    /// coincide.
    fn eq(&self, other: &Self) -> bool {
        self.same_atoms_as(other) && self.domain() == other.domain()
    }
}

impl Eq for Interpretation {}

impl fmt::Display for Interpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.sorted_atoms().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Atom> for Interpretation {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        Interpretation::from_atoms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, cst};

    fn sample() -> Interpretation {
        Interpretation::from_atoms(vec![
            atom("p", vec![cst("a")]),
            atom("q", vec![cst("a"), Term::null(0)]),
        ])
    }

    #[test]
    fn insert_builds_domain() {
        let i = sample();
        assert_eq!(i.len(), 2);
        assert!(i.in_domain(&cst("a")));
        assert!(i.in_domain(&Term::null(0)));
        assert!(!i.in_domain(&cst("b")));
        assert_eq!(i.domain().len(), 2);
        assert_eq!(i.nulls().len(), 1);
    }

    #[test]
    fn negative_literals_require_domain_membership() {
        let i = sample();
        // q(a,a) is over the domain and not true, so ¬q(a,a) holds.
        assert!(i.satisfies_negation_of(&atom("q", vec![cst("a"), cst("a")])));
        // p(b) mentions b ∉ dom(I): neither p(b) nor ¬p(b) is in I.
        assert!(!i.satisfies_negation_of(&atom("p", vec![cst("b")])));
        assert!(!i.contains(&atom("p", vec![cst("b")])));
        // p(a) is true, so ¬p(a) does not hold.
        assert!(!i.satisfies_negation_of(&atom("p", vec![cst("a")])));
    }

    #[test]
    fn satisfies_literal_dispatches_on_polarity() {
        let i = sample();
        assert!(i.satisfies_literal(&Literal::positive(atom("p", vec![cst("a")]))));
        assert!(i.satisfies_literal(&Literal::negative(atom("p", vec![Term::null(0)]))));
        assert!(!i.satisfies_literal(&Literal::negative(atom("p", vec![cst("a")]))));
    }

    #[test]
    fn extra_domain_elements_extend_negative_knowledge() {
        let mut i = sample();
        assert!(!i.satisfies_negation_of(&atom("p", vec![cst("bob")])));
        i.add_domain_element(cst("bob"));
        assert!(i.satisfies_negation_of(&atom("p", vec![cst("bob")])));
        assert!(i.domain_iter().count() == 3);
        assert!(i.domain_iter().any(|t| *t == cst("bob")));
    }

    #[test]
    fn subset_and_equality() {
        let i = sample();
        let mut j = i.clone();
        assert!(i.is_subset_of(&j) && j.is_subset_of(&i));
        assert!(i.same_atoms_as(&j));
        assert_eq!(i, j);
        j.insert(atom("p", vec![cst("b")]));
        assert!(i.is_subset_of(&j));
        assert!(!j.is_subset_of(&i));
        assert_eq!(j.difference(&i), vec![atom("p", vec![cst("b")])]);
    }

    #[test]
    #[should_panic(expected = "ground atoms")]
    fn inserting_non_ground_atom_panics() {
        let mut i = Interpretation::new();
        i.insert(atom("p", vec![crate::var("X")]));
    }

    #[test]
    fn duplicate_insert_reports_false() {
        let mut i = sample();
        assert!(!i.insert(atom("p", vec![cst("a")])));
        assert!(i.insert(atom("p", vec![cst("z")])));
    }

    #[test]
    fn display_is_sorted_and_braced() {
        let i = Interpretation::from_atoms(vec![atom("b", vec![]), atom("a", vec![])]);
        assert_eq!(i.to_string(), "{a, b}");
    }

    #[test]
    fn arena_ids_are_dense_and_in_insertion_order() {
        let mut i = Interpretation::new();
        let a = atom("p", vec![cst("a")]);
        let b = atom("p", vec![cst("b")]);
        i.insert(a.clone());
        i.insert(b.clone());
        assert_eq!(i.id_of(&a), Some(AtomId(0)));
        assert_eq!(i.id_of(&b), Some(AtomId(1)));
        assert_eq!(i.atom(AtomId(1)), &b);
        assert_eq!(i.id_of(&atom("p", vec![cst("z")])), None);
        let collected: Vec<&Atom> = i.atoms().collect();
        assert_eq!(collected, vec![&a, &b]);
    }

    #[test]
    fn position_index_probes_by_bound_argument() {
        let i = Interpretation::from_atoms(vec![
            atom("edge", vec![cst("a"), cst("b")]),
            atom("edge", vec![cst("a"), cst("c")]),
            atom("edge", vec![cst("b"), cst("c")]),
        ]);
        let pred = Symbol::intern("edge");
        assert_eq!(i.probe(pred, 0, cst("a")).len(), 2);
        assert_eq!(i.probe(pred, 1, cst("c")).len(), 2);
        assert_eq!(i.probe(pred, 0, cst("z")).len(), 0);
        assert_eq!(i.probe_count(pred, 1, cst("b")), 1);
        assert_eq!(i.predicate_count(pred), 3);
        assert_eq!(i.predicate_count(Symbol::intern("missing")), 0);
        // Probes return ascending ids.
        let ids = i.probe(pred, 1, cst("c"));
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn truncate_rolls_back_an_arena_suffix_exactly() {
        let mut i = Interpretation::from_atoms(vec![
            atom("p", vec![cst("a")]),
            atom("q", vec![cst("a"), cst("b")]),
        ]);
        let before = i.clone();
        let watermark = i.len();
        i.insert(atom("p", vec![cst("b")]));
        i.insert(atom("q", vec![cst("b"), cst("c")]));
        i.insert(atom("r", vec![Term::null(4)]));
        i.truncate(watermark);
        // Structural equality: arena, ids, indexes, domain all match the
        // pre-epoch state.
        assert_eq!(i, before);
        assert_eq!(i.len(), 2);
        assert_eq!(
            i.atoms().cloned().collect::<Vec<_>>(),
            before.atoms().cloned().collect::<Vec<_>>()
        );
        assert_eq!(i.id_of(&atom("p", vec![cst("a")])), Some(AtomId(0)));
        assert_eq!(i.id_of(&atom("p", vec![cst("b")])), None);
        assert_eq!(i.predicate_count(Symbol::intern("r")), 0);
        assert_eq!(i.probe(Symbol::intern("q"), 0, cst("b")).len(), 0);
        assert!(!i.in_domain(&cst("c")));
        assert!(!i.in_domain(&Term::null(4)));
        // The term `b` occurred both before and inside the epoch: it must
        // survive the rollback.
        assert!(i.in_domain(&cst("b")));
        // Re-inserting after a truncate reuses the freed dense ids.
        assert!(i.insert(atom("p", vec![cst("b")])));
        assert_eq!(i.id_of(&atom("p", vec![cst("b")])), Some(AtomId(2)));
    }

    #[test]
    fn truncate_beyond_the_arena_is_a_no_op_and_keeps_extra_domain() {
        let mut i = sample();
        i.add_domain_element(cst("bob"));
        let before = i.clone();
        i.truncate(100);
        assert_eq!(i, before);
        i.truncate(0);
        assert!(i.is_empty());
        assert_eq!(i.domain().len(), 1, "extra domain elements survive");
        assert!(i.in_domain(&cst("bob")));
    }

    #[test]
    fn truncate_to_zero_empties_every_index() {
        let mut i = Interpretation::from_atoms(vec![
            atom("p", vec![cst("a")]),
            atom("q", vec![cst("a"), cst("b")]),
            atom("p", vec![Term::null(1)]),
        ]);
        i.truncate(0);
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
        assert_eq!(i.atoms().count(), 0);
        assert_eq!(i.domain().len(), 0);
        assert_eq!(i.predicates().len(), 0);
        assert_eq!(i.predicate_count(Symbol::intern("p")), 0);
        assert_eq!(i.probe(Symbol::intern("q"), 0, cst("a")).len(), 0);
        assert_eq!(i.id_of(&atom("p", vec![cst("a")])), None);
        // The emptied interpretation behaves like a fresh one: inserts
        // restart at id 0 and rebuild the indexes.
        assert!(i.insert(atom("q", vec![cst("a"), cst("b")])));
        assert_eq!(
            i.id_of(&atom("q", vec![cst("a"), cst("b")])),
            Some(AtomId(0))
        );
        assert_eq!(i.probe(Symbol::intern("q"), 1, cst("b")).len(), 1);
    }

    #[test]
    fn truncate_after_a_no_op_insert_changes_nothing() {
        let mut i = sample();
        let watermark = i.len();
        // Duplicate insert: no arena growth, no index growth.
        assert!(!i.insert(atom("p", vec![cst("a")])));
        let before = i.clone();
        i.truncate(watermark);
        assert_eq!(i, before);
        assert_eq!(i.len(), watermark);
        assert_eq!(i.id_of(&atom("p", vec![cst("a")])), Some(AtomId(0)));
        assert!(i.in_domain(&cst("a")));
    }

    #[test]
    fn double_truncate_to_the_same_mark_is_idempotent() {
        let mut i = sample();
        let watermark = i.len();
        i.insert(atom("p", vec![cst("b")]));
        i.insert(atom("r", vec![cst("b"), Term::null(7)]));
        i.truncate(watermark);
        let after_first = i.clone();
        // The second truncate sees `len == watermark` and must be a no-op —
        // in particular it must not decrement domain occurrence counts or
        // pop index tails again.
        i.truncate(watermark);
        assert_eq!(i, after_first);
        assert_eq!(i.len(), watermark);
        assert!(i.in_domain(&cst("a")));
        assert!(!i.in_domain(&cst("b")));
        assert!(!i.in_domain(&Term::null(7)));
        // Still a working arena afterwards.
        assert!(i.insert(atom("p", vec![cst("b")])));
        assert_eq!(
            i.id_of(&atom("p", vec![cst("b")])),
            Some(AtomId(watermark as u32))
        );
    }

    #[test]
    fn watermark_suffixes_select_newly_inserted_atoms() {
        let mut i = Interpretation::from_atoms(vec![atom("p", vec![cst("a")])]);
        let watermark = i.len();
        i.insert(atom("p", vec![cst("b")]));
        i.insert(atom("q", vec![cst("c")]));
        let delta: Vec<String> = i.atoms_from(watermark).map(Atom::to_string).collect();
        assert_eq!(delta, vec!["p(b)", "q(c)"]);
        assert_eq!(i.atoms_from(100).count(), 0);
    }
}
