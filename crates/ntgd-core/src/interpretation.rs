//! Total interpretations, represented by their positive part.
//!
//! A (two-valued) interpretation `I` over a schema is, in the paper, a set of
//! literals over constants and nulls such that for every atom over `dom(I)`
//! either the atom or its negation belongs to `I`.  Such an interpretation is
//! fully determined by its positive part `I⁺` together with its domain, so we
//! store exactly that:  `¬p(t̄) ∈ I` iff every term of `t̄` belongs to
//! `dom(I)` and `p(t̄) ∉ I⁺`.
//!
//! The domain is by default the set of terms occurring in `I⁺`; additional
//! domain elements can be registered explicitly (used by engines that fix a
//! candidate domain before choosing which atoms are true).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use crate::atom::{Atom, Literal};
use crate::symbol::Symbol;
use crate::term::Term;

/// A total interpretation represented by its positive part plus its domain.
#[derive(Clone, Default, Debug)]
pub struct Interpretation {
    atoms: HashSet<Atom>,
    by_predicate: HashMap<Symbol, Vec<Atom>>,
    domain: BTreeSet<Term>,
    extra_domain: BTreeSet<Term>,
}

impl Interpretation {
    /// Creates an empty interpretation (empty positive part, empty domain).
    pub fn new() -> Interpretation {
        Interpretation::default()
    }

    /// Creates an interpretation from ground atoms.
    ///
    /// # Panics
    ///
    /// Panics if an atom contains a variable.
    pub fn from_atoms<I>(atoms: I) -> Interpretation
    where
        I: IntoIterator<Item = Atom>,
    {
        let mut out = Interpretation::new();
        for a in atoms {
            out.insert(a);
        }
        out
    }

    /// Inserts a ground atom into the positive part.  Returns `true` if it was
    /// new.
    ///
    /// # Panics
    ///
    /// Panics if the atom contains a variable.
    pub fn insert(&mut self, atom: Atom) -> bool {
        assert!(
            atom.is_ground(),
            "interpretations contain only ground atoms, got {atom}"
        );
        if self.atoms.contains(&atom) {
            return false;
        }
        for t in atom.terms() {
            self.domain.insert(*t);
        }
        self.by_predicate
            .entry(atom.predicate())
            .or_default()
            .push(atom.clone());
        self.atoms.insert(atom);
        true
    }

    /// Registers an additional domain element that need not occur in `I⁺`.
    pub fn add_domain_element(&mut self, term: Term) {
        assert!(term.is_ground(), "domain elements must be ground");
        self.extra_domain.insert(term);
    }

    /// Returns `true` if the positive part contains the atom.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.atoms.contains(atom)
    }

    /// Returns `true` if `t` belongs to `dom(I)`.
    pub fn in_domain(&self, t: &Term) -> bool {
        self.domain.contains(t) || self.extra_domain.contains(t)
    }

    /// Returns `true` if the *negative* literal `¬atom` belongs to `I`, i.e.
    /// all terms of `atom` are in `dom(I)` and `atom ∉ I⁺`.
    pub fn satisfies_negation_of(&self, atom: &Atom) -> bool {
        atom.terms().all(|t| self.in_domain(t)) && !self.contains(atom)
    }

    /// Returns `true` if the ground literal belongs to `I`.
    pub fn satisfies_literal(&self, lit: &Literal) -> bool {
        if lit.is_positive() {
            self.contains(lit.atom())
        } else {
            self.satisfies_negation_of(lit.atom())
        }
    }

    /// Number of atoms in the positive part `|I⁺|`.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` if the positive part is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over the positive part (unordered).
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> + '_ {
        self.atoms.iter()
    }

    /// Returns the positive part as a sorted vector (deterministic order).
    pub fn sorted_atoms(&self) -> Vec<Atom> {
        let mut v: Vec<Atom> = self.atoms.iter().cloned().collect();
        v.sort();
        v
    }

    /// The atoms of the positive part with the given predicate.
    pub fn atoms_with_predicate(&self, predicate: Symbol) -> &[Atom] {
        self.by_predicate
            .get(&predicate)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The domain `dom(I)` (terms of `I⁺` plus explicitly registered ones).
    pub fn domain(&self) -> BTreeSet<Term> {
        let mut d = self.domain.clone();
        d.extend(self.extra_domain.iter().copied());
        d
    }

    /// Returns `true` if `self⁺ ⊆ other⁺`.
    pub fn is_subset_of(&self, other: &Interpretation) -> bool {
        self.atoms.iter().all(|a| other.contains(a))
    }

    /// Returns `true` if the positive parts coincide.
    pub fn same_atoms_as(&self, other: &Interpretation) -> bool {
        self.len() == other.len() && self.is_subset_of(other)
    }

    /// Set-difference of positive parts: atoms of `self` not in `other`.
    pub fn difference(&self, other: &Interpretation) -> Vec<Atom> {
        let mut v: Vec<Atom> = self
            .atoms
            .iter()
            .filter(|a| !other.contains(a))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// The set of predicates with at least one true atom.
    pub fn predicates(&self) -> HashSet<Symbol> {
        self.by_predicate
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&p, _)| p)
            .collect()
    }

    /// Returns the nulls occurring in the positive part.
    pub fn nulls(&self) -> BTreeSet<Term> {
        self.domain
            .iter()
            .filter(|t| t.is_null())
            .copied()
            .collect()
    }
}

impl PartialEq for Interpretation {
    /// Two interpretations are equal when their positive parts and domains
    /// coincide.
    fn eq(&self, other: &Self) -> bool {
        self.same_atoms_as(other) && self.domain() == other.domain()
    }
}

impl Eq for Interpretation {}

impl fmt::Display for Interpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.sorted_atoms().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Atom> for Interpretation {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        Interpretation::from_atoms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, cst};

    fn sample() -> Interpretation {
        Interpretation::from_atoms(vec![
            atom("p", vec![cst("a")]),
            atom("q", vec![cst("a"), Term::null(0)]),
        ])
    }

    #[test]
    fn insert_builds_domain() {
        let i = sample();
        assert_eq!(i.len(), 2);
        assert!(i.in_domain(&cst("a")));
        assert!(i.in_domain(&Term::null(0)));
        assert!(!i.in_domain(&cst("b")));
        assert_eq!(i.domain().len(), 2);
        assert_eq!(i.nulls().len(), 1);
    }

    #[test]
    fn negative_literals_require_domain_membership() {
        let i = sample();
        // q(a,a) is over the domain and not true, so ¬q(a,a) holds.
        assert!(i.satisfies_negation_of(&atom("q", vec![cst("a"), cst("a")])));
        // p(b) mentions b ∉ dom(I): neither p(b) nor ¬p(b) is in I.
        assert!(!i.satisfies_negation_of(&atom("p", vec![cst("b")])));
        assert!(!i.contains(&atom("p", vec![cst("b")])));
        // p(a) is true, so ¬p(a) does not hold.
        assert!(!i.satisfies_negation_of(&atom("p", vec![cst("a")])));
    }

    #[test]
    fn satisfies_literal_dispatches_on_polarity() {
        let i = sample();
        assert!(i.satisfies_literal(&Literal::positive(atom("p", vec![cst("a")]))));
        assert!(i.satisfies_literal(&Literal::negative(atom("p", vec![Term::null(0)]))));
        assert!(!i.satisfies_literal(&Literal::negative(atom("p", vec![cst("a")]))));
    }

    #[test]
    fn extra_domain_elements_extend_negative_knowledge() {
        let mut i = sample();
        assert!(!i.satisfies_negation_of(&atom("p", vec![cst("bob")])));
        i.add_domain_element(cst("bob"));
        assert!(i.satisfies_negation_of(&atom("p", vec![cst("bob")])));
    }

    #[test]
    fn subset_and_equality() {
        let i = sample();
        let mut j = i.clone();
        assert!(i.is_subset_of(&j) && j.is_subset_of(&i));
        assert!(i.same_atoms_as(&j));
        assert_eq!(i, j);
        j.insert(atom("p", vec![cst("b")]));
        assert!(i.is_subset_of(&j));
        assert!(!j.is_subset_of(&i));
        assert_eq!(j.difference(&i), vec![atom("p", vec![cst("b")])]);
    }

    #[test]
    #[should_panic(expected = "ground atoms")]
    fn inserting_non_ground_atom_panics() {
        let mut i = Interpretation::new();
        i.insert(atom("p", vec![crate::var("X")]));
    }

    #[test]
    fn duplicate_insert_reports_false() {
        let mut i = sample();
        assert!(!i.insert(atom("p", vec![cst("a")])));
        assert!(i.insert(atom("p", vec![cst("z")])));
    }

    #[test]
    fn display_is_sorted_and_braced() {
        let i = Interpretation::from_atoms(vec![atom("b", vec![]), atom("a", vec![])]);
        assert_eq!(i.to_string(), "{a, b}");
    }
}
