//! Terms: constants, labelled nulls and variables (paper, Section 2).
//!
//! * Different **constants** represent different values (unique name
//!   assumption).
//! * **Labelled nulls** are placeholders for unknown values; different nulls
//!   may represent the same value.
//! * **Variables** occur only in rules and queries, never in databases or
//!   interpretations.

use std::fmt;

use crate::symbol::Symbol;

/// Identifier of a labelled null.
pub type NullId = u64;

/// A term: constant, labelled null, or variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A constant from the countably infinite set **C**.
    Const(Symbol),
    /// A labelled null from the set **N**.
    Null(NullId),
    /// A variable from the set **V**.
    Var(Symbol),
}

impl Term {
    /// Creates a constant term.
    pub fn constant(name: &str) -> Term {
        Term::Const(Symbol::intern(name))
    }

    /// Creates a variable term.
    pub fn variable(name: &str) -> Term {
        Term::Var(Symbol::intern(name))
    }

    /// Creates a labelled null term.
    pub fn null(id: NullId) -> Term {
        Term::Null(id)
    }

    /// Returns `true` for constants.
    pub fn is_constant(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Returns `true` for labelled nulls.
    pub fn is_null(&self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// Returns `true` for variables.
    pub fn is_variable(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Returns `true` for constants and nulls (the terms allowed in
    /// interpretations).
    pub fn is_ground(&self) -> bool {
        !self.is_variable()
    }

    /// Returns the symbol of a constant or variable, if any.
    pub fn symbol(&self) -> Option<Symbol> {
        match self {
            Term::Const(s) | Term::Var(s) => Some(*s),
            Term::Null(_) => None,
        }
    }

    /// Returns the variable symbol if this term is a variable.
    pub fn as_variable(&self) -> Option<Symbol> {
        match self {
            Term::Var(s) => Some(*s),
            _ => None,
        }
    }

    /// Returns the constant symbol if this term is a constant.
    pub fn as_constant(&self) -> Option<Symbol> {
        match self {
            Term::Const(s) => Some(*s),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(s) => write!(f, "{s}"),
            Term::Null(id) => write!(f, "_n{id}"),
            Term::Var(s) => write!(f, "{s}"),
        }
    }
}

/// A monotone factory for fresh labelled nulls.
///
/// Chase procedures and the stable-model grounder use a `NullFactory` to invent
/// new values; the factory never hands out the same identifier twice.
#[derive(Debug, Clone, Default)]
pub struct NullFactory {
    next: NullId,
}

impl NullFactory {
    /// Creates a factory whose first null is `_n0`.
    pub fn new() -> Self {
        NullFactory { next: 0 }
    }

    /// Creates a factory starting at the given identifier.
    pub fn starting_at(next: NullId) -> Self {
        NullFactory { next }
    }

    /// Returns a fresh null term.
    pub fn fresh(&mut self) -> Term {
        let id = self.next;
        self.next += 1;
        Term::Null(id)
    }

    /// Number of nulls issued so far (relative to the starting point).
    pub fn issued(&self) -> NullId {
        self.next
    }

    /// Rolls the factory back so that the next fresh null is `_n<issued>`
    /// again: the epoch-rollback counterpart of
    /// [`Interpretation::truncate`](crate::interpretation::Interpretation::truncate).
    /// Callers must have removed every atom mentioning the rolled-back nulls
    /// first, otherwise re-issued identifiers would alias live nulls.
    ///
    /// # Panics
    ///
    /// Panics if `issued` exceeds the number already issued (a rollback can
    /// only move backwards).
    pub fn rollback_to(&mut self, issued: NullId) {
        assert!(
            issued <= self.next,
            "cannot roll a null factory forward (issued {issued} > next {})",
            self.next
        );
        self.next = issued;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let c = Term::constant("alice");
        let v = Term::variable("X");
        let n = Term::null(3);
        assert!(c.is_constant() && c.is_ground() && !c.is_variable());
        assert!(v.is_variable() && !v.is_ground() && !v.is_constant());
        assert!(n.is_null() && n.is_ground() && !n.is_constant());
    }

    #[test]
    fn equality_follows_unique_name_assumption() {
        assert_eq!(Term::constant("a"), Term::constant("a"));
        assert_ne!(Term::constant("a"), Term::constant("b"));
        assert_ne!(Term::constant("a"), Term::variable("a"));
        assert_ne!(Term::null(0), Term::null(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Term::constant("bob").to_string(), "bob");
        assert_eq!(Term::variable("X").to_string(), "X");
        assert_eq!(Term::null(7).to_string(), "_n7");
    }

    #[test]
    fn null_factory_is_monotone() {
        let mut f = NullFactory::new();
        let a = f.fresh();
        let b = f.fresh();
        assert_ne!(a, b);
        assert_eq!(f.issued(), 2);
        let mut g = NullFactory::starting_at(100);
        assert_eq!(g.fresh(), Term::Null(100));
    }

    #[test]
    fn null_factory_rolls_back_to_an_earlier_epoch() {
        let mut f = NullFactory::new();
        f.fresh();
        let mark = f.issued();
        let second = f.fresh();
        f.rollback_to(mark);
        assert_eq!(f.issued(), mark);
        assert_eq!(f.fresh(), second, "re-issues the rolled-back identifier");
    }

    #[test]
    #[should_panic(expected = "cannot roll a null factory forward")]
    fn null_factory_rejects_forward_rollback() {
        let mut f = NullFactory::new();
        f.rollback_to(5);
    }

    #[test]
    fn symbol_accessors() {
        assert_eq!(Term::constant("a").as_constant(), Some(Symbol::intern("a")));
        assert_eq!(Term::variable("X").as_variable(), Some(Symbol::intern("X")));
        assert_eq!(Term::null(1).symbol(), None);
        assert_eq!(Term::constant("a").as_variable(), None);
    }
}
