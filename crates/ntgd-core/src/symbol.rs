//! A small global string interner.
//!
//! Predicate names, constants and variable names are interned into [`Symbol`]s
//! (a `u32` index) so that equality checks, hashing and cloning of terms and
//! atoms are cheap.  Interned strings live for the lifetime of the process;
//! logic programs have a bounded number of distinct symbols, so this is an
//! acceptable trade-off for a reasoning engine (the same strategy is used by
//! most compilers and Datalog engines).

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string.
///
/// `Symbol` is `Copy`, `Eq`, `Ord` and `Hash`; the ordering is the order of
/// interning (stable within one process run), which is sufficient for use in
/// ordered containers but is **not** lexicographic.  Use [`Symbol::as_str`]
/// when a lexicographic order is required.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = self.strings.len() as u32;
        self.strings.push(leaked);
        self.map.insert(leaked, id);
        id
    }

    fn resolve(&self, id: u32) -> &'static str {
        self.strings[id as usize]
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::new()))
}

impl Symbol {
    /// Interns `s` and returns its symbol.  Interning the same string twice
    /// yields the same symbol.
    pub fn intern(s: &str) -> Symbol {
        // Fast path: read lock only.
        {
            let guard = interner().read().expect("interner poisoned");
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write().expect("interner poisoned");
        Symbol(guard.intern(s))
    }

    /// Returns the interned string.
    pub fn as_str(&self) -> &'static str {
        interner()
            .read()
            .expect("interner poisoned")
            .resolve(self.0)
    }

    /// Returns the raw interner index (useful for dense tables keyed by symbol).
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::intern(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("person");
        let b = Symbol::intern("person");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "person");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("p");
        let b = Symbol::intern("q");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "p");
        assert_eq!(b.as_str(), "q");
    }

    #[test]
    fn symbols_hash_consistently() {
        let mut set = HashSet::new();
        set.insert(Symbol::intern("x"));
        assert!(set.contains(&Symbol::intern("x")));
        assert!(!set.contains(&Symbol::intern("y")));
    }

    #[test]
    fn display_matches_source_string() {
        let s = Symbol::intern("hasFather");
        assert_eq!(format!("{s}"), "hasFather");
        assert_eq!(format!("{s:?}"), "\"hasFather\"");
    }

    #[test]
    fn empty_and_unicode_strings() {
        let e = Symbol::intern("");
        assert_eq!(e.as_str(), "");
        let u = Symbol::intern("déjà_vu");
        assert_eq!(u.as_str(), "déjà_vu");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("shared_symbol")))
            .collect();
        let ids: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
