//! Databases: finite sets of constant-only atoms.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use crate::atom::Atom;
use crate::error::{CoreError, CoreResult};
use crate::interpretation::Interpretation;
use crate::schema::Schema;
use crate::symbol::Symbol;
use crate::term::Term;

/// A database `D` over a schema: a finite set of atoms whose arguments are
/// constants (paper, Section 2: `dom(D) ⊂ C`).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Database {
    atoms: BTreeSet<Atom>,
    by_predicate: HashMap<Symbol, Vec<Atom>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a database from an iterator of facts.
    ///
    /// Returns an error if any fact contains a variable or a null.
    pub fn from_facts<I>(facts: I) -> CoreResult<Database>
    where
        I: IntoIterator<Item = Atom>,
    {
        let mut db = Database::new();
        for f in facts {
            db.insert(f)?;
        }
        Ok(db)
    }

    /// Inserts a fact.  Returns `Ok(true)` if the fact was new.
    pub fn insert(&mut self, fact: Atom) -> CoreResult<bool> {
        if !fact.is_constant_only() {
            return Err(CoreError::NonGroundFact {
                atom: fact.to_string(),
            });
        }
        if self.atoms.contains(&fact) {
            return Ok(false);
        }
        self.by_predicate
            .entry(fact.predicate())
            .or_default()
            .push(fact.clone());
        self.atoms.insert(fact);
        Ok(true)
    }

    /// Returns `true` if the database contains the fact.
    pub fn contains(&self, fact: &Atom) -> bool {
        self.atoms.contains(fact)
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` if the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over the facts in a deterministic order.
    pub fn facts(&self) -> impl Iterator<Item = &Atom> + '_ {
        self.atoms.iter()
    }

    /// The facts with a given predicate.
    pub fn facts_with_predicate(&self, predicate: Symbol) -> &[Atom] {
        self.by_predicate
            .get(&predicate)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The active domain `dom(D)`: all constants occurring in the database.
    pub fn domain(&self) -> BTreeSet<Term> {
        let mut out = BTreeSet::new();
        for a in &self.atoms {
            for t in a.terms() {
                out.insert(*t);
            }
        }
        out
    }

    /// The set of constant symbols occurring in the database.
    pub fn constants(&self) -> BTreeSet<Symbol> {
        self.domain()
            .into_iter()
            .filter_map(|t| t.as_constant())
            .collect()
    }

    /// The schema induced by the database facts.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for a in &self.atoms {
            // Facts of the same predicate always have the same arity inside a
            // `Database` only if they were inserted consistently; inconsistent
            // arities are tolerated here and caught by `Program::validate`.
            let _ = s.declare_atom(a);
        }
        s
    }

    /// Converts the database into an interpretation whose positive part is the
    /// database itself (`I⁺ = D`, `dom(I) = dom(D)`).
    pub fn to_interpretation(&self) -> Interpretation {
        Interpretation::from_atoms(self.atoms.iter().cloned())
    }

    /// Returns the union of this database with another.
    pub fn union(&self, other: &Database) -> Database {
        let mut out = self.clone();
        for f in other.facts() {
            out.insert(f.clone()).expect("facts are constant-only");
        }
        out
    }

    /// Returns a new database containing only facts satisfying the predicate.
    pub fn filter<F>(&self, mut keep: F) -> Database
    where
        F: FnMut(&Atom) -> bool,
    {
        Database::from_facts(self.facts().filter(|a| keep(a)).cloned())
            .expect("filtered facts remain constant-only")
    }

    /// Returns `true` if `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Database) -> bool {
        self.atoms.iter().all(|a| other.contains(a))
    }

    /// The set of predicates used by the database.
    pub fn predicates(&self) -> HashSet<Symbol> {
        self.by_predicate.keys().copied().collect()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.atoms {
            writeln!(f, "{a}.")?;
        }
        Ok(())
    }
}

impl FromIterator<Atom> for Database {
    /// Builds a database from facts, panicking on non-ground facts.  Use
    /// [`Database::from_facts`] for fallible construction.
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        Database::from_facts(iter).expect("facts must be constant-only")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, cst, var};

    fn sample() -> Database {
        Database::from_facts(vec![
            atom("person", vec![cst("alice")]),
            atom("person", vec![cst("bob")]),
            atom("knows", vec![cst("alice"), cst("bob")]),
        ])
        .unwrap()
    }

    #[test]
    fn insert_and_contains() {
        let db = sample();
        assert_eq!(db.len(), 3);
        assert!(db.contains(&atom("person", vec![cst("alice")])));
        assert!(!db.contains(&atom("person", vec![cst("carol")])));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut db = sample();
        assert!(!db.insert(atom("person", vec![cst("alice")])).unwrap());
        assert_eq!(db.len(), 3);
        assert_eq!(db.facts_with_predicate(Symbol::intern("person")).len(), 2);
    }

    #[test]
    fn non_ground_facts_are_rejected() {
        let mut db = Database::new();
        assert!(db.insert(atom("p", vec![var("X")])).is_err());
        assert!(db.insert(atom("p", vec![Term::null(0)])).is_err());
    }

    #[test]
    fn domain_and_constants() {
        let db = sample();
        let dom = db.domain();
        assert_eq!(dom.len(), 2);
        assert!(dom.contains(&cst("alice")));
        assert!(dom.contains(&cst("bob")));
        assert_eq!(db.constants().len(), 2);
    }

    #[test]
    fn schema_is_induced_from_facts() {
        let db = sample();
        let s = db.schema();
        assert_eq!(s.arity(Symbol::intern("person")), Some(1));
        assert_eq!(s.arity(Symbol::intern("knows")), Some(2));
    }

    #[test]
    fn union_and_subset() {
        let db = sample();
        let extra = Database::from_facts(vec![atom("person", vec![cst("carol")])]).unwrap();
        let u = db.union(&extra);
        assert_eq!(u.len(), 4);
        assert!(db.is_subset_of(&u));
        assert!(!u.is_subset_of(&db));
    }

    #[test]
    fn filter_keeps_matching_facts() {
        let db = sample();
        let people = db.filter(|a| a.predicate() == Symbol::intern("person"));
        assert_eq!(people.len(), 2);
    }

    #[test]
    fn to_interpretation_has_same_atoms() {
        let db = sample();
        let i = db.to_interpretation();
        assert_eq!(i.len(), 3);
        assert!(i.contains(&atom("knows", vec![cst("alice"), cst("bob")])));
    }
}
