//! Error types shared by the core crate and its clients.

use std::fmt;

/// Result alias for core operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors raised while constructing or validating logical objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A rule violates the safety condition: a variable of a negative body
    /// literal (or of the head frontier) does not occur in a positive body
    /// literal.
    UnsafeRule {
        /// Human-readable rendering of the offending rule.
        rule: String,
        /// The offending variable.
        variable: String,
        /// Which part of the rule is unsafe.
        reason: String,
    },
    /// A predicate is used with two different arities.
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// Arity recorded first.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A database fact contains a variable or a labelled null.
    NonGroundFact {
        /// Rendering of the offending atom.
        atom: String,
    },
    /// A rule head is empty (TGDs must generate at least one atom).
    EmptyHead {
        /// Rendering of the offending rule body.
        rule: String,
    },
    /// A rule body has no positive literal (required for safety).
    EmptyPositiveBody {
        /// Rendering of the offending rule.
        rule: String,
    },
    /// A query violates the safety condition.
    UnsafeQuery {
        /// Rendering of the offending query.
        query: String,
        /// The offending variable.
        variable: String,
    },
    /// Any other validation failure.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsafeRule {
                rule,
                variable,
                reason,
            } => write!(f, "unsafe rule `{rule}`: variable {variable} {reason}"),
            CoreError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "predicate {predicate} used with arity {found}, but previously with arity {expected}"
            ),
            CoreError::NonGroundFact { atom } => {
                write!(f, "database fact `{atom}` must contain only constants")
            }
            CoreError::EmptyHead { rule } => write!(f, "rule `{rule}` has an empty head"),
            CoreError::EmptyPositiveBody { rule } => {
                write!(f, "rule `{rule}` has no positive body literal")
            }
            CoreError::UnsafeQuery { query, variable } => {
                write!(f, "unsafe query `{query}`: variable {variable} occurs only negatively")
            }
            CoreError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = CoreError::ArityMismatch {
            predicate: "p".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("arity 3"));
        let e = CoreError::NonGroundFact {
            atom: "p(X)".into(),
        };
        assert!(e.to_string().contains("p(X)"));
        let e = CoreError::Invalid("boom".into());
        assert_eq!(e.to_string(), "boom");
    }
}
