//! Programs: finite sets of (disjunctive) normal TGDs.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::CoreResult;
use crate::rule::{Ndtgd, Ntgd};
use crate::schema::Schema;
use crate::symbol::Symbol;
use crate::term::Term;

/// A finite set `Σ` of NTGDs (class `TGD¬` in the paper).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Program {
    rules: Vec<Ntgd>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Creates a program from rules, validating arity consistency of the
    /// induced schema.
    pub fn from_rules<I>(rules: I) -> CoreResult<Program>
    where
        I: IntoIterator<Item = Ntgd>,
    {
        let p = Program {
            rules: rules.into_iter().collect(),
        };
        p.schema()?;
        Ok(p)
    }

    /// Adds a rule.
    pub fn push(&mut self, rule: Ntgd) {
        self.rules.push(rule);
    }

    /// The rules of the program.
    pub fn rules(&self) -> &[Ntgd] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The schema `sch(Σ)`: predicates occurring in the program.
    pub fn schema(&self) -> CoreResult<Schema> {
        let mut s = Schema::new();
        for r in &self.rules {
            r.declare_into(&mut s)?;
        }
        Ok(s)
    }

    /// Returns `true` if no rule contains a negative literal.
    pub fn is_positive(&self) -> bool {
        self.rules.iter().all(Ntgd::is_positive)
    }

    /// The positive part `Σ⁺`: every rule with its negative literals dropped.
    pub fn positive_part(&self) -> Program {
        Program {
            rules: self.rules.iter().map(Ntgd::positive_part).collect(),
        }
    }

    /// All constants mentioned in rule bodies or heads.
    pub fn constants(&self) -> BTreeSet<Term> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            for l in r.body() {
                out.extend(l.atom().terms().filter(|t| t.is_constant()).copied());
            }
            for a in r.head() {
                out.extend(a.terms().filter(|t| t.is_constant()).copied());
            }
        }
        out
    }

    /// Predicates that occur in some rule head (the "intensional" candidates).
    pub fn head_predicates(&self) -> BTreeSet<Symbol> {
        self.rules
            .iter()
            .flat_map(|r| r.head().iter().map(|a| a.predicate()))
            .collect()
    }

    /// Predicates that occur in some rule body.
    pub fn body_predicates(&self) -> BTreeSet<Symbol> {
        self.rules
            .iter()
            .flat_map(|r| r.body().iter().map(|l| l.atom().predicate()))
            .collect()
    }

    /// Predicates of the schema that never occur in a head: the *extensional*
    /// (database) schema `edb(Σ)` of Section 7.1.
    pub fn extensional_predicates(&self) -> BTreeSet<Symbol> {
        let heads = self.head_predicates();
        let mut out = BTreeSet::new();
        if let Ok(schema) = self.schema() {
            for (p, _) in schema.predicates() {
                if !heads.contains(&p) {
                    out.insert(p);
                }
            }
        }
        out
    }

    /// Maximum number of existential variables in any rule head.
    pub fn max_existential_arity(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.existential_variables().len())
            .max()
            .unwrap_or(0)
    }

    /// Converts the program into a disjunctive program with single-disjunct
    /// rules.
    pub fn to_disjunctive(&self) -> DisjunctiveProgram {
        DisjunctiveProgram {
            rules: self.rules.iter().map(Ntgd::to_ndtgd).collect(),
        }
    }

    /// Iterates over rules together with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Ntgd)> + '_ {
        self.rules.iter().enumerate()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl FromIterator<Ntgd> for Program {
    fn from_iter<I: IntoIterator<Item = Ntgd>>(iter: I) -> Self {
        Program {
            rules: iter.into_iter().collect(),
        }
    }
}

/// A finite set of NDTGDs (class `TGD¬,∨` in the paper, Section 6).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct DisjunctiveProgram {
    rules: Vec<Ndtgd>,
}

impl DisjunctiveProgram {
    /// Creates an empty disjunctive program.
    pub fn new() -> DisjunctiveProgram {
        DisjunctiveProgram::default()
    }

    /// Creates a disjunctive program from rules.
    pub fn from_rules<I>(rules: I) -> CoreResult<DisjunctiveProgram>
    where
        I: IntoIterator<Item = Ndtgd>,
    {
        let p = DisjunctiveProgram {
            rules: rules.into_iter().collect(),
        };
        p.schema()?;
        Ok(p)
    }

    /// Adds a rule.
    pub fn push(&mut self, rule: Ndtgd) {
        self.rules.push(rule);
    }

    /// The rules.
    pub fn rules(&self) -> &[Ndtgd] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The schema of the program.
    pub fn schema(&self) -> CoreResult<Schema> {
        let mut s = Schema::new();
        for r in &self.rules {
            r.declare_into(&mut s)?;
        }
        Ok(s)
    }

    /// Maximum number of disjuncts over all rules (the `k` of Lemma 13).
    pub fn max_disjuncts(&self) -> usize {
        self.rules
            .iter()
            .map(Ndtgd::disjunct_count)
            .max()
            .unwrap_or(0)
    }

    /// Returns `Some(program)` if every rule is non-disjunctive.
    pub fn to_program(&self) -> Option<Program> {
        let mut rules = Vec::with_capacity(self.rules.len());
        for r in &self.rules {
            rules.push(r.to_ntgd()?);
        }
        Some(Program { rules })
    }

    /// The `Σ⁺,∧` program of Section 6 (used for disjunctive weak-acyclicity).
    pub fn positive_conjunctive_part(&self) -> Program {
        Program {
            rules: self
                .rules
                .iter()
                .map(Ndtgd::positive_conjunctive_part)
                .collect(),
        }
    }
}

impl fmt::Display for DisjunctiveProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl FromIterator<Ndtgd> for DisjunctiveProgram {
    fn from_iter<I: IntoIterator<Item = Ndtgd>>(iter: I) -> Self {
        DisjunctiveProgram {
            rules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, neg, pos, var};

    /// The three rules of Example 1.
    pub(crate) fn example1() -> Program {
        Program::from_rules(vec![
            Ntgd::new(
                vec![pos("person", vec![var("X")])],
                vec![atom("hasFather", vec![var("X"), var("Y")])],
            )
            .unwrap(),
            Ntgd::new(
                vec![pos("hasFather", vec![var("X"), var("Y")])],
                vec![atom("sameAs", vec![var("Y"), var("Y")])],
            )
            .unwrap(),
            Ntgd::new(
                vec![
                    pos("hasFather", vec![var("X"), var("Y")]),
                    pos("hasFather", vec![var("X"), var("Z")]),
                    neg("sameAs", vec![var("Y"), var("Z")]),
                ],
                vec![atom("abnormal", vec![var("X")])],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn schema_collects_all_predicates() {
        let p = example1();
        let s = p.schema().unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.arity(Symbol::intern("hasFather")), Some(2));
        assert_eq!(s.max_arity(), 2);
    }

    #[test]
    fn positivity_and_positive_part() {
        let p = example1();
        assert!(!p.is_positive());
        let pp = p.positive_part();
        assert!(pp.is_positive());
        assert_eq!(pp.len(), 3);
        // The abnormal rule lost its negative literal but kept its two
        // positive ones.
        assert_eq!(pp.rules()[2].body().len(), 2);
    }

    #[test]
    fn extensional_predicates_are_those_never_derived() {
        let p = example1();
        let edb = p.extensional_predicates();
        assert!(edb.contains(&Symbol::intern("person")));
        assert!(!edb.contains(&Symbol::intern("hasFather")));
        assert!(!edb.contains(&Symbol::intern("abnormal")));
    }

    #[test]
    fn max_existential_arity() {
        let p = example1();
        assert_eq!(p.max_existential_arity(), 1);
        assert_eq!(Program::new().max_existential_arity(), 0);
    }

    #[test]
    fn arity_conflicts_detected_at_construction() {
        let result = Program::from_rules(vec![
            Ntgd::new(
                vec![pos("p", vec![var("X")])],
                vec![atom("q", vec![var("X")])],
            )
            .unwrap(),
            Ntgd::new(
                vec![pos("p", vec![var("X"), var("Y")])],
                vec![atom("q", vec![var("X")])],
            )
            .unwrap(),
        ]);
        assert!(result.is_err());
    }

    #[test]
    fn disjunctive_round_trip() {
        let p = example1();
        let d = p.to_disjunctive();
        assert_eq!(d.len(), 3);
        assert_eq!(d.max_disjuncts(), 1);
        let back = d.to_program().unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn disjunctive_program_with_real_disjunction() {
        let d = DisjunctiveProgram::from_rules(vec![Ndtgd::new(
            vec![pos("node", vec![var("X")])],
            vec![
                vec![atom("red", vec![var("X")])],
                vec![atom("green", vec![var("X")])],
            ],
        )
        .unwrap()])
        .unwrap();
        assert_eq!(d.max_disjuncts(), 2);
        assert!(d.to_program().is_none());
        let pc = d.positive_conjunctive_part();
        assert_eq!(pc.rules()[0].head().len(), 2);
    }

    #[test]
    fn display_lists_rules_line_by_line() {
        let p = example1();
        let text = p.to_string();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("person(X) -> hasFather(X,Y)."));
    }
}
