//! Atoms and literals.

use std::fmt;

use crate::symbol::Symbol;
use crate::term::Term;

/// An atomic formula `p(t1, ..., tn)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Atom {
    predicate: Symbol,
    args: Vec<Term>,
}

impl Atom {
    /// Creates an atom from a predicate symbol and argument terms.
    pub fn new(predicate: Symbol, args: Vec<Term>) -> Atom {
        Atom { predicate, args }
    }

    /// Creates an atom, interning the predicate name.
    pub fn from_parts(predicate: &str, args: Vec<Term>) -> Atom {
        Atom::new(Symbol::intern(predicate), args)
    }

    /// The predicate symbol.
    pub fn predicate(&self) -> Symbol {
        self.predicate
    }

    /// The arity (number of arguments).
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The argument terms.
    pub fn args(&self) -> &[Term] {
        &self.args
    }

    /// Mutable access to the argument terms (used by substitution application).
    pub fn args_mut(&mut self) -> &mut [Term] {
        &mut self.args
    }

    /// Consumes the atom and returns its arguments.
    pub fn into_args(self) -> Vec<Term> {
        self.args
    }

    /// Returns `true` if the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Returns `true` if the atom contains only constants.
    pub fn is_constant_only(&self) -> bool {
        self.args.iter().all(Term::is_constant)
    }

    /// Iterates over the variables of the atom (with repetitions).
    pub fn variables(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.args.iter().filter_map(Term::as_variable)
    }

    /// Iterates over all terms of the atom.
    pub fn terms(&self) -> impl Iterator<Item = &Term> + '_ {
        self.args.iter()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.predicate)?;
        if self.args.is_empty() {
            return Ok(());
        }
        write!(f, "(")?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A literal: an atom or its default negation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Literal {
    atom: Atom,
    positive: bool,
}

impl Literal {
    /// Wraps an atom as a positive literal.
    pub fn positive(atom: Atom) -> Literal {
        Literal {
            atom,
            positive: true,
        }
    }

    /// Wraps an atom as a negative literal (`not p(t)`).
    pub fn negative(atom: Atom) -> Literal {
        Literal {
            atom,
            positive: false,
        }
    }

    /// Returns `true` if the literal is positive.
    pub fn is_positive(&self) -> bool {
        self.positive
    }

    /// Returns `true` if the literal is negative.
    pub fn is_negative(&self) -> bool {
        !self.positive
    }

    /// The underlying atom.
    pub fn atom(&self) -> &Atom {
        &self.atom
    }

    /// Consumes the literal and returns the underlying atom.
    pub fn into_atom(self) -> Atom {
        self.atom
    }

    /// The complementary literal.
    pub fn negated(&self) -> Literal {
        Literal {
            atom: self.atom.clone(),
            positive: !self.positive,
        }
    }

    /// Iterates over the variables of the literal.
    pub fn variables(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.atom.variables()
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.atom)
        } else {
            write!(f, "not {}", self.atom)
        }
    }
}

impl From<Atom> for Literal {
    fn from(atom: Atom) -> Self {
        Literal::positive(atom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cst, var};

    fn p_ab() -> Atom {
        Atom::from_parts("p", vec![cst("a"), cst("b")])
    }

    #[test]
    fn atom_accessors() {
        let a = p_ab();
        assert_eq!(a.predicate(), Symbol::intern("p"));
        assert_eq!(a.arity(), 2);
        assert!(a.is_ground());
        assert!(a.is_constant_only());
        assert_eq!(a.to_string(), "p(a,b)");
    }

    #[test]
    fn zero_ary_atom_displays_without_parentheses() {
        let a = Atom::from_parts("error", vec![]);
        assert_eq!(a.to_string(), "error");
        assert_eq!(a.arity(), 0);
        assert!(a.is_ground());
    }

    #[test]
    fn atoms_with_variables_are_not_ground() {
        let a = Atom::from_parts("p", vec![var("X"), cst("b")]);
        assert!(!a.is_ground());
        assert!(!a.is_constant_only());
        assert_eq!(a.variables().collect::<Vec<_>>(), vec![Symbol::intern("X")]);
    }

    #[test]
    fn atoms_with_nulls_are_ground_but_not_constant_only() {
        let a = Atom::from_parts("p", vec![Term::null(0)]);
        assert!(a.is_ground());
        assert!(!a.is_constant_only());
    }

    #[test]
    fn literal_polarity_and_negation() {
        let l = Literal::positive(p_ab());
        assert!(l.is_positive());
        let n = l.negated();
        assert!(n.is_negative());
        assert_eq!(n.negated(), l);
        assert_eq!(n.to_string(), "not p(a,b)");
        assert_eq!(l.to_string(), "p(a,b)");
    }

    #[test]
    fn atom_equality_is_structural() {
        assert_eq!(p_ab(), p_ab());
        assert_ne!(p_ab(), Atom::from_parts("p", vec![cst("b"), cst("a")]));
        assert_ne!(p_ab(), Atom::from_parts("q", vec![cst("a"), cst("b")]));
    }
}
