//! # ntgd-core
//!
//! Logic substrate for *normal tuple-generating dependencies* (NTGDs), as defined
//! in "Stable Model Semantics for Tuple-Generating Dependencies Revisited"
//! (Alviano, Morak, Pieris — PODS 2017), Section 2.
//!
//! The crate provides:
//!
//! * interned [`Symbol`]s and the three kinds of [`Term`]s (constants, labelled
//!   nulls, variables);
//! * [`Atom`]s, [`Literal`]s, [`Schema`]s and [`Database`]s;
//! * (total) [`Interpretation`]s represented by their positive part plus domain;
//! * [`Substitution`]s / homomorphisms and a backtracking [`matcher`] that
//!   enumerates homomorphisms from conjunctions of literals into interpretations;
//! * [`Ntgd`] / [`Ndtgd`] rules, [`Program`]s and their safety validation;
//! * normal (Boolean) conjunctive queries ([`Query`]);
//! * a deterministic scoped-thread [`parallel`] layer used by the chase,
//!   grounding and stability fixpoints downstream;
//! * a zero-dependency observability layer ([`obs`]): process-wide
//!   counters, gauges, log-bucketed histograms, RAII span timers and a
//!   structured event log — write-only for the engine, so it never
//!   influences execution.
//!
//! Everything downstream — the chase, the LP approach, the new stable model
//! semantics — is built on these types.

pub mod atom;
pub mod database;
pub mod error;
pub mod interpretation;
pub mod matcher;
pub mod obs;
pub mod parallel;
pub mod program;
pub mod query;
pub mod rule;
pub mod ruleset;
pub mod schema;
pub mod substitution;
pub mod symbol;
pub mod term;

pub use atom::{Atom, Literal};
pub use database::Database;
pub use error::{CoreError, CoreResult};
pub use interpretation::{AtomId, IdProbe, Interpretation, InterpretationBase};
pub use matcher::{
    all_atom_homomorphisms_delta, all_homomorphisms, exists_homomorphism,
    for_each_homomorphism_delta, CompiledConjunction, SlotBinding,
};
pub use program::{DisjunctiveProgram, Program};
pub use query::Query;
pub use rule::{Ndtgd, Ntgd};
pub use ruleset::{
    CompiledDisjunctiveRule, CompiledDisjunctiveRuleSet, CompiledRule, CompiledRuleSet,
};
pub use schema::{Position, Schema};
pub use substitution::Substitution;
pub use symbol::Symbol;
pub use term::{NullFactory, NullId, Term};

/// Convenience constructor for a constant term from a string.
pub fn cst(name: &str) -> Term {
    Term::constant(name)
}

/// Convenience constructor for a variable term from a string.
pub fn var(name: &str) -> Term {
    Term::variable(name)
}

/// Convenience constructor for an atom from a predicate name and terms.
pub fn atom(pred: &str, args: Vec<Term>) -> Atom {
    Atom::new(Symbol::intern(pred), args)
}

/// Convenience constructor for a positive literal.
pub fn pos(pred: &str, args: Vec<Term>) -> Literal {
    Literal::positive(atom(pred, args))
}

/// Convenience constructor for a negative literal.
pub fn neg(pred: &str, args: Vec<Term>) -> Literal {
    Literal::negative(atom(pred, args))
}
