//! Relational schemas and positions.

use std::collections::BTreeMap;
use std::fmt;

use crate::atom::Atom;
use crate::error::{CoreError, CoreResult};
use crate::symbol::Symbol;

/// A *position* `p[i]` — the `i`-th attribute (1-based, as in the paper) of
/// predicate `p`.  Positions are the vertices of the position graph used to
/// define weak-acyclicity (paper, Definition 3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Position {
    /// The predicate symbol.
    pub predicate: Symbol,
    /// 1-based attribute index.
    pub index: usize,
}

impl Position {
    /// Creates the position `predicate[index]` (1-based index).
    pub fn new(predicate: Symbol, index: usize) -> Position {
        Position { predicate, index }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.predicate, self.index)
    }
}

/// A relational schema: a finite map from predicate symbols to arities.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Schema {
    arities: BTreeMap<Symbol, usize>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Declares (or re-checks) a predicate with the given arity.
    ///
    /// Returns an error if the predicate was previously declared with a
    /// different arity.
    pub fn declare(&mut self, predicate: Symbol, arity: usize) -> CoreResult<()> {
        match self.arities.get(&predicate) {
            Some(&existing) if existing != arity => Err(CoreError::ArityMismatch {
                predicate: predicate.as_str().to_owned(),
                expected: existing,
                found: arity,
            }),
            _ => {
                self.arities.insert(predicate, arity);
                Ok(())
            }
        }
    }

    /// Declares the predicate of an atom.
    pub fn declare_atom(&mut self, atom: &Atom) -> CoreResult<()> {
        self.declare(atom.predicate(), atom.arity())
    }

    /// Returns the arity of a predicate, if declared.
    pub fn arity(&self, predicate: Symbol) -> Option<usize> {
        self.arities.get(&predicate).copied()
    }

    /// Returns `true` if the predicate is declared.
    pub fn contains(&self, predicate: Symbol) -> bool {
        self.arities.contains_key(&predicate)
    }

    /// Number of declared predicates.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Returns `true` if no predicate is declared.
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// Iterates over `(predicate, arity)` pairs in a deterministic order.
    pub fn predicates(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.arities.iter().map(|(&p, &a)| (p, a))
    }

    /// The set of positions `pos(R)` of this schema (paper, Section 4.1).
    pub fn positions(&self) -> Vec<Position> {
        let mut out = Vec::new();
        for (&p, &a) in &self.arities {
            for i in 1..=a {
                out.push(Position::new(p, i));
            }
        }
        out
    }

    /// Merges another schema into this one, checking arity consistency.
    pub fn merge(&mut self, other: &Schema) -> CoreResult<()> {
        for (p, a) in other.predicates() {
            self.declare(p, a)?;
        }
        Ok(())
    }

    /// The maximum arity over all declared predicates (0 for an empty schema).
    pub fn max_arity(&self) -> usize {
        self.arities.values().copied().max().unwrap_or(0)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (p, a) in self.predicates() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{p}/{a}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst;

    #[test]
    fn declare_and_query_arities() {
        let mut s = Schema::new();
        s.declare(Symbol::intern("p"), 2).unwrap();
        s.declare(Symbol::intern("q"), 0).unwrap();
        assert_eq!(s.arity(Symbol::intern("p")), Some(2));
        assert_eq!(s.arity(Symbol::intern("q")), Some(0));
        assert_eq!(s.arity(Symbol::intern("r")), None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.max_arity(), 2);
    }

    #[test]
    fn arity_conflicts_are_rejected() {
        let mut s = Schema::new();
        s.declare(Symbol::intern("p"), 2).unwrap();
        let err = s.declare(Symbol::intern("p"), 3).unwrap_err();
        assert!(matches!(err, CoreError::ArityMismatch { .. }));
        // Re-declaring with the same arity is fine.
        s.declare(Symbol::intern("p"), 2).unwrap();
    }

    #[test]
    fn positions_enumerate_all_attributes() {
        let mut s = Schema::new();
        s.declare(Symbol::intern("p"), 2).unwrap();
        s.declare(Symbol::intern("q"), 1).unwrap();
        let pos = s.positions();
        assert_eq!(pos.len(), 3);
        assert!(pos.contains(&Position::new(Symbol::intern("p"), 1)));
        assert!(pos.contains(&Position::new(Symbol::intern("p"), 2)));
        assert!(pos.contains(&Position::new(Symbol::intern("q"), 1)));
    }

    #[test]
    fn declare_atom_uses_atom_arity() {
        let mut s = Schema::new();
        s.declare_atom(&Atom::from_parts("p", vec![cst("a"), cst("b")]))
            .unwrap();
        assert_eq!(s.arity(Symbol::intern("p")), Some(2));
        assert!(s
            .declare_atom(&Atom::from_parts("p", vec![cst("a")]))
            .is_err());
    }

    #[test]
    fn merge_combines_schemas() {
        let mut a = Schema::new();
        a.declare(Symbol::intern("p"), 1).unwrap();
        let mut b = Schema::new();
        b.declare(Symbol::intern("q"), 2).unwrap();
        a.merge(&b).unwrap();
        assert!(a.contains(Symbol::intern("q")));
        let mut c = Schema::new();
        c.declare(Symbol::intern("p"), 3).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn display_lists_predicates() {
        let mut s = Schema::new();
        s.declare(Symbol::intern("p"), 2).unwrap();
        s.declare(Symbol::intern("q"), 0).unwrap();
        let rendered = s.to_string();
        assert!(rendered.contains("p/2"));
        assert!(rendered.contains("q/0"));
    }
}
