//! Per-rule plan caches: every conjunction a rule can be matched on,
//! compiled exactly once and keyed by rule index.
//!
//! A [`CompiledRuleSet`] (for [`Program`]s) or [`CompiledDisjunctiveRuleSet`]
//! (for [`DisjunctiveProgram`]s) is built **once per run** — chase, grounding
//! or closure — and reused every round, so rule compilation and join planning
//! are a once-per-program cost instead of a once-per-call cost (see the
//! lifecycle notes in [`crate::matcher`]).  For each rule the set caches:
//!
//! * the full **body** (positive and negative literals) — classical-model
//!   checks;
//! * the **positive body** — trigger discovery, possibly-true closures,
//!   relevance grounding;
//! * the **head** as one conjunction — restricted-chase trigger activity
//!   (`∃` extension of the trigger homomorphism into the instance);
//! * each **head atom** (or each **disjunct** for disjunctive rules)
//!   individually — immediate-consequence head extension and disjunct
//!   satisfaction.
//!
//! Head plans are compiled without a baked substitution, so a single cached
//! plan serves every trigger: the (ground-valued) trigger homomorphism is
//! applied at execution time as slot presets.  Tests can assert the
//! compile-once property through [`crate::matcher::plan_compile_count`].

use crate::atom::Atom;
use crate::interpretation::Interpretation;
use crate::matcher::CompiledConjunction;
use crate::parallel;
use crate::program::{DisjunctiveProgram, Program};
use crate::rule::{Ndtgd, Ntgd};

/// Programs with at least this many rules compile their per-rule plans on
/// the [`parallel`] pool (the per-rule planner runs are independent and the
/// results are merged in rule order, so the set is identical at every thread
/// count); smaller programs compile inline.
const MIN_PARALLEL_RULES: usize = 8;

// `Send + Sync` audit: rule sets are immutable bundles of compiled plans and
// are shared by reference with every pool worker of a chase or grounding
// round.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledRuleSet>();
    assert_send_sync::<CompiledDisjunctiveRuleSet>();
};

/// The cached plans of one [`Ntgd`].
#[derive(Clone, Debug)]
pub struct CompiledRule {
    body: CompiledConjunction,
    body_positive: CompiledConjunction,
    head: CompiledConjunction,
    head_atoms: Vec<CompiledConjunction>,
}

impl CompiledRule {
    fn new(rule: &Ntgd, stats: &Interpretation) -> CompiledRule {
        let positive: Vec<Atom> = rule.body_positive().into_iter().cloned().collect();
        CompiledRule {
            body: CompiledConjunction::compile(rule.body(), stats),
            body_positive: CompiledConjunction::compile_atoms(&positive, stats),
            head: CompiledConjunction::compile_atoms(rule.head(), stats),
            head_atoms: rule
                .head()
                .iter()
                .map(|a| CompiledConjunction::compile_atoms(std::slice::from_ref(a), stats))
                .collect(),
        }
    }

    /// The full body (positive and negative literals).
    pub fn body(&self) -> &CompiledConjunction {
        &self.body
    }

    /// The positive body literals only.
    pub fn body_positive(&self) -> &CompiledConjunction {
        &self.body_positive
    }

    /// The head as a single positive conjunction.
    pub fn head(&self) -> &CompiledConjunction {
        &self.head
    }

    /// One single-atom conjunction per head atom, in head order.
    pub fn head_atoms(&self) -> &[CompiledConjunction] {
        &self.head_atoms
    }
}

/// The cached plans of every rule of a [`Program`], keyed by rule index.
#[derive(Clone, Debug)]
pub struct CompiledRuleSet {
    rules: Vec<CompiledRule>,
}

impl CompiledRuleSet {
    /// Compiles every rule of `program` exactly once.  `stats` provides the
    /// planner's cardinalities (typically the instance the plans first run
    /// against; plans stay correct on grown instances).
    pub fn from_program(program: &Program, stats: &Interpretation) -> CompiledRuleSet {
        let threads = if program.rules().len() >= MIN_PARALLEL_RULES {
            parallel::num_threads()
        } else {
            1
        };
        CompiledRuleSet {
            rules: parallel::par_map_with(program.rules(), threads, |_, r| {
                CompiledRule::new(r, stats)
            }),
        }
    }

    /// The cached plans of the rule at `index` (panics when out of range).
    pub fn rule(&self, index: usize) -> &CompiledRule {
        &self.rules[index]
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over `(rule index, cached plans)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CompiledRule)> + '_ {
        self.rules.iter().enumerate()
    }
}

/// The cached plans of one [`Ndtgd`].
#[derive(Clone, Debug)]
pub struct CompiledDisjunctiveRule {
    body: CompiledConjunction,
    body_positive: CompiledConjunction,
    disjuncts: Vec<CompiledConjunction>,
}

impl CompiledDisjunctiveRule {
    fn new(rule: &Ndtgd, stats: &Interpretation) -> CompiledDisjunctiveRule {
        let positive: Vec<Atom> = rule.body_positive().into_iter().cloned().collect();
        CompiledDisjunctiveRule {
            body: CompiledConjunction::compile(rule.body(), stats),
            body_positive: CompiledConjunction::compile_atoms(&positive, stats),
            disjuncts: rule
                .disjuncts()
                .iter()
                .map(|d| CompiledConjunction::compile_atoms(d, stats))
                .collect(),
        }
    }

    /// The full body (positive and negative literals).
    pub fn body(&self) -> &CompiledConjunction {
        &self.body
    }

    /// The positive body literals only.
    pub fn body_positive(&self) -> &CompiledConjunction {
        &self.body_positive
    }

    /// One conjunction per head disjunct, in disjunct order.
    pub fn disjuncts(&self) -> &[CompiledConjunction] {
        &self.disjuncts
    }
}

/// The cached plans of every rule of a [`DisjunctiveProgram`], keyed by rule
/// index.
#[derive(Clone, Debug)]
pub struct CompiledDisjunctiveRuleSet {
    rules: Vec<CompiledDisjunctiveRule>,
}

impl CompiledDisjunctiveRuleSet {
    /// Compiles every rule of `program` exactly once.
    pub fn from_disjunctive(
        program: &DisjunctiveProgram,
        stats: &Interpretation,
    ) -> CompiledDisjunctiveRuleSet {
        let threads = if program.rules().len() >= MIN_PARALLEL_RULES {
            parallel::num_threads()
        } else {
            1
        };
        CompiledDisjunctiveRuleSet {
            rules: parallel::par_map_with(program.rules(), threads, |_, r| {
                CompiledDisjunctiveRule::new(r, stats)
            }),
        }
    }

    /// The cached plans of the rule at `index` (panics when out of range).
    pub fn rule(&self, index: usize) -> &CompiledDisjunctiveRule {
        &self.rules[index]
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over `(rule index, cached plans)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CompiledDisjunctiveRule)> + '_ {
        self.rules.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::plan_compile_count;
    use crate::substitution::Substitution;
    use crate::{atom, cst, neg, pos, var};

    fn example_program() -> Program {
        Program::from_rules(vec![
            Ntgd::new(
                vec![pos("person", vec![var("X")])],
                vec![atom("hasFather", vec![var("X"), var("Y")])],
            )
            .unwrap(),
            Ntgd::new(
                vec![
                    pos("hasFather", vec![var("X"), var("Y")]),
                    pos("hasFather", vec![var("X"), var("Z")]),
                    neg("sameAs", vec![var("Y"), var("Z")]),
                ],
                vec![atom("abnormal", vec![var("X")])],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn rule_sets_compile_once_and_execute_many_times() {
        let program = example_program();
        let instance = Interpretation::from_atoms(vec![
            atom("person", vec![cst("alice")]),
            atom("hasFather", vec![cst("alice"), cst("bob")]),
        ]);
        let before = plan_compile_count();
        let plans = CompiledRuleSet::from_program(&program, &instance);
        assert!(plan_compile_count() > before);
        // Executions (full, delta, with and without presets) never
        // recompile.  The counter is process-wide (so pool-worker compiles
        // are counted too); retry the measured window until no concurrently
        // running test compiles inside it — a real recompile in these
        // executions fails every attempt.
        let mut clean_window = false;
        for _ in 0..50 {
            let before_runs = plan_compile_count();
            for _ in 0..10 {
                for (_, rule) in plans.iter() {
                    let homs = rule.body_positive().all(&instance, &Substitution::new());
                    for h in &homs {
                        let _ = rule.head().exists(&instance, h);
                    }
                    let _ = rule
                        .body_positive()
                        .all_delta(&instance, &Substitution::new(), 1);
                }
            }
            if plan_compile_count() == before_runs {
                clean_window = true;
                break;
            }
        }
        assert!(clean_window, "cached plan executions must not compile");
    }

    #[test]
    fn cached_body_plans_agree_with_one_shot_matching() {
        let program = example_program();
        let instance = Interpretation::from_atoms(vec![
            atom("person", vec![cst("alice")]),
            atom("hasFather", vec![cst("alice"), cst("bob")]),
            atom("hasFather", vec![cst("alice"), cst("carl")]),
        ]);
        let plans = CompiledRuleSet::from_program(&program, &Interpretation::new());
        for (index, rule) in program.rules().iter().enumerate() {
            let cached: Vec<String> = plans
                .rule(index)
                .body()
                .all(&instance, &Substitution::new())
                .iter()
                .map(|s| s.to_string())
                .collect();
            let one_shot: Vec<String> =
                crate::matcher::all_homomorphisms(rule.body(), &instance, &Substitution::new())
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
            let mut cached = cached;
            let mut one_shot = one_shot;
            cached.sort();
            one_shot.sort();
            assert_eq!(cached, one_shot, "rule {index}");
        }
    }

    #[test]
    fn disjunctive_rule_sets_cover_every_disjunct() {
        let rule = Ndtgd::new(
            vec![pos("node", vec![var("X")])],
            vec![
                vec![atom("red", vec![var("X")])],
                vec![atom("green", vec![var("X")])],
            ],
        )
        .unwrap();
        let program = DisjunctiveProgram::from_rules(vec![rule]).unwrap();
        let instance = Interpretation::from_atoms(vec![
            atom("node", vec![cst("v")]),
            atom("green", vec![cst("v")]),
        ]);
        let plans = CompiledDisjunctiveRuleSet::from_disjunctive(&program, &instance);
        assert_eq!(plans.len(), 1);
        assert!(!plans.is_empty());
        let rule_plans = plans.rule(0);
        assert_eq!(rule_plans.disjuncts().len(), 2);
        let homs = rule_plans
            .body_positive()
            .all(&instance, &Substitution::new());
        assert_eq!(homs.len(), 1);
        assert!(!rule_plans.disjuncts()[0].exists(&instance, &homs[0]));
        assert!(rule_plans.disjuncts()[1].exists(&instance, &homs[0]));
    }
}
