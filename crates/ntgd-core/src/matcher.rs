//! Homomorphism enumeration (conjunctive matching).
//!
//! The central evaluation primitive of the whole system: enumerate the
//! homomorphisms from a conjunction of literals into an interpretation.  A
//! homomorphism `h` satisfies
//!
//! * `h(a) ∈ I⁺` for every positive literal `a` of the conjunction, and
//! * `¬h(a) ∈ I` for every negative literal `¬a`, i.e. every term of `h(a)`
//!   belongs to `dom(I)` and `h(a) ∉ I⁺`.
//!
//! The matcher performs a backtracking join over the positive literals using
//! the per-predicate index of [`Interpretation`], then verifies the negative
//! literals.  Variables that occur *only* in negative literals (unsafe
//! conjunctions) are enumerated over `dom(I)`; safe rules and queries never
//! hit that path.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use crate::atom::{Atom, Literal};
use crate::interpretation::Interpretation;
use crate::substitution::Substitution;
use crate::term::Term;

/// Enumerates every homomorphism from `literals` into `target` extending
/// `initial`, invoking `visit` for each; stops early if `visit` breaks.
///
/// Returns `true` if the enumeration was stopped early by the visitor.
pub fn for_each_homomorphism<F>(
    literals: &[Literal],
    target: &Interpretation,
    initial: &Substitution,
    visit: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    let (positives, negatives): (Vec<&Literal>, Vec<&Literal>) =
        literals.iter().partition(|l| l.is_positive());
    let pos_atoms: Vec<&Atom> = positives.iter().map(|l| l.atom()).collect();
    let neg_atoms: Vec<&Atom> = negatives.iter().map(|l| l.atom()).collect();
    let mut subst = initial.clone();
    match_positives(&pos_atoms, 0, target, &mut subst, &neg_atoms, visit).is_break()
}

/// All homomorphisms from `literals` into `target` extending `initial`.
pub fn all_homomorphisms(
    literals: &[Literal],
    target: &Interpretation,
    initial: &Substitution,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    for_each_homomorphism(literals, target, initial, &mut |s| {
        out.push(s.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Returns `true` if at least one homomorphism from `literals` into `target`
/// extending `initial` exists.
pub fn exists_homomorphism(
    literals: &[Literal],
    target: &Interpretation,
    initial: &Substitution,
) -> bool {
    for_each_homomorphism(literals, target, initial, &mut |_| ControlFlow::Break(()))
}

/// All homomorphisms from a conjunction of *atoms* (all positive) into the
/// positive part of `target`, extending `initial`.  Used for checking head
/// satisfaction and for chase trigger matching.
pub fn all_atom_homomorphisms(
    atoms: &[Atom],
    target: &Interpretation,
    initial: &Substitution,
) -> Vec<Substitution> {
    let literals: Vec<Literal> = atoms.iter().cloned().map(Literal::positive).collect();
    all_homomorphisms(&literals, target, initial)
}

/// Returns `true` if the conjunction of atoms maps into `target⁺` by some
/// extension of `initial`.
pub fn exists_atom_homomorphism(
    atoms: &[Atom],
    target: &Interpretation,
    initial: &Substitution,
) -> bool {
    let literals: Vec<Literal> = atoms.iter().cloned().map(Literal::positive).collect();
    exists_homomorphism(&literals, target, initial)
}

fn match_positives<F>(
    atoms: &[&Atom],
    idx: usize,
    target: &Interpretation,
    subst: &mut Substitution,
    negatives: &[&Atom],
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    if idx == atoms.len() {
        return check_negatives(negatives, 0, target, subst, visit);
    }
    let pattern = atoms[idx];
    let candidates = target.atoms_with_predicate(pattern.predicate());
    for candidate in candidates {
        if candidate.arity() != pattern.arity() {
            continue;
        }
        let saved = subst.clone();
        let mut ok = true;
        for (pat, val) in pattern.args().iter().zip(candidate.args()) {
            let current = subst.apply_term(pat);
            let bindable = match current {
                Term::Var(_) => subst.try_bind(current, *val),
                ground => ground == *val,
            };
            if !bindable {
                ok = false;
                break;
            }
        }
        if ok {
            if match_positives(atoms, idx + 1, target, subst, negatives, visit).is_break() {
                return ControlFlow::Break(());
            }
        }
        *subst = saved;
    }
    ControlFlow::Continue(())
}

fn check_negatives<F>(
    negatives: &[&Atom],
    idx: usize,
    target: &Interpretation,
    subst: &mut Substitution,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    if idx == negatives.len() {
        return visit(subst);
    }
    let grounded = subst.apply_atom(negatives[idx]);
    let unbound: BTreeSet<Term> = grounded
        .args()
        .iter()
        .filter(|t| t.is_variable())
        .copied()
        .collect();
    if unbound.is_empty() {
        if target.satisfies_negation_of(&grounded) {
            return check_negatives(negatives, idx + 1, target, subst, visit);
        }
        return ControlFlow::Continue(());
    }
    // Unsafe conjunction: enumerate the unbound variables over dom(I).
    let domain: Vec<Term> = target.domain().into_iter().collect();
    enumerate_unbound(
        &unbound.into_iter().collect::<Vec<_>>(),
        0,
        &domain,
        negatives,
        idx,
        target,
        subst,
        visit,
    )
}

#[allow(clippy::too_many_arguments)]
fn enumerate_unbound<F>(
    vars: &[Term],
    vidx: usize,
    domain: &[Term],
    negatives: &[&Atom],
    idx: usize,
    target: &Interpretation,
    subst: &mut Substitution,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    if vidx == vars.len() {
        let grounded = subst.apply_atom(negatives[idx]);
        if target.satisfies_negation_of(&grounded) {
            return check_negatives(negatives, idx + 1, target, subst, visit);
        }
        return ControlFlow::Continue(());
    }
    for value in domain {
        let saved = subst.clone();
        if subst.try_bind(vars[vidx], *value)
            && enumerate_unbound(
                vars,
                vidx + 1,
                domain,
                negatives,
                idx,
                target,
                subst,
                visit,
            )
            .is_break()
        {
            return ControlFlow::Break(());
        }
        *subst = saved;
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, cst, neg, pos, var};

    fn interp() -> Interpretation {
        Interpretation::from_atoms(vec![
            atom("edge", vec![cst("a"), cst("b")]),
            atom("edge", vec![cst("b"), cst("c")]),
            atom("edge", vec![cst("c"), cst("a")]),
            atom("red", vec![cst("a")]),
        ])
    }

    #[test]
    fn single_atom_matching() {
        let hs = all_homomorphisms(&[pos("edge", vec![var("X"), var("Y")])], &interp(), &Substitution::new());
        assert_eq!(hs.len(), 3);
    }

    #[test]
    fn join_matching_chains_edges() {
        let body = vec![
            pos("edge", vec![var("X"), var("Y")]),
            pos("edge", vec![var("Y"), var("Z")]),
        ];
        let hs = all_homomorphisms(&body, &interp(), &Substitution::new());
        // a->b->c, b->c->a, c->a->b
        assert_eq!(hs.len(), 3);
        for h in &hs {
            assert_ne!(h.apply_term(&var("X")), h.apply_term(&var("Y")));
        }
    }

    #[test]
    fn constants_in_patterns_restrict_matches() {
        let body = vec![pos("edge", vec![cst("a"), var("Y")])];
        let hs = all_homomorphisms(&body, &interp(), &Substitution::new());
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].apply_term(&var("Y")), cst("b"));
    }

    #[test]
    fn negative_literals_filter_matches() {
        // Vertices with an outgoing edge that are not red.
        let body = vec![
            pos("edge", vec![var("X"), var("Y")]),
            neg("red", vec![var("X")]),
        ];
        let hs = all_homomorphisms(&body, &interp(), &Substitution::new());
        assert_eq!(hs.len(), 2);
        for h in &hs {
            assert_ne!(h.apply_term(&var("X")), cst("a"));
        }
    }

    #[test]
    fn negative_literal_with_term_outside_domain_fails() {
        let body = vec![
            pos("red", vec![var("X")]),
            neg("edge", vec![var("X"), cst("zzz")]),
        ];
        // zzz is not in the domain, so ¬edge(a, zzz) is not in I.
        assert!(all_homomorphisms(&body, &interp(), &Substitution::new()).is_empty());
    }

    #[test]
    fn initial_substitution_is_respected() {
        let mut init = Substitution::new();
        init.bind(var("X"), cst("b"));
        let hs = all_homomorphisms(
            &[pos("edge", vec![var("X"), var("Y")])],
            &interp(),
            &init,
        );
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].apply_term(&var("Y")), cst("c"));
    }

    #[test]
    fn exists_homomorphism_short_circuits() {
        assert!(exists_homomorphism(
            &[pos("edge", vec![var("X"), var("X")])],
            &Interpretation::from_atoms(vec![atom("edge", vec![cst("a"), cst("a")])]),
            &Substitution::new()
        ));
        assert!(!exists_homomorphism(
            &[pos("edge", vec![var("X"), var("X")])],
            &interp(),
            &Substitution::new()
        ));
    }

    #[test]
    fn empty_conjunction_has_exactly_the_initial_homomorphism() {
        let hs = all_homomorphisms(&[], &interp(), &Substitution::new());
        assert_eq!(hs.len(), 1);
        assert!(hs[0].is_empty());
    }

    #[test]
    fn unsafe_negative_variables_enumerate_the_domain() {
        // X occurs only negatively: all domain elements that are not red.
        let body = vec![neg("red", vec![var("X")])];
        let hs = all_homomorphisms(&body, &interp(), &Substitution::new());
        let values: BTreeSet<Term> = hs.iter().map(|h| h.apply_term(&var("X"))).collect();
        assert_eq!(values, BTreeSet::from([cst("b"), cst("c")]));
    }

    #[test]
    fn atom_homomorphisms_ignore_polarity_helpers() {
        let atoms = vec![atom("edge", vec![var("X"), var("Y")])];
        assert_eq!(
            all_atom_homomorphisms(&atoms, &interp(), &Substitution::new()).len(),
            3
        );
        assert!(exists_atom_homomorphism(&atoms, &interp(), &Substitution::new()));
    }

    #[test]
    fn zero_ary_atoms_match_when_present() {
        let i = Interpretation::from_atoms(vec![atom("saturate", vec![])]);
        assert!(exists_homomorphism(
            &[pos("saturate", vec![])],
            &i,
            &Substitution::new()
        ));
        assert!(!exists_homomorphism(
            &[neg("saturate", vec![])],
            &i,
            &Substitution::new()
        ));
        let empty = Interpretation::new();
        assert!(empty.satisfies_negation_of(&atom("saturate", vec![])));
        assert!(exists_homomorphism(
            &[neg("saturate", vec![])],
            &empty,
            &Substitution::new()
        ));
    }
}
