//! Homomorphism enumeration (conjunctive matching).
//!
//! The central evaluation primitive of the whole system: enumerate the
//! homomorphisms from a conjunction of literals into an interpretation.  A
//! homomorphism `h` satisfies
//!
//! * `h(a) ∈ I⁺` for every positive literal `a` of the conjunction, and
//! * `¬h(a) ∈ I` for every negative literal `¬a`, i.e. every term of `h(a)`
//!   belongs to `dom(I)` and `h(a) ∉ I⁺`.
//!
//! # The indexed join engine
//!
//! Matching is performed by a compiled backtracking join:
//!
//! 1. **Compilation** — each conjunction is compiled once per call: every
//!    variable (after resolution against the initial substitution) becomes a
//!    dense *slot* id, every ground term a *fixed* argument.
//! 2. **Planning** — positive atoms are reordered greedily by estimated
//!    selectivity: atoms whose fixed arguments have small
//!    `(predicate, position, term)` index cardinalities, and atoms with many
//!    already-bound positions, are matched first.
//! 3. **Matching** — candidates come from the most selective index probe of
//!    [`Interpretation`] (never from a full scan of a predicate's atoms when
//!    a bound position is available).  Bindings go through a trail/undo log,
//!    so backtracking costs O(bindings undone) instead of a substitution
//!    clone per candidate.
//! 4. **Negative literals** are verified at the leaves.  Variables that occur
//!    *only* in negative literals (unsafe conjunctions) are enumerated over
//!    `dom(I)`, which is materialised once per call; safe rules and queries
//!    never hit that path.
//!
//! # Delta (semi-naive) matching
//!
//! [`for_each_homomorphism_delta`] enumerates exactly the homomorphisms that
//! use at least one atom inserted at or after a *watermark* (an earlier value
//! of [`Interpretation::len`]).  Fixpoint loops — the chase, the
//! possibly-true closure of the grounder, the immediate-consequence operator
//! — use it to match each round only against newly derived atoms instead of
//! rematching the whole instance.
//!
//! The naive scan-and-clone matcher this engine replaced is retained in
//! [`reference`] as an executable specification: property tests assert that
//! both return identical homomorphism sets, and the matcher benchmark
//! measures the speedup against it.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use crate::atom::{Atom, Literal};
use crate::interpretation::{AtomId, Interpretation};
use crate::substitution::Substitution;
use crate::symbol::Symbol;
use crate::term::Term;

/// Enumerates every homomorphism from `literals` into `target` extending
/// `initial`, invoking `visit` for each; stops early if `visit` breaks.
///
/// Returns `true` if the enumeration was stopped early by the visitor.
pub fn for_each_homomorphism<F>(
    literals: &[Literal],
    target: &Interpretation,
    initial: &Substitution,
    visit: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    let (positives, negatives) = split_literals(literals);
    Engine::new(&positives, &negatives, target, initial)
        .run_full(visit)
        .is_break()
}

/// Enumerates every homomorphism from `literals` into `target` extending
/// `initial` that maps **at least one positive literal to an atom inserted at
/// or after `watermark`** (semi-naive delta matching).
///
/// With `watermark == 0` this is exactly [`for_each_homomorphism`].  With a
/// positive watermark a conjunction without positive literals has no delta
/// homomorphisms (it consumes no instance atoms).
///
/// Returns `true` if the enumeration was stopped early by the visitor.
pub fn for_each_homomorphism_delta<F>(
    literals: &[Literal],
    target: &Interpretation,
    initial: &Substitution,
    watermark: usize,
    visit: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    let (positives, negatives) = split_literals(literals);
    Engine::new(&positives, &negatives, target, initial)
        .run_delta(watermark, visit)
        .is_break()
}

/// All homomorphisms from `literals` into `target` extending `initial`.
pub fn all_homomorphisms(
    literals: &[Literal],
    target: &Interpretation,
    initial: &Substitution,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    for_each_homomorphism(literals, target, initial, &mut |s| {
        out.push(s.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Returns `true` if at least one homomorphism from `literals` into `target`
/// extending `initial` exists.
pub fn exists_homomorphism(
    literals: &[Literal],
    target: &Interpretation,
    initial: &Substitution,
) -> bool {
    for_each_homomorphism(literals, target, initial, &mut |_| ControlFlow::Break(()))
}

/// Enumerates the homomorphisms from a conjunction of *atoms* (all positive)
/// into the positive part of `target`, extending `initial`.
///
/// Returns `true` if the enumeration was stopped early by the visitor.
pub fn for_each_atom_homomorphism<F>(
    atoms: &[Atom],
    target: &Interpretation,
    initial: &Substitution,
    visit: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    let positives: Vec<&Atom> = atoms.iter().collect();
    Engine::new(&positives, &[], target, initial)
        .run_full(visit)
        .is_break()
}

/// [`for_each_atom_homomorphism`] restricted to homomorphisms that use at
/// least one atom inserted at or after `watermark`.
pub fn for_each_atom_homomorphism_delta<F>(
    atoms: &[Atom],
    target: &Interpretation,
    initial: &Substitution,
    watermark: usize,
    visit: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    let positives: Vec<&Atom> = atoms.iter().collect();
    Engine::new(&positives, &[], target, initial)
        .run_delta(watermark, visit)
        .is_break()
}

/// All homomorphisms from a conjunction of *atoms* (all positive) into the
/// positive part of `target`, extending `initial`.  Used for checking head
/// satisfaction and for chase trigger matching.
pub fn all_atom_homomorphisms(
    atoms: &[Atom],
    target: &Interpretation,
    initial: &Substitution,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    for_each_atom_homomorphism(atoms, target, initial, &mut |s| {
        out.push(s.clone());
        ControlFlow::Continue(())
    });
    out
}

/// All delta homomorphisms (at least one positive atom maps into the
/// watermark suffix) from a conjunction of atoms.
pub fn all_atom_homomorphisms_delta(
    atoms: &[Atom],
    target: &Interpretation,
    initial: &Substitution,
    watermark: usize,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    for_each_atom_homomorphism_delta(atoms, target, initial, watermark, &mut |s| {
        out.push(s.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Returns `true` if the conjunction of atoms maps into `target⁺` by some
/// extension of `initial`.
pub fn exists_atom_homomorphism(
    atoms: &[Atom],
    target: &Interpretation,
    initial: &Substitution,
) -> bool {
    let positives: Vec<&Atom> = atoms.iter().collect();
    Engine::new(&positives, &[], target, initial)
        .run_full(&mut |_| ControlFlow::Break(()))
        .is_break()
}

fn split_literals(literals: &[Literal]) -> (Vec<&Atom>, Vec<&Atom>) {
    let mut positives = Vec::new();
    let mut negatives = Vec::new();
    for literal in literals {
        if literal.is_positive() {
            positives.push(literal.atom());
        } else {
            negatives.push(literal.atom());
        }
    }
    (positives, negatives)
}

/// One compiled argument position: either a fixed term or a slot reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ArgSpec {
    /// A term that is fixed for the whole call: a constant, a null, or the
    /// (already resolved) image of a variable under the initial substitution.
    Fixed(Term),
    /// A variable, resolved to a dense slot id shared across the conjunction.
    Slot(usize),
}

/// A compiled atom pattern.
#[derive(Clone, Debug)]
struct Pattern {
    predicate: Symbol,
    args: Vec<ArgSpec>,
}

/// Which part of the arena a positive pattern may match (delta matching).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DeltaClass {
    /// The whole arena.
    All,
    /// Only atoms with id `< watermark`.
    Old,
    /// Only atoms with id `>= watermark`.
    Delta,
}

/// The compiled conjunction plus all per-call matching state.
struct Engine<'a> {
    target: &'a Interpretation,
    initial: &'a Substitution,
    positives: Vec<Pattern>,
    negatives: Vec<Pattern>,
    /// Join order: `order[step]` is an index into `positives`.
    order: Vec<usize>,
    /// Delta restriction per positive pattern (parallel to `positives`).
    classes: Vec<DeltaClass>,
    watermark: usize,
    /// Slot id → key term (the resolved variable the slot stands for).
    slot_keys: Vec<Term>,
    /// Slot id → current binding.
    slots: Vec<Option<Term>>,
    /// Slot id → `true` if the binding comes from the initial substitution
    /// (never undone, not re-emitted into the result substitutions).
    preset: Vec<bool>,
    /// Undo log of slot ids bound since the enclosing choice point.
    trail: Vec<usize>,
    /// `dom(I)` materialised once per call, used only for unsafe variables.
    domain: Vec<Term>,
    /// Scratch buffer for grounding negative literals.
    scratch: Vec<Term>,
}

impl<'a> Engine<'a> {
    fn new(
        positives: &[&Atom],
        negatives: &[&Atom],
        target: &'a Interpretation,
        initial: &'a Substitution,
    ) -> Engine<'a> {
        let mut slot_keys: Vec<Term> = Vec::new();
        let mut slots: Vec<Option<Term>> = Vec::new();
        let mut preset: Vec<bool> = Vec::new();
        let mut compile = |atom: &Atom| -> Pattern {
            let args = atom
                .args()
                .iter()
                .map(|t| {
                    // Resolve against the initial substitution once.  Ground
                    // results (and nulls, which the matcher never binds) are
                    // fixed; variables become slots.
                    let resolved = initial.apply_term(t);
                    if !resolved.is_variable() {
                        return ArgSpec::Fixed(resolved);
                    }
                    let slot = match slot_keys.iter().position(|k| *k == resolved) {
                        Some(slot) => slot,
                        None => {
                            slot_keys.push(resolved);
                            let value = initial.apply_term(&resolved);
                            preset.push(value != resolved);
                            slots.push(if value != resolved { Some(value) } else { None });
                            slot_keys.len() - 1
                        }
                    };
                    ArgSpec::Slot(slot)
                })
                .collect();
            Pattern {
                predicate: atom.predicate(),
                args,
            }
        };
        let positives: Vec<Pattern> = positives.iter().map(|a| compile(a)).collect();
        let negatives: Vec<Pattern> = negatives.iter().map(|a| compile(a)).collect();

        // Unsafe variables (slots occurring only in negative literals) need
        // dom(I); materialise it once, not per negative-literal candidate.
        let positive_slots: BTreeSet<usize> = positives
            .iter()
            .flat_map(|p| p.args.iter())
            .filter_map(|a| match a {
                ArgSpec::Slot(s) => Some(*s),
                ArgSpec::Fixed(_) => None,
            })
            .collect();
        let needs_domain = negatives
            .iter()
            .flat_map(|p| p.args.iter())
            .any(|a| match a {
                ArgSpec::Slot(s) => !positive_slots.contains(s) && !preset[*s],
                ArgSpec::Fixed(_) => false,
            });
        let domain: Vec<Term> = if needs_domain {
            target.domain_iter().copied().collect()
        } else {
            Vec::new()
        };

        let classes = vec![DeltaClass::All; positives.len()];
        let order = plan(&positives, &preset, target);
        Engine {
            target,
            initial,
            positives,
            negatives,
            order,
            classes,
            watermark: 0,
            slot_keys,
            slots,
            preset,
            trail: Vec::new(),
            domain,
            scratch: Vec::new(),
        }
    }

    /// Runs the unrestricted enumeration.
    fn run_full<F>(&mut self, visit: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        self.match_positives(0, visit)
    }

    /// Runs the delta-restricted enumeration: each homomorphism must map at
    /// least one positive atom into the watermark suffix of the arena.
    ///
    /// Homomorphisms are partitioned by the *first* positive literal (in
    /// order of appearance) mapped to a delta atom: for pivot `k`, literals
    /// before `k` are restricted to old atoms, literal `k` to delta atoms,
    /// and later literals are unrestricted.  Each delta homomorphism is
    /// therefore enumerated exactly once.
    ///
    /// To keep each pivot's cost proportional to the delta, the join is
    /// re-planned per pivot with the delta-restricted literal first: its
    /// candidate list is the (typically tiny) watermark suffix, and the
    /// bindings it makes turn the remaining literals into index probes.
    /// Pivots whose predicate gained no atoms since the watermark are
    /// skipped outright.
    fn run_delta<F>(&mut self, watermark: usize, visit: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        if watermark == 0 {
            return self.run_full(visit);
        }
        if watermark >= self.target.len() {
            return ControlFlow::Continue(());
        }
        self.watermark = watermark;
        for pivot in 0..self.positives.len() {
            let pivot_predicate = self.positives[pivot].predicate;
            let delta_ids = self.restrict(
                self.target.ids_with_predicate(pivot_predicate),
                DeltaClass::Delta,
            );
            if delta_ids.is_empty() {
                continue;
            }
            for i in 0..self.positives.len() {
                self.classes[i] = match i.cmp(&pivot) {
                    std::cmp::Ordering::Less => DeltaClass::Old,
                    std::cmp::Ordering::Equal => DeltaClass::Delta,
                    std::cmp::Ordering::Greater => DeltaClass::All,
                };
            }
            self.order = plan_first(&self.positives, &self.preset, self.target, pivot);
            self.match_positives(0, visit)?;
        }
        ControlFlow::Continue(())
    }

    /// The candidate id list for one positive pattern under the current
    /// bindings: the smallest index probe over its bound positions, or the
    /// predicate's id list when no position is bound.  Returns `None` when
    /// the pattern cannot match at all (a fixed argument is non-ground).
    fn candidates(&self, pattern: &Pattern) -> Option<&'a [AtomId]> {
        let mut best: Option<&[AtomId]> = None;
        for (position, spec) in pattern.args.iter().enumerate() {
            let bound = match spec {
                ArgSpec::Fixed(t) => Some(*t),
                ArgSpec::Slot(s) => self.slots[*s],
            };
            let Some(term) = bound else { continue };
            if !term.is_ground() {
                // A variable chained to another variable by the initial
                // substitution: no ground atom can ever match it.
                return None;
            }
            let probed = self.target.probe(pattern.predicate, position as u32, term);
            if best.is_none_or(|b| probed.len() < b.len()) {
                best = Some(probed);
            }
        }
        Some(best.unwrap_or_else(|| self.target.ids_with_predicate(pattern.predicate)))
    }

    /// Restricts an ascending id list to the pattern's delta class.
    fn restrict<'b>(&self, ids: &'b [AtomId], class: DeltaClass) -> &'b [AtomId] {
        match class {
            DeltaClass::All => ids,
            DeltaClass::Old => {
                let cut = ids.partition_point(|id| id.index() < self.watermark);
                &ids[..cut]
            }
            DeltaClass::Delta => {
                let cut = ids.partition_point(|id| id.index() < self.watermark);
                &ids[cut..]
            }
        }
    }

    fn match_positives<F>(&mut self, step: usize, visit: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        if step == self.order.len() {
            return self.check_negatives(0, visit);
        }
        let pattern_index = self.order[step];
        let Some(ids) = self.candidates(&self.positives[pattern_index]) else {
            return ControlFlow::Continue(());
        };
        let ids = self.restrict(ids, self.classes[pattern_index]);
        let arity = self.positives[pattern_index].args.len();
        for &id in ids {
            let candidate = self.target.atom(id);
            if candidate.arity() != arity {
                continue;
            }
            let mark = self.trail.len();
            let mut ok = true;
            for (position, value) in candidate.args().iter().enumerate() {
                // `candidate` borrows from the arena, never from `self`'s
                // mutable state, so reading args while binding slots is fine.
                let matched = match self.positives[pattern_index].args[position] {
                    ArgSpec::Fixed(t) => t == *value,
                    ArgSpec::Slot(s) => match self.slots[s] {
                        Some(existing) => existing == *value,
                        None => {
                            self.slots[s] = Some(*value);
                            self.trail.push(s);
                            true
                        }
                    },
                };
                if !matched {
                    ok = false;
                    break;
                }
            }
            if ok {
                self.match_positives(step + 1, visit)?;
            }
            self.undo_to(mark);
        }
        ControlFlow::Continue(())
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let slot = self.trail.pop().expect("trail underflow");
            self.slots[slot] = None;
        }
    }

    /// Grounds the negative pattern at `index` into the scratch buffer;
    /// returns the list of still-unbound slots (distinct, in argument order).
    fn ground_negative(&mut self, index: usize) -> Vec<usize> {
        let pattern = &self.negatives[index];
        self.scratch.clear();
        let mut unbound = Vec::new();
        for spec in &pattern.args {
            match spec {
                ArgSpec::Fixed(t) => self.scratch.push(*t),
                ArgSpec::Slot(s) => match self.slots[*s] {
                    Some(v) => self.scratch.push(v),
                    None => {
                        if !unbound.contains(s) {
                            unbound.push(*s);
                        }
                        self.scratch.push(self.slot_keys[*s]);
                    }
                },
            }
        }
        unbound
    }

    fn check_negatives<F>(&mut self, index: usize, visit: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        if index == self.negatives.len() {
            return visit(&self.result_substitution());
        }
        let unbound = self.ground_negative(index);
        if unbound.is_empty() {
            let predicate = self.negatives[index].predicate;
            if self
                .target
                .satisfies_negation_of_parts(predicate, &self.scratch)
            {
                return self.check_negatives(index + 1, visit);
            }
            return ControlFlow::Continue(());
        }
        // Unsafe conjunction: enumerate the unbound slots over dom(I).
        self.enumerate_unbound(&unbound, 0, index, visit)
    }

    fn enumerate_unbound<F>(
        &mut self,
        vars: &[usize],
        vidx: usize,
        index: usize,
        visit: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        if vidx == vars.len() {
            self.ground_negative(index);
            let predicate = self.negatives[index].predicate;
            if self
                .target
                .satisfies_negation_of_parts(predicate, &self.scratch)
            {
                return self.check_negatives(index + 1, visit);
            }
            return ControlFlow::Continue(());
        }
        for value_index in 0..self.domain.len() {
            let value = self.domain[value_index];
            let slot = vars[vidx];
            self.slots[slot] = Some(value);
            self.trail.push(slot);
            let mark = self.trail.len() - 1;
            self.enumerate_unbound(vars, vidx + 1, index, visit)?;
            self.undo_to(mark);
        }
        ControlFlow::Continue(())
    }

    /// The substitution handed to the visitor: the initial substitution
    /// extended with every non-preset slot binding.
    fn result_substitution(&self) -> Substitution {
        let mut out = self.initial.clone();
        for (slot, value) in self.slots.iter().enumerate() {
            if self.preset[slot] {
                continue;
            }
            if let Some(value) = value {
                out.bind(self.slot_keys[slot], *value);
            }
        }
        out
    }
}

/// Greedy join planner: repeatedly picks the remaining positive pattern with
/// the smallest estimated candidate count, preferring patterns whose
/// positions are already bound (fixed terms or slots bound by earlier
/// patterns).  The estimate combines index probe cardinalities for fixed
/// ground arguments with the predicate cardinality discounted by the number
/// of bound positions.
fn plan(positives: &[Pattern], preset: &[bool], target: &Interpretation) -> Vec<usize> {
    plan_impl(positives, preset, target, None)
}

/// [`plan`] with `first` forced to the front of the join order.  Used by
/// delta matching: the pivot literal's candidate list is the watermark
/// suffix, so matching it first keeps the whole pivot enumeration
/// proportional to the delta instead of the full instance.
fn plan_first(
    positives: &[Pattern],
    preset: &[bool],
    target: &Interpretation,
    first: usize,
) -> Vec<usize> {
    plan_impl(positives, preset, target, Some(first))
}

fn plan_impl(
    positives: &[Pattern],
    preset: &[bool],
    target: &Interpretation,
    first: Option<usize>,
) -> Vec<usize> {
    let mut bound: BTreeSet<usize> = BTreeSet::new();
    for (slot, &is_preset) in preset.iter().enumerate() {
        if is_preset {
            bound.insert(slot);
        }
    }
    let mut remaining: Vec<usize> = (0..positives.len())
        .filter(|index| Some(*index) != first)
        .collect();
    let mut order = Vec::with_capacity(positives.len());
    if let Some(first) = first {
        for spec in &positives[first].args {
            if let ArgSpec::Slot(s) = spec {
                bound.insert(*s);
            }
        }
        order.push(first);
    }
    while !remaining.is_empty() {
        let mut best_at = 0;
        let mut best_score = usize::MAX;
        for (at, &index) in remaining.iter().enumerate() {
            let pattern = &positives[index];
            let mut estimate = target.predicate_count(pattern.predicate);
            let mut bound_positions = 0usize;
            for (position, spec) in pattern.args.iter().enumerate() {
                match spec {
                    ArgSpec::Fixed(t) => {
                        bound_positions += 1;
                        if t.is_ground() {
                            let count = target.probe_count(pattern.predicate, position as u32, *t);
                            estimate = estimate.min(count);
                        } else {
                            estimate = 0;
                        }
                    }
                    ArgSpec::Slot(s) => {
                        if bound.contains(s) {
                            bound_positions += 1;
                        }
                    }
                }
            }
            let score = estimate / (1 + bound_positions);
            if score < best_score {
                best_score = score;
                best_at = at;
            }
        }
        let chosen = remaining.remove(best_at);
        for spec in &positives[chosen].args {
            if let ArgSpec::Slot(s) = spec {
                bound.insert(*s);
            }
        }
        order.push(chosen);
    }
    order
}

pub mod reference {
    //! The naive scan-and-clone matcher, retained as an executable
    //! specification of the homomorphism semantics.
    //!
    //! This is the implementation the indexed join engine replaced: it scans
    //! every atom of a literal's predicate and clones the substitution at
    //! every choice point.  It is kept for the equivalence property tests
    //! (`tests/property_based.rs`) and as the baseline of the matcher
    //! benchmark; production code must never call it.

    use super::*;

    /// Naive counterpart of [`super::for_each_homomorphism`].
    pub fn for_each_homomorphism<F>(
        literals: &[Literal],
        target: &Interpretation,
        initial: &Substitution,
        visit: &mut F,
    ) -> bool
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        let (positives, negatives) = split_literals(literals);
        let mut subst = initial.clone();
        match_positives(&positives, 0, target, &mut subst, &negatives, visit).is_break()
    }

    /// Naive counterpart of [`super::all_homomorphisms`].
    pub fn all_homomorphisms(
        literals: &[Literal],
        target: &Interpretation,
        initial: &Substitution,
    ) -> Vec<Substitution> {
        let mut out = Vec::new();
        for_each_homomorphism(literals, target, initial, &mut |s| {
            out.push(s.clone());
            ControlFlow::Continue(())
        });
        out
    }

    fn match_positives<F>(
        atoms: &[&Atom],
        idx: usize,
        target: &Interpretation,
        subst: &mut Substitution,
        negatives: &[&Atom],
        visit: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        if idx == atoms.len() {
            return check_negatives(negatives, 0, target, subst, visit);
        }
        let pattern = atoms[idx];
        for candidate in target.atoms_with_predicate(pattern.predicate()) {
            if candidate.arity() != pattern.arity() {
                continue;
            }
            let saved = subst.clone();
            let mut ok = true;
            for (pat, val) in pattern.args().iter().zip(candidate.args()) {
                let current = subst.apply_term(pat);
                let bindable = match current {
                    Term::Var(_) => subst.try_bind(current, *val),
                    ground => ground == *val,
                };
                if !bindable {
                    ok = false;
                    break;
                }
            }
            if ok && match_positives(atoms, idx + 1, target, subst, negatives, visit).is_break() {
                return ControlFlow::Break(());
            }
            *subst = saved;
        }
        ControlFlow::Continue(())
    }

    fn check_negatives<F>(
        negatives: &[&Atom],
        idx: usize,
        target: &Interpretation,
        subst: &mut Substitution,
        visit: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        if idx == negatives.len() {
            return visit(subst);
        }
        let grounded = subst.apply_atom(negatives[idx]);
        let unbound: BTreeSet<Term> = grounded
            .args()
            .iter()
            .filter(|t| t.is_variable())
            .copied()
            .collect();
        if unbound.is_empty() {
            if target.satisfies_negation_of(&grounded) {
                return check_negatives(negatives, idx + 1, target, subst, visit);
            }
            return ControlFlow::Continue(());
        }
        // Unsafe conjunction: enumerate the unbound variables over dom(I).
        let domain: Vec<Term> = target.domain().into_iter().collect();
        enumerate_unbound(
            &unbound.into_iter().collect::<Vec<_>>(),
            0,
            &domain,
            negatives,
            idx,
            target,
            subst,
            visit,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_unbound<F>(
        vars: &[Term],
        vidx: usize,
        domain: &[Term],
        negatives: &[&Atom],
        idx: usize,
        target: &Interpretation,
        subst: &mut Substitution,
        visit: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        if vidx == vars.len() {
            let grounded = subst.apply_atom(negatives[idx]);
            if target.satisfies_negation_of(&grounded) {
                return check_negatives(negatives, idx + 1, target, subst, visit);
            }
            return ControlFlow::Continue(());
        }
        for value in domain {
            let saved = subst.clone();
            if subst.try_bind(vars[vidx], *value)
                && enumerate_unbound(vars, vidx + 1, domain, negatives, idx, target, subst, visit)
                    .is_break()
            {
                return ControlFlow::Break(());
            }
            *subst = saved;
        }
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, cst, neg, pos, var};

    fn interp() -> Interpretation {
        Interpretation::from_atoms(vec![
            atom("edge", vec![cst("a"), cst("b")]),
            atom("edge", vec![cst("b"), cst("c")]),
            atom("edge", vec![cst("c"), cst("a")]),
            atom("red", vec![cst("a")]),
        ])
    }

    #[test]
    fn single_atom_matching() {
        let hs = all_homomorphisms(
            &[pos("edge", vec![var("X"), var("Y")])],
            &interp(),
            &Substitution::new(),
        );
        assert_eq!(hs.len(), 3);
    }

    #[test]
    fn join_matching_chains_edges() {
        let body = vec![
            pos("edge", vec![var("X"), var("Y")]),
            pos("edge", vec![var("Y"), var("Z")]),
        ];
        let hs = all_homomorphisms(&body, &interp(), &Substitution::new());
        // a->b->c, b->c->a, c->a->b
        assert_eq!(hs.len(), 3);
        for h in &hs {
            assert_ne!(h.apply_term(&var("X")), h.apply_term(&var("Y")));
        }
    }

    #[test]
    fn constants_in_patterns_restrict_matches() {
        let body = vec![pos("edge", vec![cst("a"), var("Y")])];
        let hs = all_homomorphisms(&body, &interp(), &Substitution::new());
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].apply_term(&var("Y")), cst("b"));
    }

    #[test]
    fn negative_literals_filter_matches() {
        // Vertices with an outgoing edge that are not red.
        let body = vec![
            pos("edge", vec![var("X"), var("Y")]),
            neg("red", vec![var("X")]),
        ];
        let hs = all_homomorphisms(&body, &interp(), &Substitution::new());
        assert_eq!(hs.len(), 2);
        for h in &hs {
            assert_ne!(h.apply_term(&var("X")), cst("a"));
        }
    }

    #[test]
    fn negative_literal_with_term_outside_domain_fails() {
        let body = vec![
            pos("red", vec![var("X")]),
            neg("edge", vec![var("X"), cst("zzz")]),
        ];
        // zzz is not in the domain, so ¬edge(a, zzz) is not in I.
        assert!(all_homomorphisms(&body, &interp(), &Substitution::new()).is_empty());
    }

    #[test]
    fn initial_substitution_is_respected() {
        let mut init = Substitution::new();
        init.bind(var("X"), cst("b"));
        let hs = all_homomorphisms(&[pos("edge", vec![var("X"), var("Y")])], &interp(), &init);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].apply_term(&var("Y")), cst("c"));
        assert_eq!(hs[0].apply_term(&var("X")), cst("b"));
    }

    #[test]
    fn exists_homomorphism_short_circuits() {
        assert!(exists_homomorphism(
            &[pos("edge", vec![var("X"), var("X")])],
            &Interpretation::from_atoms(vec![atom("edge", vec![cst("a"), cst("a")])]),
            &Substitution::new()
        ));
        assert!(!exists_homomorphism(
            &[pos("edge", vec![var("X"), var("X")])],
            &interp(),
            &Substitution::new()
        ));
    }

    #[test]
    fn empty_conjunction_has_exactly_the_initial_homomorphism() {
        let hs = all_homomorphisms(&[], &interp(), &Substitution::new());
        assert_eq!(hs.len(), 1);
        assert!(hs[0].is_empty());
    }

    #[test]
    fn unsafe_negative_variables_enumerate_the_domain() {
        // X occurs only negatively: all domain elements that are not red.
        let body = vec![neg("red", vec![var("X")])];
        let hs = all_homomorphisms(&body, &interp(), &Substitution::new());
        let values: BTreeSet<Term> = hs.iter().map(|h| h.apply_term(&var("X"))).collect();
        assert_eq!(values, BTreeSet::from([cst("b"), cst("c")]));
    }

    #[test]
    fn atom_homomorphisms_ignore_polarity_helpers() {
        let atoms = vec![atom("edge", vec![var("X"), var("Y")])];
        assert_eq!(
            all_atom_homomorphisms(&atoms, &interp(), &Substitution::new()).len(),
            3
        );
        assert!(exists_atom_homomorphism(
            &atoms,
            &interp(),
            &Substitution::new()
        ));
    }

    #[test]
    fn zero_ary_atoms_match_when_present() {
        let i = Interpretation::from_atoms(vec![atom("saturate", vec![])]);
        assert!(exists_homomorphism(
            &[pos("saturate", vec![])],
            &i,
            &Substitution::new()
        ));
        assert!(!exists_homomorphism(
            &[neg("saturate", vec![])],
            &i,
            &Substitution::new()
        ));
        let empty = Interpretation::new();
        assert!(empty.satisfies_negation_of(&atom("saturate", vec![])));
        assert!(exists_homomorphism(
            &[neg("saturate", vec![])],
            &empty,
            &Substitution::new()
        ));
    }

    #[test]
    fn repeated_variables_within_one_atom_constrain_matches() {
        let i = Interpretation::from_atoms(vec![
            atom("p", vec![cst("a"), cst("a"), cst("b")]),
            atom("p", vec![cst("a"), cst("b"), cst("b")]),
        ]);
        let hs = all_homomorphisms(
            &[pos("p", vec![var("X"), var("X"), var("Y")])],
            &i,
            &Substitution::new(),
        );
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].apply_term(&var("X")), cst("a"));
    }

    #[test]
    fn mixed_arities_under_one_predicate_do_not_confuse_the_index() {
        let i = Interpretation::from_atoms(vec![
            atom("p", vec![cst("a")]),
            atom("p", vec![cst("a"), cst("b")]),
        ]);
        let unary = all_homomorphisms(&[pos("p", vec![var("X")])], &i, &Substitution::new());
        assert_eq!(unary.len(), 1);
        let binary = all_homomorphisms(
            &[pos("p", vec![var("X"), var("Y")])],
            &i,
            &Substitution::new(),
        );
        assert_eq!(binary.len(), 1);
    }

    #[test]
    fn delta_matching_partitions_homomorphisms_by_watermark() {
        let mut i = Interpretation::from_atoms(vec![
            atom("edge", vec![cst("a"), cst("b")]),
            atom("edge", vec![cst("b"), cst("c")]),
        ]);
        let body = vec![
            pos("edge", vec![var("X"), var("Y")]),
            pos("edge", vec![var("Y"), var("Z")]),
        ];
        let before = all_homomorphisms(&body, &i, &Substitution::new());
        assert_eq!(before.len(), 1); // a->b->c
        let watermark = i.len();
        i.insert(atom("edge", vec![cst("c"), cst("a")]));
        let mut delta = Vec::new();
        for_each_homomorphism_delta(&body, &i, &Substitution::new(), watermark, &mut |s| {
            delta.push(s.clone());
            ControlFlow::Continue(())
        });
        // New homomorphisms: b->c->a and c->a->b, but not the old a->b->c.
        assert_eq!(delta.len(), 2);
        let full = all_homomorphisms(&body, &i, &Substitution::new());
        assert_eq!(full.len(), before.len() + delta.len());
        for s in &delta {
            assert!(full.contains(s));
            assert!(!before.contains(s));
        }
    }

    #[test]
    fn delta_with_zero_watermark_is_full_matching() {
        let i = interp();
        let body = vec![pos("edge", vec![var("X"), var("Y")])];
        let mut out = Vec::new();
        for_each_homomorphism_delta(&body, &i, &Substitution::new(), 0, &mut |s| {
            out.push(s.clone());
            ControlFlow::Continue(())
        });
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn delta_with_current_watermark_yields_nothing() {
        let i = interp();
        let body = vec![pos("edge", vec![var("X"), var("Y")])];
        assert!(!for_each_homomorphism_delta(
            &body,
            &i,
            &Substitution::new(),
            i.len(),
            &mut |_| ControlFlow::Break(())
        ));
        // And a conjunction without positive literals has no delta
        // homomorphisms either once the watermark is positive.
        assert!(!for_each_homomorphism_delta(
            &[neg("red", vec![var("X")])],
            &i,
            &Substitution::new(),
            1,
            &mut |_| ControlFlow::Break(())
        ));
    }

    #[test]
    fn reference_matcher_agrees_on_mixed_conjunctions() {
        let i = interp();
        let cases: Vec<Vec<Literal>> = vec![
            vec![pos("edge", vec![var("X"), var("Y")])],
            vec![
                pos("edge", vec![var("X"), var("Y")]),
                pos("edge", vec![var("Y"), var("Z")]),
            ],
            vec![
                pos("edge", vec![var("X"), var("Y")]),
                neg("red", vec![var("X")]),
            ],
            vec![neg("red", vec![var("X")])],
            vec![
                pos("red", vec![var("X")]),
                neg("edge", vec![var("X"), var("Z")]),
            ],
        ];
        for body in cases {
            let mut fast: Vec<String> = all_homomorphisms(&body, &i, &Substitution::new())
                .iter()
                .map(|s| s.to_string())
                .collect();
            let mut naive: Vec<String> =
                reference::all_homomorphisms(&body, &i, &Substitution::new())
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
            fast.sort();
            naive.sort();
            assert_eq!(fast, naive, "mismatch on {body:?}");
        }
    }

    #[test]
    fn planner_prefers_selective_constants() {
        // A large star relation plus a tiny selective one: the planner must
        // start from the selective pattern regardless of written order.
        let mut i = Interpretation::new();
        for k in 0..50 {
            i.insert(atom("edge", vec![cst("hub"), cst(&format!("v{k}"))]));
        }
        i.insert(atom("mark", vec![cst("v7")]));
        let body = vec![
            pos("edge", vec![var("X"), var("Y")]),
            pos("mark", vec![var("Y")]),
        ];
        let hs = all_homomorphisms(&body, &i, &Substitution::new());
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].apply_term(&var("Y")), cst("v7"));
    }
}
