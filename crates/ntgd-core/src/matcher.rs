//! Homomorphism enumeration (conjunctive matching).
//!
//! The central evaluation primitive of the whole system: enumerate the
//! homomorphisms from a conjunction of literals into an interpretation.  A
//! homomorphism `h` satisfies
//!
//! * `h(a) ∈ I⁺` for every positive literal `a` of the conjunction, and
//! * `¬h(a) ∈ I` for every negative literal `¬a`, i.e. every term of `h(a)`
//!   belongs to `dom(I)` and `h(a) ∉ I⁺`.
//!
//! # The compile / cache / execute lifecycle
//!
//! Matching is split into a **compile-once** phase and a **per-call execute**
//! phase, so fixpoint loops (the chase, grounding, consequence operators) pay
//! the compilation and planning cost once per rule instead of once per round:
//!
//! 1. **Compilation** ([`CompiledConjunction::compile`],
//!    [`CompiledConjunction::compile_atoms`]) — every variable of the
//!    conjunction becomes a dense *slot* id, every ground term a *fixed*
//!    argument.  Compilation also runs the greedy selectivity planner to fix
//!    a join order for full enumeration **and one pre-planned order per delta
//!    pivot**, so delta rounds do zero planning.  Statistics come from the
//!    `stats` interpretation passed at compile time (typically the instance
//!    the plan will first run against); executing against a grown instance
//!    stays correct because candidate selection per step still probes the
//!    live indexes.
//! 2. **Caching** — [`CompiledRuleSet`](crate::ruleset::CompiledRuleSet) /
//!    [`CompiledDisjunctiveRuleSet`](crate::ruleset::CompiledDisjunctiveRuleSet)
//!    hold the compiled form of every rule of a program, keyed by rule index:
//!    body, positive body, head, and per-head-atom (or per-disjunct)
//!    conjunctions.  Consumers build the set once per run and reuse it every
//!    round; [`plan_compile_count`] exposes a process-wide counter so tests
//!    can assert that hot loops never recompile, even when executions run on
//!    [`crate::parallel`] pool workers.
//! 3. **Execution** ([`CompiledConjunction::for_each`],
//!    [`CompiledConjunction::for_each_delta`] and the `all*`/`exists`
//!    convenience wrappers) — candidates come from the most selective index
//!    probe of [`Interpretation`] (never from a full scan of a predicate's
//!    atoms when a bound position is available).  Bindings go through a
//!    trail/undo log, so backtracking costs O(bindings undone) instead of a
//!    substitution clone per candidate.
//! 4. **Negative literals** are verified at the leaves.  Variables that occur
//!    *only* in negative literals (unsafe conjunctions) are enumerated over
//!    `dom(I)`, which is materialised once per execution; safe rules and
//!    queries never hit that path.
//!
//! A cached plan is compiled against the *empty* substitution; at execution
//! time an arbitrary `initial` substitution is applied by pre-binding the
//! slots whose variable it maps to a ground term.  This is how one compiled
//! head plan serves every trigger-activity check: the trigger homomorphism
//! (always ground-valued) becomes a set of slot presets.  In the rare case
//! where `initial` maps a conjunction variable to a *non-ground* term (a
//! variable-to-variable chain), execution transparently falls back to a
//! one-shot recompile that bakes the substitution in, preserving the exact
//! semantics of the pre-cache engine.
//!
//! # `SlotBinding` borrowing rules
//!
//! Visitors receive a [`SlotBinding`] — a borrowed view of the matcher's
//! slot vector — instead of an owned [`Substitution`].  The view is valid
//! **only for the duration of the visit callback**: the engine reuses and
//! unwinds the underlying slots as soon as the callback returns, which is
//! exactly why enumeration costs no allocation per result.  Consumers may
//! look up variables ([`SlotBinding::value_of`]), apply the binding to terms
//! and atoms ([`SlotBinding::apply_term`], [`SlotBinding::apply_atom`]), and
//! must call [`SlotBinding::to_substitution`] to materialise an owned
//! substitution when the result is stored beyond the callback (chase
//! triggers, existential head instantiation, answer tuples).
//!
//! # Delta (semi-naive) matching
//!
//! [`for_each_homomorphism_delta`] and [`CompiledConjunction::for_each_delta`]
//! enumerate exactly the homomorphisms that use at least one atom inserted at
//! or after a *watermark* (an earlier value of [`Interpretation::len`]).
//! Fixpoint loops — the chase, the possibly-true closure of the grounder, the
//! immediate-consequence operator — use it to match each round only against
//! newly derived atoms instead of rematching the whole instance.
//!
//! The free functions ([`for_each_homomorphism`], [`all_homomorphisms`], …)
//! are retained as thin wrappers that compile a one-shot plan per call; hot
//! paths should compile once and reuse.  The naive scan-and-clone matcher the
//! engine replaced is retained in [`mod@reference`] as an executable
//! specification: property tests assert that both return identical
//! homomorphism sets, and the matcher benchmark measures the speedup against
//! it.

use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::atom::{Atom, Literal};
use crate::interpretation::{AtomId, IdProbe, Interpretation};
use crate::substitution::Substitution;
use crate::symbol::Symbol;
use crate::term::Term;

/// Number of conjunction compilations performed by the whole process; see
/// [`plan_compile_count`].
static PLAN_COMPILES: AtomicU64 = AtomicU64::new(0);

/// The number of conjunction compilations (plan constructions) performed by
/// the process so far.
///
/// Tests use the difference between two readings to assert that a chase or
/// grounding run compiles each rule's plan exactly once: after building the
/// rule set, the counter must not move while the fixpoint loop runs.  The
/// counter is process-wide (an atomic, not a thread-local) so compilations
/// performed on [`crate::parallel`] pool workers are visible to the thread
/// that owns the fixpoint — a thread-local counter would silently miss them
/// and vacuously pass the compile-exactly-once tests at thread counts above
/// one.  Tests sharing the process (cargo runs them concurrently) therefore
/// retry their measured window until no unrelated compilation interleaves;
/// a genuine recompile in the measured code fails every attempt.
pub fn plan_compile_count() -> u64 {
    PLAN_COMPILES.load(Ordering::Relaxed)
}

/// Enumerates every homomorphism from `literals` into `target` extending
/// `initial`, invoking `visit` for each; stops early if `visit` breaks.
///
/// Compiles a one-shot plan per call; hot loops should compile a
/// [`CompiledConjunction`] once and call [`CompiledConjunction::for_each`].
///
/// Returns `true` if the enumeration was stopped early by the visitor.
pub fn for_each_homomorphism<F>(
    literals: &[Literal],
    target: &Interpretation,
    initial: &Substitution,
    visit: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    let (positives, negatives) = split_literals(literals);
    let plan =
        CompiledConjunction::compile_with_initial(&positives, &negatives, initial, target, false);
    plan.for_each(target, initial, &mut |b| visit(&b.to_substitution()))
}

/// Enumerates every homomorphism from `literals` into `target` extending
/// `initial` that maps **at least one positive literal to an atom inserted at
/// or after `watermark`** (semi-naive delta matching).
///
/// With `watermark == 0` this is exactly [`for_each_homomorphism`].  With a
/// positive watermark a conjunction without positive literals has no delta
/// homomorphisms (it consumes no instance atoms).
///
/// Returns `true` if the enumeration was stopped early by the visitor.
pub fn for_each_homomorphism_delta<F>(
    literals: &[Literal],
    target: &Interpretation,
    initial: &Substitution,
    watermark: usize,
    visit: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    let (positives, negatives) = split_literals(literals);
    let plan =
        CompiledConjunction::compile_with_initial(&positives, &negatives, initial, target, true);
    plan.for_each_delta(target, initial, watermark, &mut |b| {
        visit(&b.to_substitution())
    })
}

/// All homomorphisms from `literals` into `target` extending `initial`.
pub fn all_homomorphisms(
    literals: &[Literal],
    target: &Interpretation,
    initial: &Substitution,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    for_each_homomorphism(literals, target, initial, &mut |s| {
        out.push(s.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Returns `true` if at least one homomorphism from `literals` into `target`
/// extending `initial` exists.
pub fn exists_homomorphism(
    literals: &[Literal],
    target: &Interpretation,
    initial: &Substitution,
) -> bool {
    let (positives, negatives) = split_literals(literals);
    let plan =
        CompiledConjunction::compile_with_initial(&positives, &negatives, initial, target, false);
    plan.for_each(target, initial, &mut |_| ControlFlow::Break(()))
}

/// Enumerates the homomorphisms from a conjunction of *atoms* (all positive)
/// into the positive part of `target`, extending `initial`.
///
/// Returns `true` if the enumeration was stopped early by the visitor.
pub fn for_each_atom_homomorphism<F>(
    atoms: &[Atom],
    target: &Interpretation,
    initial: &Substitution,
    visit: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    let positives: Vec<&Atom> = atoms.iter().collect();
    let plan = CompiledConjunction::compile_with_initial(&positives, &[], initial, target, false);
    plan.for_each(target, initial, &mut |b| visit(&b.to_substitution()))
}

/// [`for_each_atom_homomorphism`] restricted to homomorphisms that use at
/// least one atom inserted at or after `watermark`.
pub fn for_each_atom_homomorphism_delta<F>(
    atoms: &[Atom],
    target: &Interpretation,
    initial: &Substitution,
    watermark: usize,
    visit: &mut F,
) -> bool
where
    F: FnMut(&Substitution) -> ControlFlow<()>,
{
    let positives: Vec<&Atom> = atoms.iter().collect();
    let plan = CompiledConjunction::compile_with_initial(&positives, &[], initial, target, true);
    plan.for_each_delta(target, initial, watermark, &mut |b| {
        visit(&b.to_substitution())
    })
}

/// All homomorphisms from a conjunction of *atoms* (all positive) into the
/// positive part of `target`, extending `initial`.  Used for checking head
/// satisfaction and for chase trigger matching.
pub fn all_atom_homomorphisms(
    atoms: &[Atom],
    target: &Interpretation,
    initial: &Substitution,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    for_each_atom_homomorphism(atoms, target, initial, &mut |s| {
        out.push(s.clone());
        ControlFlow::Continue(())
    });
    out
}

/// All delta homomorphisms (at least one positive atom maps into the
/// watermark suffix) from a conjunction of atoms.
pub fn all_atom_homomorphisms_delta(
    atoms: &[Atom],
    target: &Interpretation,
    initial: &Substitution,
    watermark: usize,
) -> Vec<Substitution> {
    let mut out = Vec::new();
    for_each_atom_homomorphism_delta(atoms, target, initial, watermark, &mut |s| {
        out.push(s.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Returns `true` if the conjunction of atoms maps into `target⁺` by some
/// extension of `initial`.
pub fn exists_atom_homomorphism(
    atoms: &[Atom],
    target: &Interpretation,
    initial: &Substitution,
) -> bool {
    let positives: Vec<&Atom> = atoms.iter().collect();
    let plan = CompiledConjunction::compile_with_initial(&positives, &[], initial, target, false);
    plan.for_each(target, initial, &mut |_| ControlFlow::Break(()))
}

fn split_literals(literals: &[Literal]) -> (Vec<&Atom>, Vec<&Atom>) {
    let mut positives = Vec::new();
    let mut negatives = Vec::new();
    for literal in literals {
        if literal.is_positive() {
            positives.push(literal.atom());
        } else {
            negatives.push(literal.atom());
        }
    }
    (positives, negatives)
}

/// One compiled argument position: either a fixed term or a slot reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ArgSpec {
    /// A term that is fixed for the whole call: a constant, a null, or the
    /// (already resolved) image of a variable under the initial substitution.
    Fixed(Term),
    /// A variable, resolved to a dense slot id shared across the conjunction.
    Slot(usize),
}

/// A compiled atom pattern.
#[derive(Clone, Debug)]
struct Pattern {
    predicate: Symbol,
    args: Vec<ArgSpec>,
}

/// Which part of the arena a positive pattern may match (delta matching).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DeltaClass {
    /// The whole arena.
    All,
    /// Only atoms with id `< watermark`.
    Old,
    /// Only atoms with id `>= watermark`.
    Delta,
}

/// A borrowed view of the matcher's slot vector, handed to visitors instead
/// of an owned [`Substitution`].
///
/// The view is only valid inside the visit callback (the engine rewinds the
/// slots as soon as the callback returns); call [`SlotBinding::to_substitution`]
/// to keep a result.  See the module docs for the full borrowing rules.
pub struct SlotBinding<'e> {
    keys: &'e [Term],
    slots: &'e [Option<Term>],
    preset: &'e [bool],
    initial: &'e Substitution,
}

impl SlotBinding<'_> {
    /// The value bound to a conjunction variable, if any.
    pub fn value_of(&self, variable: &Term) -> Option<Term> {
        let slot = self.keys.iter().position(|k| k == variable)?;
        self.slots[slot]
    }

    /// Applies the binding (slot values first, then the initial
    /// substitution) to a term.
    pub fn apply_term(&self, t: &Term) -> Term {
        if t.is_constant() {
            return *t;
        }
        if let Some(slot) = self.keys.iter().position(|k| k == t) {
            if let Some(value) = self.slots[slot] {
                return value;
            }
        }
        self.initial.apply_term(t)
    }

    /// Applies the binding to an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom::new(
            atom.predicate(),
            atom.args().iter().map(|t| self.apply_term(t)).collect(),
        )
    }

    /// Materialises an owned substitution: the initial substitution extended
    /// with every non-preset slot binding.  Call only when the result is
    /// stored beyond the visit callback.
    pub fn to_substitution(&self) -> Substitution {
        let mut out = self.initial.clone();
        for (slot, value) in self.slots.iter().enumerate() {
            if self.preset[slot] {
                continue;
            }
            if let Some(value) = value {
                out.bind(self.keys[slot], *value);
            }
        }
        out
    }
}

/// A conjunction compiled once into its slot/plan form, reusable across any
/// number of executions (and target instances).
///
/// Holds the compiled patterns, the dense slot table, the full-enumeration
/// join order and one pre-planned order per delta pivot, so neither full nor
/// delta executions ever plan again.  See the module docs for the
/// compile/cache/execute lifecycle.
#[derive(Clone, Debug)]
pub struct CompiledConjunction {
    positives: Vec<Pattern>,
    negatives: Vec<Pattern>,
    /// Slot id → key term (the resolved variable the slot stands for).
    slot_keys: Vec<Term>,
    /// Slot id → value baked in by a compile-time initial substitution
    /// (one-shot plans only; cached plans have no baked presets).
    compile_preset: Vec<Option<Term>>,
    /// `true` if the plan was compiled against a specific initial
    /// substitution (one-shot wrappers); execution then skips runtime slot
    /// presetting and trusts `compile_preset`.
    bakes_initial: bool,
    /// Join order for full enumeration: `full_order[step]` indexes `positives`.
    full_order: Vec<usize>,
    /// Pre-planned join order per delta pivot (pivot literal first).
    delta_orders: Vec<Vec<usize>>,
    /// Whether some slot occurs only in negative literals (unsafe
    /// conjunction), requiring `dom(I)` at execution time.
    needs_domain: bool,
}

// `Send + Sync` audit: a compiled plan is fully owned data (patterns, slot
// table, join orders) and all per-execution state lives in `Exec` on the
// executing thread's stack, so one cached plan may be executed concurrently
// by any number of `crate::parallel` pool workers.  The assertion turns that
// audit into a compile-time fact.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledConjunction>();
    assert_send_sync::<SlotBinding<'_>>();
};

impl CompiledConjunction {
    /// Compiles a conjunction of literals (no initial substitution baked in;
    /// execution accepts any ground-valued initial substitution).
    ///
    /// `stats` provides the cardinalities used by the join planner —
    /// typically the instance the plan will first run against.
    pub fn compile(literals: &[Literal], stats: &Interpretation) -> CompiledConjunction {
        let (positives, negatives) = split_literals(literals);
        Self::compile_impl(
            &positives,
            &negatives,
            &Substitution::default(),
            stats,
            false,
            true,
        )
    }

    /// Compiles a conjunction of atoms (all positive).
    pub fn compile_atoms(atoms: &[Atom], stats: &Interpretation) -> CompiledConjunction {
        let positives: Vec<&Atom> = atoms.iter().collect();
        Self::compile_impl(
            &positives,
            &[],
            &Substitution::default(),
            stats,
            false,
            true,
        )
    }

    /// One-shot compilation with `initial` baked into the patterns (the
    /// pre-cache engine's semantics, kept for the free-function wrappers and
    /// for the non-ground-initial fallback).  `with_delta` controls whether
    /// per-pivot delta orders are planned: full-only one-shot calls skip
    /// them, so they pay for exactly one planner run like the old engine.
    fn compile_with_initial(
        positives: &[&Atom],
        negatives: &[&Atom],
        initial: &Substitution,
        stats: &Interpretation,
        with_delta: bool,
    ) -> CompiledConjunction {
        Self::compile_impl(positives, negatives, initial, stats, true, with_delta)
    }

    fn compile_impl(
        positives: &[&Atom],
        negatives: &[&Atom],
        initial: &Substitution,
        stats: &Interpretation,
        bakes_initial: bool,
        with_delta: bool,
    ) -> CompiledConjunction {
        PLAN_COMPILES.fetch_add(1, Ordering::Relaxed);
        let mut slot_keys: Vec<Term> = Vec::new();
        let mut compile_preset: Vec<Option<Term>> = Vec::new();
        let mut compile = |atom: &Atom| -> Pattern {
            let args = atom
                .args()
                .iter()
                .map(|t| {
                    // Resolve against the compile-time initial substitution
                    // once.  Ground results (and nulls, which the matcher
                    // never binds) are fixed; variables become slots.
                    let resolved = initial.apply_term(t);
                    if !resolved.is_variable() {
                        return ArgSpec::Fixed(resolved);
                    }
                    let slot = match slot_keys.iter().position(|k| *k == resolved) {
                        Some(slot) => slot,
                        None => {
                            slot_keys.push(resolved);
                            let value = initial.apply_term(&resolved);
                            compile_preset.push(if value != resolved { Some(value) } else { None });
                            slot_keys.len() - 1
                        }
                    };
                    ArgSpec::Slot(slot)
                })
                .collect();
            Pattern {
                predicate: atom.predicate(),
                args,
            }
        };
        let positives: Vec<Pattern> = positives.iter().map(|a| compile(a)).collect();
        let negatives: Vec<Pattern> = negatives.iter().map(|a| compile(a)).collect();

        // Unsafe variables (slots occurring only in negative literals) need
        // dom(I) at execution time.
        let positive_slots: BTreeSet<usize> = positives
            .iter()
            .flat_map(|p| p.args.iter())
            .filter_map(|a| match a {
                ArgSpec::Slot(s) => Some(*s),
                ArgSpec::Fixed(_) => None,
            })
            .collect();
        let needs_domain = negatives
            .iter()
            .flat_map(|p| p.args.iter())
            .any(|a| match a {
                ArgSpec::Slot(s) => !positive_slots.contains(s) && compile_preset[*s].is_none(),
                ArgSpec::Fixed(_) => false,
            });

        let preset: Vec<bool> = compile_preset.iter().map(Option::is_some).collect();
        let full_order = plan_impl(&positives, &preset, stats, None);
        let delta_orders: Vec<Vec<usize>> = if with_delta {
            (0..positives.len())
                .map(|pivot| plan_impl(&positives, &preset, stats, Some(pivot)))
                .collect()
        } else {
            Vec::new()
        };
        CompiledConjunction {
            positives,
            negatives,
            slot_keys,
            compile_preset,
            bakes_initial,
            full_order,
            delta_orders,
            needs_domain,
        }
    }

    /// Number of positive patterns (delta pivots).
    pub fn positive_count(&self) -> usize {
        self.positives.len()
    }

    /// Enumerates every homomorphism extending `initial`, invoking `visit`
    /// with a borrowed [`SlotBinding`] per result; stops early if `visit`
    /// breaks.  Returns `true` if stopped early.
    pub fn for_each<F>(
        &self,
        target: &Interpretation,
        initial: &Substitution,
        visit: &mut F,
    ) -> bool
    where
        F: FnMut(&SlotBinding<'_>) -> ControlFlow<()>,
    {
        self.run(target, initial, None, visit).is_break()
    }

    /// Delta variant of [`CompiledConjunction::for_each`]: only
    /// homomorphisms mapping at least one positive literal to an atom
    /// inserted at or after `watermark`.
    pub fn for_each_delta<F>(
        &self,
        target: &Interpretation,
        initial: &Substitution,
        watermark: usize,
        visit: &mut F,
    ) -> bool
    where
        F: FnMut(&SlotBinding<'_>) -> ControlFlow<()>,
    {
        self.run(target, initial, Some((watermark, None)), visit)
            .is_break()
    }

    /// The slice of [`CompiledConjunction::for_each_delta`] attributed to a
    /// single delta `pivot`: homomorphisms whose **first** positive literal
    /// mapped into the watermark suffix is literal `pivot`.
    ///
    /// Summed over `0..positive_count()` pivots this enumerates exactly the
    /// delta homomorphisms, each once; the [`crate::parallel`] layer uses it
    /// to split one rule's delta round into independent `(rule, pivot)` work
    /// items.  With `watermark == 0` the full enumeration is attributed to
    /// pivot `0` (other pivots yield nothing), keeping the sum property.
    ///
    /// Returns `true` if the enumeration was stopped early by the visitor.
    pub fn for_each_delta_pivot<F>(
        &self,
        target: &Interpretation,
        initial: &Substitution,
        watermark: usize,
        pivot: usize,
        visit: &mut F,
    ) -> bool
    where
        F: FnMut(&SlotBinding<'_>) -> ControlFlow<()>,
    {
        self.run(target, initial, Some((watermark, Some(pivot))), visit)
            .is_break()
    }

    /// All homomorphisms, materialised.
    pub fn all(&self, target: &Interpretation, initial: &Substitution) -> Vec<Substitution> {
        let mut out = Vec::new();
        self.for_each(target, initial, &mut |b| {
            out.push(b.to_substitution());
            ControlFlow::Continue(())
        });
        out
    }

    /// All delta homomorphisms, materialised.
    pub fn all_delta(
        &self,
        target: &Interpretation,
        initial: &Substitution,
        watermark: usize,
    ) -> Vec<Substitution> {
        let mut out = Vec::new();
        self.for_each_delta(target, initial, watermark, &mut |b| {
            out.push(b.to_substitution());
            ControlFlow::Continue(())
        });
        out
    }

    /// Returns `true` if at least one homomorphism extending `initial`
    /// exists.
    pub fn exists(&self, target: &Interpretation, initial: &Substitution) -> bool {
        self.for_each(target, initial, &mut |_| ControlFlow::Break(()))
    }

    fn run<F>(
        &self,
        target: &Interpretation,
        initial: &Substitution,
        watermark: Option<(usize, Option<usize>)>,
        visit: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&SlotBinding<'_>) -> ControlFlow<()>,
    {
        match Exec::new(self, target, initial) {
            Some(mut exec) => match watermark {
                None => exec.run_full(visit),
                Some((w, None)) => exec.run_delta(w, visit),
                Some((w, Some(pivot))) => exec.run_delta_pivot(w, pivot, visit),
            },
            None => {
                // `initial` maps some conjunction variable to a non-ground
                // term (a variable-to-variable chain): rebuild a one-shot
                // plan with the substitution baked in, which reproduces the
                // pre-cache engine's semantics exactly.  Cached plans are
                // compiled without an initial substitution, so their
                // patterns are a lossless rendering of the source atoms.
                let positive_atoms = reconstruct_atoms(&self.positives, &self.slot_keys);
                let negative_atoms = reconstruct_atoms(&self.negatives, &self.slot_keys);
                let positives: Vec<&Atom> = positive_atoms.iter().collect();
                let negatives: Vec<&Atom> = negative_atoms.iter().collect();
                let plan = CompiledConjunction::compile_with_initial(
                    &positives,
                    &negatives,
                    initial,
                    target,
                    watermark.is_some(),
                );
                let mut exec = Exec::new(&plan, target, initial)
                    .expect("plans with a baked initial substitution always execute");
                match watermark {
                    None => exec.run_full(visit),
                    Some((w, None)) => exec.run_delta(w, visit),
                    Some((w, Some(pivot))) => exec.run_delta_pivot(w, pivot, visit),
                }
            }
        }
    }
}

/// Renders compiled patterns back into atoms (slot keys restore the
/// variables).  Lossless for plans compiled without an initial substitution.
fn reconstruct_atoms(patterns: &[Pattern], slot_keys: &[Term]) -> Vec<Atom> {
    patterns
        .iter()
        .map(|p| {
            Atom::new(
                p.predicate,
                p.args
                    .iter()
                    .map(|a| match a {
                        ArgSpec::Fixed(t) => *t,
                        ArgSpec::Slot(s) => slot_keys[*s],
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Restricts an ascending id probe to a delta class at `watermark`.
fn restrict(ids: IdProbe<'_>, class: DeltaClass, watermark: usize) -> IdProbe<'_> {
    match class {
        DeltaClass::All => ids,
        DeltaClass::Old => ids.below(watermark),
        DeltaClass::Delta => ids.since(watermark),
    }
}

/// Per-execution state over a cached plan: slot values, trail, and the
/// (borrowed) join order currently in effect.
struct Exec<'c, 'i> {
    plan: &'c CompiledConjunction,
    target: &'i Interpretation,
    initial: &'i Substitution,
    /// Join order in effect: `order[step]` indexes `plan.positives`.
    order: &'c [usize],
    /// Delta pivot in effect (`None` for full enumeration).
    pivot: Option<usize>,
    watermark: usize,
    /// Slot id → current binding.
    slots: Vec<Option<Term>>,
    /// Slot id → `true` if the binding comes from the initial substitution
    /// (never undone, not re-emitted into materialised substitutions).
    preset: Vec<bool>,
    /// Undo log of slot ids bound since the enclosing choice point.
    trail: Vec<usize>,
    /// `dom(I)` materialised once per execution, only for unsafe variables.
    domain: Vec<Term>,
    /// Scratch buffer for grounding negative literals.
    scratch: Vec<Term>,
}

impl<'c, 'i> Exec<'c, 'i> {
    /// Sets up an execution, pre-binding slots from `initial`.  Returns
    /// `None` when `initial` maps a slot variable to a non-ground term and
    /// the plan has no baked initial (the caller then falls back to a
    /// one-shot recompile).
    fn new(
        plan: &'c CompiledConjunction,
        target: &'i Interpretation,
        initial: &'i Substitution,
    ) -> Option<Exec<'c, 'i>> {
        let slot_count = plan.slot_keys.len();
        let mut slots: Vec<Option<Term>> = vec![None; slot_count];
        let mut preset: Vec<bool> = vec![false; slot_count];
        if plan.bakes_initial {
            for (slot, value) in plan.compile_preset.iter().enumerate() {
                if let Some(value) = value {
                    slots[slot] = Some(*value);
                    preset[slot] = true;
                }
            }
        } else if !initial.is_empty() {
            for (slot, key) in plan.slot_keys.iter().enumerate() {
                let value = initial.apply_term(key);
                if value != *key {
                    if !value.is_ground() {
                        return None;
                    }
                    slots[slot] = Some(value);
                    preset[slot] = true;
                }
            }
        }
        let domain: Vec<Term> = if plan.needs_domain {
            target.domain_iter().copied().collect()
        } else {
            Vec::new()
        };
        Some(Exec {
            plan,
            target,
            initial,
            order: &[],
            pivot: None,
            watermark: 0,
            slots,
            preset,
            trail: Vec::new(),
            domain,
            scratch: Vec::new(),
        })
    }

    /// Runs the unrestricted enumeration over the precomputed full order.
    fn run_full<F>(&mut self, visit: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&SlotBinding<'_>) -> ControlFlow<()>,
    {
        self.order = &self.plan.full_order;
        self.pivot = None;
        self.match_positives(0, visit)
    }

    /// Runs the delta-restricted enumeration: each homomorphism must map at
    /// least one positive atom into the watermark suffix of the arena.
    ///
    /// Homomorphisms are partitioned by the *first* positive literal (in
    /// order of appearance) mapped to a delta atom: for pivot `k`, literals
    /// before `k` are restricted to old atoms, literal `k` to delta atoms,
    /// and later literals are unrestricted.  Each delta homomorphism is
    /// therefore enumerated exactly once.
    ///
    /// Each pivot runs over its precomputed plan (pivot literal first): the
    /// pivot's candidate list is the (typically tiny) watermark suffix, and
    /// the bindings it makes turn the remaining literals into index probes.
    /// Pivots whose predicate gained no atoms since the watermark are
    /// skipped outright — delta rounds perform zero planning.
    fn run_delta<F>(&mut self, watermark: usize, visit: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&SlotBinding<'_>) -> ControlFlow<()>,
    {
        if watermark == 0 {
            return self.run_full(visit);
        }
        if watermark >= self.target.len() {
            return ControlFlow::Continue(());
        }
        self.watermark = watermark;
        for pivot in 0..self.plan.positives.len() {
            self.run_pivot(pivot, visit)?;
        }
        ControlFlow::Continue(())
    }

    /// Runs a single pivot of the delta enumeration (the
    /// [`CompiledConjunction::for_each_delta_pivot`] entry point): the
    /// partition of the delta homomorphism space whose first
    /// suffix-mapped positive literal is `pivot`.
    fn run_delta_pivot<F>(
        &mut self,
        watermark: usize,
        pivot: usize,
        visit: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&SlotBinding<'_>) -> ControlFlow<()>,
    {
        if watermark == 0 {
            // The whole (unpartitioned) enumeration is attributed to pivot
            // 0 so that the union over pivots equals `run_delta`.
            return if pivot == 0 {
                self.run_full(visit)
            } else {
                ControlFlow::Continue(())
            };
        }
        if watermark >= self.target.len() || pivot >= self.plan.positives.len() {
            return ControlFlow::Continue(());
        }
        self.watermark = watermark;
        self.run_pivot(pivot, visit)
    }

    /// Shared pivot body of [`Exec::run_delta`] / [`Exec::run_delta_pivot`];
    /// assumes `self.watermark` is set and in range.
    fn run_pivot<F>(&mut self, pivot: usize, visit: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&SlotBinding<'_>) -> ControlFlow<()>,
    {
        let pivot_predicate = self.plan.positives[pivot].predicate;
        let delta_ids = restrict(
            self.target.ids_with_predicate(pivot_predicate),
            DeltaClass::Delta,
            self.watermark,
        );
        if delta_ids.is_empty() {
            return ControlFlow::Continue(());
        }
        self.pivot = Some(pivot);
        // Plans compiled without delta orders (full-only one-shot
        // wrappers) fall back to the full order; the per-pattern delta
        // classes keep the enumeration correct either way.
        self.order = self
            .plan
            .delta_orders
            .get(pivot)
            .unwrap_or(&self.plan.full_order);
        self.match_positives(0, visit)
    }

    /// The delta class of one positive pattern under the current pivot.
    fn class_of(&self, pattern_index: usize) -> DeltaClass {
        match self.pivot {
            None => DeltaClass::All,
            Some(pivot) => match pattern_index.cmp(&pivot) {
                std::cmp::Ordering::Less => DeltaClass::Old,
                std::cmp::Ordering::Equal => DeltaClass::Delta,
                std::cmp::Ordering::Greater => DeltaClass::All,
            },
        }
    }

    /// The candidate id list for one positive pattern under the current
    /// bindings: the smallest index probe over its bound positions, or the
    /// predicate's id list when no position is bound.  Returns `None` when
    /// the pattern cannot match at all (a fixed argument is non-ground).
    fn candidates(&self, pattern: &Pattern) -> Option<IdProbe<'i>> {
        let mut best: Option<IdProbe<'i>> = None;
        for (position, spec) in pattern.args.iter().enumerate() {
            let bound = match spec {
                ArgSpec::Fixed(t) => Some(*t),
                ArgSpec::Slot(s) => self.slots[*s],
            };
            let Some(term) = bound else { continue };
            if !term.is_ground() {
                // A variable chained to another variable by the initial
                // substitution: no ground atom can ever match it.
                return None;
            }
            let probed = self.target.probe(pattern.predicate, position as u32, term);
            if best.is_none_or(|b| probed.len() < b.len()) {
                best = Some(probed);
            }
        }
        Some(best.unwrap_or_else(|| self.target.ids_with_predicate(pattern.predicate)))
    }

    fn match_positives<F>(&mut self, step: usize, visit: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&SlotBinding<'_>) -> ControlFlow<()>,
    {
        if step == self.order.len() {
            return self.check_negatives(0, visit);
        }
        let pattern_index = self.order[step];
        let Some(ids) = self.candidates(&self.plan.positives[pattern_index]) else {
            return ControlFlow::Continue(());
        };
        let ids = restrict(ids, self.class_of(pattern_index), self.watermark);
        let arity = self.plan.positives[pattern_index].args.len();
        // Two back-to-back slice loops (base segment, then overlay) keep
        // this innermost loop free of the chain iterator's per-element
        // branch; the concatenation is ascending, so the enumeration order
        // is identical to a single merged list.
        let (base_ids, overlay_ids) = ids.slices();
        for &id in base_ids {
            self.match_candidate(step, pattern_index, arity, id, visit)?;
        }
        for &id in overlay_ids {
            self.match_candidate(step, pattern_index, arity, id, visit)?;
        }
        ControlFlow::Continue(())
    }

    /// Tries one candidate atom against the pattern at `pattern_index`,
    /// recursing into the next join level on a match.  The innermost body of
    /// [`Exec::match_positives`].
    #[inline]
    fn match_candidate<F>(
        &mut self,
        step: usize,
        pattern_index: usize,
        arity: usize,
        id: AtomId,
        visit: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&SlotBinding<'_>) -> ControlFlow<()>,
    {
        let candidate = self.target.atom(id);
        if candidate.arity() != arity {
            return ControlFlow::Continue(());
        }
        let mark = self.trail.len();
        let mut ok = true;
        for (position, value) in candidate.args().iter().enumerate() {
            // `candidate` borrows from the arena, never from `self`'s
            // mutable state, so reading args while binding slots is fine.
            let matched = match self.plan.positives[pattern_index].args[position] {
                ArgSpec::Fixed(t) => t == *value,
                ArgSpec::Slot(s) => match self.slots[s] {
                    Some(existing) => existing == *value,
                    None => {
                        self.slots[s] = Some(*value);
                        self.trail.push(s);
                        true
                    }
                },
            };
            if !matched {
                ok = false;
                break;
            }
        }
        if ok {
            self.match_positives(step + 1, visit)?;
        }
        self.undo_to(mark);
        ControlFlow::Continue(())
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let slot = self.trail.pop().expect("trail underflow");
            self.slots[slot] = None;
        }
    }

    /// Grounds the negative pattern at `index` into the scratch buffer;
    /// returns the list of still-unbound slots (distinct, in argument order).
    fn ground_negative(&mut self, index: usize) -> Vec<usize> {
        let pattern = &self.plan.negatives[index];
        self.scratch.clear();
        let mut unbound = Vec::new();
        for spec in &pattern.args {
            match spec {
                ArgSpec::Fixed(t) => self.scratch.push(*t),
                ArgSpec::Slot(s) => match self.slots[*s] {
                    Some(v) => self.scratch.push(v),
                    None => {
                        if !unbound.contains(s) {
                            unbound.push(*s);
                        }
                        self.scratch.push(self.plan.slot_keys[*s]);
                    }
                },
            }
        }
        unbound
    }

    fn check_negatives<F>(&mut self, index: usize, visit: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&SlotBinding<'_>) -> ControlFlow<()>,
    {
        if index == self.plan.negatives.len() {
            let binding = SlotBinding {
                keys: &self.plan.slot_keys,
                slots: &self.slots,
                preset: &self.preset,
                initial: self.initial,
            };
            return visit(&binding);
        }
        let unbound = self.ground_negative(index);
        if unbound.is_empty() {
            let predicate = self.plan.negatives[index].predicate;
            if self
                .target
                .satisfies_negation_of_parts(predicate, &self.scratch)
            {
                return self.check_negatives(index + 1, visit);
            }
            return ControlFlow::Continue(());
        }
        // Unsafe conjunction: enumerate the unbound slots over dom(I).
        self.enumerate_unbound(&unbound, 0, index, visit)
    }

    fn enumerate_unbound<F>(
        &mut self,
        vars: &[usize],
        vidx: usize,
        index: usize,
        visit: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&SlotBinding<'_>) -> ControlFlow<()>,
    {
        if vidx == vars.len() {
            self.ground_negative(index);
            let predicate = self.plan.negatives[index].predicate;
            if self
                .target
                .satisfies_negation_of_parts(predicate, &self.scratch)
            {
                return self.check_negatives(index + 1, visit);
            }
            return ControlFlow::Continue(());
        }
        for value_index in 0..self.domain.len() {
            let value = self.domain[value_index];
            let slot = vars[vidx];
            self.slots[slot] = Some(value);
            self.trail.push(slot);
            let mark = self.trail.len() - 1;
            self.enumerate_unbound(vars, vidx + 1, index, visit)?;
            self.undo_to(mark);
        }
        ControlFlow::Continue(())
    }
}

fn plan_impl(
    positives: &[Pattern],
    preset: &[bool],
    target: &Interpretation,
    first: Option<usize>,
) -> Vec<usize> {
    let mut bound: BTreeSet<usize> = BTreeSet::new();
    for (slot, &is_preset) in preset.iter().enumerate() {
        if is_preset {
            bound.insert(slot);
        }
    }
    let mut remaining: Vec<usize> = (0..positives.len())
        .filter(|index| Some(*index) != first)
        .collect();
    let mut order = Vec::with_capacity(positives.len());
    if let Some(first) = first {
        for spec in &positives[first].args {
            if let ArgSpec::Slot(s) = spec {
                bound.insert(*s);
            }
        }
        order.push(first);
    }
    while !remaining.is_empty() {
        let mut best_at = 0;
        let mut best_score = usize::MAX;
        for (at, &index) in remaining.iter().enumerate() {
            let pattern = &positives[index];
            // A zero cardinality is clamped to 1: when planning against a
            // statistics snapshot that predates the instance (cached plans
            // compiled before the chase/closure derives anything), zero means
            // "unknown", and clamping lets the bound-position discount drive
            // the order (a structural, connectivity-first heuristic) instead
            // of degenerating every score to 0 and keeping the written order.
            let mut estimate = target.predicate_count(pattern.predicate).max(1);
            let mut bound_positions = 0usize;
            for (position, spec) in pattern.args.iter().enumerate() {
                match spec {
                    ArgSpec::Fixed(t) => {
                        bound_positions += 1;
                        if t.is_ground() {
                            let count = target.probe_count(pattern.predicate, position as u32, *t);
                            estimate = estimate.min(count);
                        } else {
                            estimate = 0;
                        }
                    }
                    ArgSpec::Slot(s) => {
                        if bound.contains(s) {
                            bound_positions += 1;
                        }
                    }
                }
            }
            // Scaled before the integer division so small estimates still
            // discriminate by how many positions are bound.
            let score = estimate.saturating_mul(16) / (1 + bound_positions);
            if score < best_score {
                best_score = score;
                best_at = at;
            }
        }
        let chosen = remaining.remove(best_at);
        for spec in &positives[chosen].args {
            if let ArgSpec::Slot(s) = spec {
                bound.insert(*s);
            }
        }
        order.push(chosen);
    }
    order
}

pub mod reference {
    //! The naive scan-and-clone matcher, retained as an executable
    //! specification of the homomorphism semantics.
    //!
    //! This is the implementation the indexed join engine replaced: it scans
    //! every atom of a literal's predicate and clones the substitution at
    //! every choice point.  It is kept for the equivalence property tests
    //! (`tests/property_based.rs`) and as the baseline of the matcher
    //! benchmark; production code must never call it.

    use super::*;

    /// Naive counterpart of [`super::for_each_homomorphism`].
    pub fn for_each_homomorphism<F>(
        literals: &[Literal],
        target: &Interpretation,
        initial: &Substitution,
        visit: &mut F,
    ) -> bool
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        let (positives, negatives) = split_literals(literals);
        let mut subst = initial.clone();
        match_positives(&positives, 0, target, &mut subst, &negatives, visit).is_break()
    }

    /// Naive counterpart of [`super::all_homomorphisms`].
    pub fn all_homomorphisms(
        literals: &[Literal],
        target: &Interpretation,
        initial: &Substitution,
    ) -> Vec<Substitution> {
        let mut out = Vec::new();
        for_each_homomorphism(literals, target, initial, &mut |s| {
            out.push(s.clone());
            ControlFlow::Continue(())
        });
        out
    }

    fn match_positives<F>(
        atoms: &[&Atom],
        idx: usize,
        target: &Interpretation,
        subst: &mut Substitution,
        negatives: &[&Atom],
        visit: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        if idx == atoms.len() {
            return check_negatives(negatives, 0, target, subst, visit);
        }
        let pattern = atoms[idx];
        for candidate in target.atoms_with_predicate(pattern.predicate()) {
            if candidate.arity() != pattern.arity() {
                continue;
            }
            let saved = subst.clone();
            let mut ok = true;
            for (pat, val) in pattern.args().iter().zip(candidate.args()) {
                let current = subst.apply_term(pat);
                let bindable = match current {
                    Term::Var(_) => subst.try_bind(current, *val),
                    ground => ground == *val,
                };
                if !bindable {
                    ok = false;
                    break;
                }
            }
            if ok && match_positives(atoms, idx + 1, target, subst, negatives, visit).is_break() {
                return ControlFlow::Break(());
            }
            *subst = saved;
        }
        ControlFlow::Continue(())
    }

    fn check_negatives<F>(
        negatives: &[&Atom],
        idx: usize,
        target: &Interpretation,
        subst: &mut Substitution,
        visit: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        if idx == negatives.len() {
            return visit(subst);
        }
        let grounded = subst.apply_atom(negatives[idx]);
        let unbound: BTreeSet<Term> = grounded
            .args()
            .iter()
            .filter(|t| t.is_variable())
            .copied()
            .collect();
        if unbound.is_empty() {
            if target.satisfies_negation_of(&grounded) {
                return check_negatives(negatives, idx + 1, target, subst, visit);
            }
            return ControlFlow::Continue(());
        }
        // Unsafe conjunction: enumerate the unbound variables over dom(I).
        let domain: Vec<Term> = target.domain().into_iter().collect();
        enumerate_unbound(
            &unbound.into_iter().collect::<Vec<_>>(),
            0,
            &domain,
            negatives,
            idx,
            target,
            subst,
            visit,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_unbound<F>(
        vars: &[Term],
        vidx: usize,
        domain: &[Term],
        negatives: &[&Atom],
        idx: usize,
        target: &Interpretation,
        subst: &mut Substitution,
        visit: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&Substitution) -> ControlFlow<()>,
    {
        if vidx == vars.len() {
            let grounded = subst.apply_atom(negatives[idx]);
            if target.satisfies_negation_of(&grounded) {
                return check_negatives(negatives, idx + 1, target, subst, visit);
            }
            return ControlFlow::Continue(());
        }
        for value in domain {
            let saved = subst.clone();
            if subst.try_bind(vars[vidx], *value)
                && enumerate_unbound(vars, vidx + 1, domain, negatives, idx, target, subst, visit)
                    .is_break()
            {
                return ControlFlow::Break(());
            }
            *subst = saved;
        }
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, cst, neg, pos, var};

    fn interp() -> Interpretation {
        Interpretation::from_atoms(vec![
            atom("edge", vec![cst("a"), cst("b")]),
            atom("edge", vec![cst("b"), cst("c")]),
            atom("edge", vec![cst("c"), cst("a")]),
            atom("red", vec![cst("a")]),
        ])
    }

    #[test]
    fn single_atom_matching() {
        let hs = all_homomorphisms(
            &[pos("edge", vec![var("X"), var("Y")])],
            &interp(),
            &Substitution::new(),
        );
        assert_eq!(hs.len(), 3);
    }

    #[test]
    fn join_matching_chains_edges() {
        let body = vec![
            pos("edge", vec![var("X"), var("Y")]),
            pos("edge", vec![var("Y"), var("Z")]),
        ];
        let hs = all_homomorphisms(&body, &interp(), &Substitution::new());
        // a->b->c, b->c->a, c->a->b
        assert_eq!(hs.len(), 3);
        for h in &hs {
            assert_ne!(h.apply_term(&var("X")), h.apply_term(&var("Y")));
        }
    }

    #[test]
    fn constants_in_patterns_restrict_matches() {
        let body = vec![pos("edge", vec![cst("a"), var("Y")])];
        let hs = all_homomorphisms(&body, &interp(), &Substitution::new());
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].apply_term(&var("Y")), cst("b"));
    }

    #[test]
    fn negative_literals_filter_matches() {
        // Vertices with an outgoing edge that are not red.
        let body = vec![
            pos("edge", vec![var("X"), var("Y")]),
            neg("red", vec![var("X")]),
        ];
        let hs = all_homomorphisms(&body, &interp(), &Substitution::new());
        assert_eq!(hs.len(), 2);
        for h in &hs {
            assert_ne!(h.apply_term(&var("X")), cst("a"));
        }
    }

    #[test]
    fn negative_literal_with_term_outside_domain_fails() {
        let body = vec![
            pos("red", vec![var("X")]),
            neg("edge", vec![var("X"), cst("zzz")]),
        ];
        // zzz is not in the domain, so ¬edge(a, zzz) is not in I.
        assert!(all_homomorphisms(&body, &interp(), &Substitution::new()).is_empty());
    }

    #[test]
    fn initial_substitution_is_respected() {
        let mut init = Substitution::new();
        init.bind(var("X"), cst("b"));
        let hs = all_homomorphisms(&[pos("edge", vec![var("X"), var("Y")])], &interp(), &init);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].apply_term(&var("Y")), cst("c"));
        assert_eq!(hs[0].apply_term(&var("X")), cst("b"));
    }

    #[test]
    fn exists_homomorphism_short_circuits() {
        assert!(exists_homomorphism(
            &[pos("edge", vec![var("X"), var("X")])],
            &Interpretation::from_atoms(vec![atom("edge", vec![cst("a"), cst("a")])]),
            &Substitution::new()
        ));
        assert!(!exists_homomorphism(
            &[pos("edge", vec![var("X"), var("X")])],
            &interp(),
            &Substitution::new()
        ));
    }

    #[test]
    fn empty_conjunction_has_exactly_the_initial_homomorphism() {
        let hs = all_homomorphisms(&[], &interp(), &Substitution::new());
        assert_eq!(hs.len(), 1);
        assert!(hs[0].is_empty());
    }

    #[test]
    fn unsafe_negative_variables_enumerate_the_domain() {
        // X occurs only negatively: all domain elements that are not red.
        let body = vec![neg("red", vec![var("X")])];
        let hs = all_homomorphisms(&body, &interp(), &Substitution::new());
        let values: BTreeSet<Term> = hs.iter().map(|h| h.apply_term(&var("X"))).collect();
        assert_eq!(values, BTreeSet::from([cst("b"), cst("c")]));
    }

    #[test]
    fn atom_homomorphisms_ignore_polarity_helpers() {
        let atoms = vec![atom("edge", vec![var("X"), var("Y")])];
        assert_eq!(
            all_atom_homomorphisms(&atoms, &interp(), &Substitution::new()).len(),
            3
        );
        assert!(exists_atom_homomorphism(
            &atoms,
            &interp(),
            &Substitution::new()
        ));
    }

    #[test]
    fn zero_ary_atoms_match_when_present() {
        let i = Interpretation::from_atoms(vec![atom("saturate", vec![])]);
        assert!(exists_homomorphism(
            &[pos("saturate", vec![])],
            &i,
            &Substitution::new()
        ));
        assert!(!exists_homomorphism(
            &[neg("saturate", vec![])],
            &i,
            &Substitution::new()
        ));
        let empty = Interpretation::new();
        assert!(empty.satisfies_negation_of(&atom("saturate", vec![])));
        assert!(exists_homomorphism(
            &[neg("saturate", vec![])],
            &empty,
            &Substitution::new()
        ));
    }

    #[test]
    fn repeated_variables_within_one_atom_constrain_matches() {
        let i = Interpretation::from_atoms(vec![
            atom("p", vec![cst("a"), cst("a"), cst("b")]),
            atom("p", vec![cst("a"), cst("b"), cst("b")]),
        ]);
        let hs = all_homomorphisms(
            &[pos("p", vec![var("X"), var("X"), var("Y")])],
            &i,
            &Substitution::new(),
        );
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].apply_term(&var("X")), cst("a"));
    }

    #[test]
    fn mixed_arities_under_one_predicate_do_not_confuse_the_index() {
        let i = Interpretation::from_atoms(vec![
            atom("p", vec![cst("a")]),
            atom("p", vec![cst("a"), cst("b")]),
        ]);
        let unary = all_homomorphisms(&[pos("p", vec![var("X")])], &i, &Substitution::new());
        assert_eq!(unary.len(), 1);
        let binary = all_homomorphisms(
            &[pos("p", vec![var("X"), var("Y")])],
            &i,
            &Substitution::new(),
        );
        assert_eq!(binary.len(), 1);
    }

    #[test]
    fn delta_matching_partitions_homomorphisms_by_watermark() {
        let mut i = Interpretation::from_atoms(vec![
            atom("edge", vec![cst("a"), cst("b")]),
            atom("edge", vec![cst("b"), cst("c")]),
        ]);
        let body = vec![
            pos("edge", vec![var("X"), var("Y")]),
            pos("edge", vec![var("Y"), var("Z")]),
        ];
        let before = all_homomorphisms(&body, &i, &Substitution::new());
        assert_eq!(before.len(), 1); // a->b->c
        let watermark = i.len();
        i.insert(atom("edge", vec![cst("c"), cst("a")]));
        let mut delta = Vec::new();
        for_each_homomorphism_delta(&body, &i, &Substitution::new(), watermark, &mut |s| {
            delta.push(s.clone());
            ControlFlow::Continue(())
        });
        // New homomorphisms: b->c->a and c->a->b, but not the old a->b->c.
        assert_eq!(delta.len(), 2);
        let full = all_homomorphisms(&body, &i, &Substitution::new());
        assert_eq!(full.len(), before.len() + delta.len());
        for s in &delta {
            assert!(full.contains(s));
            assert!(!before.contains(s));
        }
    }

    #[test]
    fn delta_pivots_partition_the_delta_enumeration() {
        // The union of the per-pivot slices, in pivot order, must equal the
        // one-call delta enumeration exactly (same homomorphisms, same
        // order) — this is what lets the parallel layer split one rule's
        // delta round into independent (rule, pivot) work items.
        let mut i = Interpretation::from_atoms(vec![
            atom("edge", vec![cst("a"), cst("b")]),
            atom("edge", vec![cst("b"), cst("c")]),
        ]);
        let body = vec![
            pos("edge", vec![var("X"), var("Y")]),
            pos("edge", vec![var("Y"), var("Z")]),
        ];
        let plan = CompiledConjunction::compile(&body, &i);
        let watermark = i.len();
        i.insert(atom("edge", vec![cst("c"), cst("a")]));
        i.insert(atom("edge", vec![cst("c"), cst("d")]));
        let empty = Substitution::new();
        for mark in [0, watermark] {
            let mut whole: Vec<String> = Vec::new();
            plan.for_each_delta(&i, &empty, mark, &mut |b| {
                whole.push(b.to_substitution().to_string());
                ControlFlow::Continue(())
            });
            let mut pieced: Vec<String> = Vec::new();
            for pivot in 0..plan.positive_count() {
                plan.for_each_delta_pivot(&i, &empty, mark, pivot, &mut |b| {
                    pieced.push(b.to_substitution().to_string());
                    ControlFlow::Continue(())
                });
            }
            assert_eq!(pieced, whole, "watermark {mark}");
        }
        // Early exit is propagated from a single pivot slice.
        assert!(
            plan.for_each_delta_pivot(&i, &empty, watermark, 0, &mut |_| {
                ControlFlow::Break(())
            })
        );
    }

    #[test]
    fn delta_with_zero_watermark_is_full_matching() {
        let i = interp();
        let body = vec![pos("edge", vec![var("X"), var("Y")])];
        let mut out = Vec::new();
        for_each_homomorphism_delta(&body, &i, &Substitution::new(), 0, &mut |s| {
            out.push(s.clone());
            ControlFlow::Continue(())
        });
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn delta_with_current_watermark_yields_nothing() {
        let i = interp();
        let body = vec![pos("edge", vec![var("X"), var("Y")])];
        assert!(!for_each_homomorphism_delta(
            &body,
            &i,
            &Substitution::new(),
            i.len(),
            &mut |_| ControlFlow::Break(())
        ));
        // And a conjunction without positive literals has no delta
        // homomorphisms either once the watermark is positive.
        assert!(!for_each_homomorphism_delta(
            &[neg("red", vec![var("X")])],
            &i,
            &Substitution::new(),
            1,
            &mut |_| ControlFlow::Break(())
        ));
    }

    #[test]
    fn reference_matcher_agrees_on_mixed_conjunctions() {
        let i = interp();
        let cases: Vec<Vec<Literal>> = vec![
            vec![pos("edge", vec![var("X"), var("Y")])],
            vec![
                pos("edge", vec![var("X"), var("Y")]),
                pos("edge", vec![var("Y"), var("Z")]),
            ],
            vec![
                pos("edge", vec![var("X"), var("Y")]),
                neg("red", vec![var("X")]),
            ],
            vec![neg("red", vec![var("X")])],
            vec![
                pos("red", vec![var("X")]),
                neg("edge", vec![var("X"), var("Z")]),
            ],
        ];
        for body in cases {
            let mut fast: Vec<String> = all_homomorphisms(&body, &i, &Substitution::new())
                .iter()
                .map(|s| s.to_string())
                .collect();
            let mut naive: Vec<String> =
                reference::all_homomorphisms(&body, &i, &Substitution::new())
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
            fast.sort();
            naive.sort();
            assert_eq!(fast, naive, "mismatch on {body:?}");
        }
    }

    #[test]
    fn cached_plans_execute_with_ground_initial_substitutions() {
        // One compiled plan, many initial substitutions applied as slot
        // presets — the trigger-activity pattern.
        let i = interp();
        let plan = CompiledConjunction::compile(&[pos("edge", vec![var("X"), var("Y")])], &i);
        // The compile counter is process-wide, so concurrently running tests
        // may compile plans of their own inside the measured window; retry
        // until an interference-free window is observed.  A regression —
        // these executions themselves compiling — fails every attempt.
        let mut clean_window = false;
        for _ in 0..50 {
            let before = plan_compile_count();
            for (from, to) in [("a", "b"), ("b", "c"), ("c", "a")] {
                let mut init = Substitution::new();
                init.bind(var("X"), cst(from));
                let hs = plan.all(&i, &init);
                assert_eq!(hs.len(), 1);
                assert_eq!(hs[0].apply_term(&var("Y")), cst(to));
                assert_eq!(hs[0].apply_term(&var("X")), cst(from));
                assert!(plan.exists(&i, &init));
            }
            let mut unmatched = Substitution::new();
            unmatched.bind(var("X"), cst("zzz"));
            assert!(!plan.exists(&i, &unmatched));
            if plan_compile_count() == before {
                clean_window = true;
                break;
            }
        }
        assert!(clean_window, "executions must not compile");
    }

    #[test]
    fn cached_plans_fall_back_on_variable_chained_initials() {
        // An initial substitution mapping a conjunction variable to another
        // variable cannot be applied as slot presets; the cached plan must
        // transparently recompile and agree with the one-shot wrapper and
        // the reference matcher.
        let i = interp();
        let body = vec![pos("edge", vec![var("X"), var("Z")])];
        let mut init = Substitution::new();
        init.bind(var("X"), var("Y"));
        let plan = CompiledConjunction::compile(&body, &i);
        let mut cached: Vec<String> = plan.all(&i, &init).iter().map(|s| s.to_string()).collect();
        let mut one_shot: Vec<String> = all_homomorphisms(&body, &i, &init)
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut naive: Vec<String> = reference::all_homomorphisms(&body, &i, &init)
            .iter()
            .map(|s| s.to_string())
            .collect();
        cached.sort();
        one_shot.sort();
        naive.sort();
        assert_eq!(cached, one_shot);
        assert_eq!(cached, naive);
    }

    #[test]
    fn slot_bindings_expose_lookup_application_and_materialisation() {
        let i = interp();
        let body = vec![
            pos("edge", vec![var("X"), var("Y")]),
            neg("red", vec![var("X")]),
        ];
        let plan = CompiledConjunction::compile(&body, &i);
        let mut seen = 0usize;
        plan.for_each(&i, &Substitution::new(), &mut |binding| {
            seen += 1;
            let x = binding.value_of(&var("X")).expect("X is bound");
            assert_eq!(binding.apply_term(&var("X")), x);
            assert_eq!(binding.value_of(&var("W")), None);
            assert_eq!(binding.apply_term(&var("W")), var("W"));
            assert_eq!(binding.apply_term(&cst("a")), cst("a"));
            let grounded = binding.apply_atom(&atom("edge", vec![var("X"), var("Y")]));
            assert!(grounded.is_ground());
            let materialised = binding.to_substitution();
            assert_eq!(materialised.apply_term(&var("X")), x);
            assert_eq!(
                materialised.apply_term(&var("Y")),
                binding.apply_term(&var("Y"))
            );
            ControlFlow::Continue(())
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn cached_plans_stay_correct_on_grown_instances() {
        // Compiled against an empty instance (cold statistics), executed
        // against a grown one: results must match a freshly compiled plan.
        let cold = CompiledConjunction::compile(
            &[
                pos("edge", vec![var("X"), var("Y")]),
                pos("edge", vec![var("Y"), var("Z")]),
            ],
            &Interpretation::new(),
        );
        let i = interp();
        let mut from_cold: Vec<String> = cold
            .all(&i, &Substitution::new())
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut from_warm: Vec<String> = all_homomorphisms(
            &[
                pos("edge", vec![var("X"), var("Y")]),
                pos("edge", vec![var("Y"), var("Z")]),
            ],
            &i,
            &Substitution::new(),
        )
        .iter()
        .map(|s| s.to_string())
        .collect();
        from_cold.sort();
        from_warm.sort();
        assert_eq!(from_cold, from_warm);
    }

    #[test]
    fn planner_prefers_selective_constants() {
        // A large star relation plus a tiny selective one: the planner must
        // start from the selective pattern regardless of written order.
        let mut i = Interpretation::new();
        for k in 0..50 {
            i.insert(atom("edge", vec![cst("hub"), cst(&format!("v{k}"))]));
        }
        i.insert(atom("mark", vec![cst("v7")]));
        let body = vec![
            pos("edge", vec![var("X"), var("Y")]),
            pos("mark", vec![var("Y")]),
        ];
        let hs = all_homomorphisms(&body, &i, &Substitution::new());
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].apply_term(&var("Y")), cst("v7"));
    }
}
