//! Deterministic parallelism for chase, grounding and stability workloads,
//! executed on a **persistent worker pool**.
//!
//! The whole engine is built around fixpoint rounds whose work items —
//! `(rule, delta-pivot)` matching tasks, per-rule grounding tasks, stability
//! checks of independent candidates — are embarrassingly parallel *within*
//! one round: every item only **reads** a snapshot of the shared state and
//! emits into a private buffer.  This module provides the one primitive all
//! of them share, [`par_map`]: apply a function to every item of a slice and
//! return the results **in item order**, independently of how the items were
//! scheduled.
//!
//! # The persistent pool
//!
//! Earlier revisions spawned scoped threads ([`std::thread::scope`]) for
//! every parallel round.  That is correct but pays a thread-spawn per round,
//! which forced tiny rounds — the dominant shape once a long-lived reasoning
//! session asserts small deltas — to run sequentially (the old
//! [`MIN_PARALLEL_WORK`] gate).  The pool replaces the per-round spawn with
//! **long-lived workers** and a job queue:
//!
//! * Workers are spawned lazily, on the first round that asks for them, and
//!   then parked on a condition variable between rounds.  All sessions and
//!   all fixpoints of the process share the one pool.
//! * A round is published as a *job*: an atomic cursor over the item slice
//!   plus a result slot per item.  The **submitting thread always works the
//!   job itself** alongside at most `threads - 1` pool workers, so a job
//!   completes even if every worker is busy elsewhere — there is no
//!   possibility of deadlock, and a nested [`par_map`] issued from inside a
//!   pool worker simply runs inline.
//! * Each item index is claimed exactly once (an atomic fetch-add) and its
//!   result is written into the slot of that index, so the output is in item
//!   order regardless of the schedule — the same determinism contract as the
//!   scoped implementation, with the merge sort replaced by direct slot
//!   addressing.
//!
//! The scoped implementation survives behind [`set_pool_enabled`]`(Some
//! (false))` (or `NTGD_POOL=0`) as a comparison baseline for benchmarks and
//! as an operational safety valve; it keeps the historical
//! [`MIN_PARALLEL_WORK`] gate because it pays a spawn per round.
//!
//! # Sharding and determinism invariants
//!
//! Parallel consumers rely on (and must preserve) the following invariants;
//! together they guarantee that every thread count — including 1 — produces
//! bit-identical results:
//!
//! * **Snapshot reads.**  During a parallel round the shared
//!   [`Interpretation`](crate::interpretation::Interpretation) (arena,
//!   per-predicate and per-position indexes) is only accessed through `&`
//!   references: insertions happen strictly *between* rounds, on one thread.
//!   A compiled plan ([`CompiledConjunction`](crate::matcher::CompiledConjunction),
//!   [`CompiledRuleSet`](crate::ruleset::CompiledRuleSet)) is immutable after
//!   construction and is executed concurrently by any number of workers; all
//!   per-execution state (slot vector, trail) lives on the worker's stack.
//! * **`AtomId` stability.**  Arena ids are assigned in insertion order and
//!   never reused, so the (predicate, position) index slices a worker probes
//!   are identical to what a sequential run would probe — a watermark
//!   observed before the round selects the same delta suffix on every
//!   thread.
//! * **Deterministic result order.**  Workers never publish results into a
//!   shared stream: each item's output goes into the result slot of the
//!   item's index (work items are ordered by rule index, then delta pivot,
//!   then the matcher's enumeration order within one item).  The merged
//!   stream is therefore exactly the sequential stream, so downstream
//!   consumers (trigger worklists, closure insertion, null invention) behave
//!   identically at every thread count.
//!
//! # Thread-count selection
//!
//! [`num_threads`] resolves, in order: the process-wide override installed
//! with [`set_thread_override`] (used by benchmarks and determinism tests),
//! the `NTGD_THREADS` environment variable (CI runs the test matrix at
//! `NTGD_THREADS=1` and at default parallelism), and finally
//! [`std::thread::available_parallelism`].  Callers gate rounds with
//! [`threads_for`]: with the pool enabled a round fans out from
//! [`MIN_POOLED_WORK`] work units (dispatching to already-running workers is
//! cheap); with the scoped fallback the historical [`MIN_PARALLEL_WORK`]
//! spawn-amortisation threshold applies.

use std::cell::{Cell, UnsafeCell};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Minimum number of "work units" (delta atoms, closure atoms, …) a round
/// must involve before the **scoped fallback** fans it out; below this a
/// per-round thread spawn dominates any matching work.  The persistent pool
/// is not subject to this gate (see [`MIN_POOLED_WORK`]).
pub const MIN_PARALLEL_WORK: usize = 64;

/// Minimum number of work units a round must involve before the persistent
/// pool fans it out.  Dispatching to already-running workers costs one
/// queue-push and a wake, so even small deltas — the bread and butter of an
/// incremental reasoning session — go parallel; only degenerate rounds (a
/// single work unit) stay inline.
pub const MIN_POOLED_WORK: usize = 2;

/// Hard cap on the number of pool workers ever spawned, as a guard against
/// pathological `NTGD_THREADS` values.
const MAX_POOL_WORKERS: usize = 128;

/// Process-wide thread-count override; `0` means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide pool mode: `0` = resolve from the environment (default on),
/// `1` = forced on, `2` = forced off (scoped fallback).
static POOL_MODE: AtomicUsize = AtomicUsize::new(0);

/// Installs (or with `None` removes) a process-wide thread-count override
/// taking precedence over `NTGD_THREADS` and the detected parallelism.
///
/// Intended for benchmarks and determinism tests that compare runs at fixed
/// thread counts; because every consumer is deterministic, concurrent tests
/// observing each other's override can at most change how fast they run.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Forces the persistent pool on (`Some(true)`), off (`Some(false)`, scoped
/// fallback), or back to the environment default (`None`: on unless
/// `NTGD_POOL` is `0`/`off`/`scoped`).
///
/// The results of every consumer are identical in both modes; the switch
/// exists for benchmarks comparing dispatch cost and as a safety valve.
pub fn set_pool_enabled(enabled: Option<bool>) {
    let mode = match enabled {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    POOL_MODE.store(mode, Ordering::Relaxed);
}

/// Returns `true` if parallel rounds dispatch to the persistent worker pool
/// (the default), `false` if they fall back to per-round scoped threads.
///
/// This sits on the hot path of every round's gating, so the `NTGD_POOL`
/// environment lookup is resolved once per process (unlike `NTGD_THREADS`,
/// which stays dynamic for the CI matrix, the pool choice never changes
/// results — only dispatch — and runtime switching goes through
/// [`set_pool_enabled`]).
pub fn pool_enabled() -> bool {
    static ENV_DEFAULT: OnceLock<bool> = OnceLock::new();
    match POOL_MODE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *ENV_DEFAULT.get_or_init(|| {
            !matches!(
                std::env::var("NTGD_POOL").as_deref(),
                Ok("0") | Ok("off") | Ok("scoped")
            )
        }),
    }
}

/// The worker count a round with `work` work units should fan out to: `1`
/// (run inline) below the mode's threshold ([`MIN_POOLED_WORK`] for the
/// pool, [`MIN_PARALLEL_WORK`] for the scoped fallback), [`num_threads`]
/// otherwise.
///
/// This is the shared gating policy of every parallel consumer — chase
/// trigger discovery, the grounding closures, stability checks — so the
/// heuristic lives in exactly one place.
pub fn threads_for(work: usize) -> usize {
    let threshold = if pool_enabled() {
        MIN_POOLED_WORK
    } else {
        MIN_PARALLEL_WORK
    };
    if work >= threshold {
        num_threads()
    } else {
        1
    }
}

/// The number of worker threads parallel rounds use: the
/// [`set_thread_override`] value if set, else `NTGD_THREADS` (values `>= 1`;
/// anything else is ignored), else [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if overridden >= 1 {
        return overridden;
    }
    if let Ok(text) = std::env::var("NTGD_THREADS") {
        if let Ok(n) = text.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Snapshot of the persistent pool's counters (surfaced by the reasoning
/// service's `STATS` command and by tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of long-lived workers spawned so far.
    pub workers: usize,
    /// Number of jobs (parallel rounds) dispatched to the pool.
    pub jobs: u64,
    /// Number of work items executed by pool dispatch (including the
    /// submitter's share).
    pub items: u64,
}

/// Counters and stats of the persistent pool.
pub fn pool_stats() -> PoolStats {
    let pool = pool();
    let workers = pool.queue.lock().expect("pool queue poisoned").workers;
    PoolStats {
        workers,
        jobs: pool.jobs_run.load(Ordering::Relaxed),
        items: pool.items_run.load(Ordering::Relaxed),
    }
}

/// Applies `f` to every item of `items` using up to [`num_threads`] workers
/// and returns the results in item order.
///
/// Work is distributed dynamically (an atomic cursor), so heterogeneous
/// items balance across workers; each item's result is written into the
/// result slot of the item's index, which makes the output independent of
/// the schedule.  With one worker (or fewer than two items) the items are
/// processed inline with no dispatch.
///
/// Panics in `f` are propagated to the caller once the round has quiesced.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, num_threads(), f)
}

/// [`par_map`] with an explicit worker count (callers pass `1` to force the
/// inline path when a round is too small to be worth fanning out).
pub fn par_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len());
    // Nested rounds issued from inside a pool worker run inline: the worker
    // is already one lane of an outer job, and draining the nested round on
    // the spot keeps the pool deadlock-free by construction.
    if threads <= 1 || IN_POOL_WORKER.get() {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    if pool_enabled() {
        par_map_pooled(items, threads, &f)
    } else {
        par_map_scoped(items, threads, &f)
    }
}

/// A `Sync` view over one element of a `&mut [T]`, submittable through
/// [`par_map_with`]'s shared-slice interface.  Soundness rests on the pool's
/// unique-claim contract: every item index is claimed by exactly one
/// executor, so exactly one `&mut T` is ever produced per element.
#[repr(transparent)]
struct MutCell<T>(UnsafeCell<T>);

// Safety: see `MutCell` — each cell is accessed by the unique claimer of its
// index only, so the element effectively *moves* to that worker for the
// duration of the call (hence `T: Send`, not `T: Sync`).
unsafe impl<T: Send> Sync for MutCell<T> {}

/// The **batch-submit entry point**: applies `f` to every element of a
/// mutable slice — each element handed to its executor as `&mut T` — and
/// returns the results in item order.
///
/// This is what stateful batch consumers use: the server's event-driven
/// connection layer collects the sessions that have complete requests
/// buffered and submits the whole batch here, so independent sessions
/// execute concurrently on the persistent pool while each individual
/// session stays strictly serial (it is one item, owned by one claimer for
/// the whole call).  A nested [`par_map`] issued from inside `f` follows the
/// usual rule: inline on a pool worker, pooled on the submitting thread —
/// so a batch of one still fans its inner chase/grounding rounds out.
///
/// `threads` follows [`par_map_with`]: pass [`threads_for`]`(items.len())`
/// (or `1` to force the inline path).
pub fn par_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    // Safety: `MutCell<T>` is `repr(transparent)` over `UnsafeCell<T>`,
    // which is `repr(transparent)` over `T`, so the slice layouts match.
    let cells: &[MutCell<T>] = unsafe { &*(items as *mut [T] as *const [MutCell<T>]) };
    par_map_with(cells, threads, |index, cell| {
        // Safety: the pool claims each index exactly once (documented on
        // `JobCore`), so this is the only reference to the element.
        f(index, unsafe { &mut *cell.0.get() })
    })
}

// ---------------------------------------------------------------------------
// Scoped fallback (the pre-pool implementation, kept for comparison).
// ---------------------------------------------------------------------------

/// The historical scoped-thread implementation: spawn `threads` scoped
/// workers for this one round, tag results with their item index and merge
/// by index.
fn par_map_scoped<T, R, F>(items: &[T], threads: usize, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let cursor = AtomicUsize::new(0);
    let buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(index) else {
                            return out;
                        };
                        out.push((index, f(index, item)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut tagged: Vec<(usize, R)> = buffers.into_iter().flatten().collect();
    tagged.sort_by_key(|(index, _)| *index);
    tagged.into_iter().map(|(_, result)| result).collect()
}

// ---------------------------------------------------------------------------
// Persistent pool.
// ---------------------------------------------------------------------------

thread_local! {
    /// Whether the current thread is a long-lived pool worker (nested
    /// `par_map` calls from such a thread run inline, see `par_map_with`).
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A type-erased parallel round published to the pool.
///
/// `data` points at the submitting call's stack frame (`JobData`); the
/// pointer is only dereferenced by `run` for item indexes `< len`, and the
/// submitter does not return before every claimed index has finished
/// executing (`active == 0` with the cursor exhausted), so the frame always
/// outlives every dereference.  Workers that attach late claim an index
/// `>= len` and touch nothing but the atomics.
struct JobCore {
    /// Erased `&JobData<'_, T, R, F>`.
    data: *const (),
    /// Monomorphised executor: runs item `i` of the job against `data`.
    run: unsafe fn(*const (), usize),
    /// Next unclaimed item index (claims are unique: `fetch_add`).
    cursor: AtomicUsize,
    /// Number of items.
    len: usize,
    /// How many more pool workers may attach (the submitter is not counted).
    helper_slots: AtomicIsize,
    /// Attached executors (including the submitter while it works).
    active: AtomicUsize,
    /// First panic payload raised by an item, if any.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion flag + signal for the submitter.
    done: Mutex<bool>,
    done_ready: Condvar,
}

// Safety: `data` is only dereferenced under the discipline documented on
// `JobCore` (unique index claims, submitter outlives all claims), and the
// pointee (`JobData`) only exposes `Sync` state (`&[T]`, `&F`, result slots
// written by exactly one claimer each).
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

/// One result slot, written by whichever executor claims the slot's index.
struct ResultSlot<R>(UnsafeCell<Option<R>>);

// Safety: each slot is written exactly once, by the unique claimer of its
// index, and only read by the submitter after the round quiesced.
unsafe impl<R: Send> Sync for ResultSlot<R> {}

/// The borrowed state of one `par_map` round (lives on the submitter's
/// stack; reached from workers through `JobCore::data`).
struct JobData<'a, T, R, F> {
    items: &'a [T],
    f: &'a F,
    slots: &'a [ResultSlot<R>],
}

/// Monomorphised item executor behind `JobCore::run`.
///
/// # Safety
///
/// `data` must point at a live `JobData<'_, T, R, F>` and `index` must be a
/// uniquely claimed in-bounds item index.
unsafe fn run_erased<T, R, F>(data: *const (), index: usize)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let data = unsafe { &*(data as *const JobData<'_, T, R, F>) };
    let result = (data.f)(index, &data.items[index]);
    unsafe { *data.slots[index].0.get() = Some(result) };
}

/// Job queue + worker accounting, behind the pool mutex.
struct PoolQueue {
    /// Jobs with unclaimed items (the submitter removes its job on return).
    jobs: Vec<Arc<JobCore>>,
    /// Workers spawned so far.
    workers: usize,
}

/// The process-wide persistent pool.
struct Pool {
    queue: Mutex<PoolQueue>,
    work_ready: Condvar,
    jobs_run: AtomicU64,
    items_run: AtomicU64,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(PoolQueue {
            jobs: Vec::new(),
            workers: 0,
        }),
        work_ready: Condvar::new(),
        jobs_run: AtomicU64::new(0),
        items_run: AtomicU64::new(0),
    })
}

/// Spawns workers until `queue.workers >= wanted` (capped).  Called with the
/// pool mutex held.
fn ensure_workers(queue: &mut PoolQueue, wanted: usize) {
    let wanted = wanted.min(MAX_POOL_WORKERS);
    while queue.workers < wanted {
        let name = format!("ntgd-pool-{}", queue.workers);
        std::thread::Builder::new()
            .name(name)
            .spawn(worker_loop)
            .expect("failed to spawn a pool worker");
        queue.workers += 1;
    }
}

/// The long-lived worker body: park until a job has both unclaimed items and
/// a free helper slot, attach, drain, repeat.  Workers live for the rest of
/// the process.
fn worker_loop() {
    IN_POOL_WORKER.set(true);
    let pool = pool();
    let mut queue = pool.queue.lock().expect("pool queue poisoned");
    loop {
        let claimed = queue.jobs.iter().find_map(|job| {
            if job.cursor.load(Ordering::Relaxed) >= job.len {
                return None;
            }
            if job.helper_slots.fetch_sub(1, Ordering::AcqRel) > 0 {
                job.active.fetch_add(1, Ordering::AcqRel);
                Some(Arc::clone(job))
            } else {
                job.helper_slots.fetch_add(1, Ordering::AcqRel);
                None
            }
        });
        match claimed {
            Some(job) => {
                drop(queue);
                run_job(&job);
                queue = pool.queue.lock().expect("pool queue poisoned");
            }
            None => {
                queue = pool
                    .work_ready
                    .wait(queue)
                    .expect("pool queue poisoned while waiting");
            }
        }
    }
}

/// Drains a job's cursor as one attached executor, then detaches; the last
/// executor to detach signals the submitter.  Panics in items are caught,
/// recorded on the job and re-raised by the submitter — a pool worker never
/// dies.
fn run_job(job: &JobCore) {
    let mut executed = 0u64;
    loop {
        let index = job.cursor.fetch_add(1, Ordering::Relaxed);
        if index >= job.len {
            break;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.data, index) }));
        executed += 1;
        if let Err(payload) = outcome {
            let mut panic = job.panic.lock().expect("job panic slot poisoned");
            if panic.is_none() {
                *panic = Some(payload);
            }
            // Stop claiming further items; in-flight claims on other lanes
            // finish normally.  (The store can only move the cursor *down*
            // to `len` after an overshoot, never below it, so no index is
            // ever handed out twice.)
            job.cursor.store(job.len, Ordering::Relaxed);
        }
    }
    pool().items_run.fetch_add(executed, Ordering::Relaxed);
    if job.active.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut done = job.done.lock().expect("job done flag poisoned");
        *done = true;
        job.done_ready.notify_all();
    }
}

/// Pool batch telemetry: one `pool.batches` tick and the item count per
/// submitted round, plus a `pool.batch` span over submit-to-quiesce (the
/// submitting thread works the job too, so the span is the batch's wall
/// time, not queueing overhead alone).
static POOL_BATCHES: crate::obs::Counter = crate::obs::Counter::new("pool.batches");
static POOL_BATCH_ITEMS: crate::obs::Counter = crate::obs::Counter::new("pool.batch_items");

/// Publishes the round to the pool, works it from the submitting thread, and
/// waits for stragglers before collecting the slots in item order.
fn par_map_pooled<T, R, F>(items: &[T], threads: usize, f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    POOL_BATCHES.incr();
    POOL_BATCH_ITEMS.add(items.len() as u64);
    let _batch = crate::obs::span("pool.batch");
    let slots: Vec<ResultSlot<R>> = items
        .iter()
        .map(|_| ResultSlot(UnsafeCell::new(None)))
        .collect();
    let data = JobData {
        items,
        f,
        slots: &slots,
    };
    let job = Arc::new(JobCore {
        data: (&data as *const JobData<'_, T, R, F>).cast(),
        run: run_erased::<T, R, F>,
        cursor: AtomicUsize::new(0),
        len: items.len(),
        helper_slots: AtomicIsize::new((threads - 1) as isize),
        active: AtomicUsize::new(1), // the submitter
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_ready: Condvar::new(),
    });
    let pool = pool();
    {
        let mut queue = pool.queue.lock().expect("pool queue poisoned");
        ensure_workers(&mut queue, threads - 1);
        queue.jobs.push(Arc::clone(&job));
        pool.jobs_run.fetch_add(1, Ordering::Relaxed);
        pool.work_ready.notify_all();
    }
    // The submitter is an executor too: the job completes even if every
    // worker is busy with other sessions' rounds.
    run_job(&job);
    {
        let mut done = job.done.lock().expect("job done flag poisoned");
        while !*done {
            done = job
                .done_ready
                .wait(done)
                .expect("job done flag poisoned while waiting");
        }
    }
    {
        let mut queue = pool.queue.lock().expect("pool queue poisoned");
        queue.jobs.retain(|queued| !Arc::ptr_eq(queued, &job));
    }
    if let Some(payload) = job.panic.lock().expect("job panic slot poisoned").take() {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.0
                .into_inner()
                .expect("every item of a quiesced job has a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises the tests that flip the process-wide override / pool mode
    /// so they do not observe each other's transient settings.
    fn settings_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn results_come_back_in_item_order_at_any_thread_count() {
        let items: Vec<usize> = (0..200).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for threads in [1, 2, 3, 8] {
            let got = par_map_with(&items, threads, |index, item| {
                assert_eq!(index, *item);
                item * 3
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(&empty, 8, |_, x| *x).is_empty());
        assert_eq!(par_map_with(&[7u32], 8, |_, x| x + 1), vec![8]);
    }

    #[test]
    fn override_wins_over_environment_and_detection() {
        let _guard = settings_lock();
        set_thread_override(Some(3));
        assert_eq!(num_threads(), 3);
        set_thread_override(None);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn dynamic_scheduling_handles_skewed_items() {
        // One expensive item among many cheap ones must not break ordering.
        let items: Vec<usize> = (0..64).collect();
        let got = par_map_with(&items, 4, |_, &item| {
            if item == 0 {
                // Simulate a heavy item.
                let mut acc = 0u64;
                for k in 0..50_000u64 {
                    acc = acc.wrapping_add(k ^ acc.rotate_left(7));
                }
                std::hint::black_box(acc);
            }
            item * 2
        });
        let expected: Vec<usize> = items.iter().map(|i| i * 2).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn pooled_and_scoped_modes_agree() {
        let items: Vec<u64> = (0..300).collect();
        let expected: Vec<u64> = items.iter().map(|i| i * i + 1).collect();
        for threads in [2, 4, 8] {
            let pooled = par_map_pooled(&items, threads, &|_, i: &u64| i * i + 1);
            let scoped = par_map_scoped(&items, threads, &|_, i: &u64| i * i + 1);
            assert_eq!(pooled, expected, "pooled, threads = {threads}");
            assert_eq!(scoped, expected, "scoped, threads = {threads}");
        }
    }

    #[test]
    fn tiny_rounds_dispatch_to_the_pool() {
        // The persistent-pool gate lets 2-item rounds go parallel; the
        // result must still be in item order.
        let before = pool_stats();
        let got = par_map_pooled(&[10u32, 20u32], 2, &|i, x| x + i as u32);
        assert_eq!(got, vec![10, 21]);
        let after = pool_stats();
        assert!(after.jobs > before.jobs, "the round went through the pool");
        assert!(after.workers >= 1);
    }

    #[test]
    fn nested_rounds_from_pool_workers_run_inline_and_complete() {
        let items: Vec<usize> = (0..32).collect();
        let got = par_map_pooled(&items, 4, &|_, &outer| {
            let inner: Vec<usize> = (0..8).collect();
            // May run on a pool worker (inline) or on the submitter
            // (pooled): both must return the same ordered results.
            let nested = par_map_with(&inner, 4, |_, &x| x + outer);
            nested.iter().sum::<usize>()
        });
        let expected: Vec<usize> = items.iter().map(|outer| 28 + 8 * outer).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn concurrent_jobs_share_the_pool() {
        let handles: Vec<_> = (0..4)
            .map(|salt: usize| {
                std::thread::spawn(move || {
                    let items: Vec<usize> = (0..100).collect();
                    let got = par_map_pooled(&items, 3, &|_, &i| i * 2 + salt);
                    let expected: Vec<usize> = items.iter().map(|i| i * 2 + salt).collect();
                    assert_eq!(got, expected);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("concurrent submitter panicked");
        }
    }

    #[test]
    fn panics_in_pooled_items_propagate_to_the_submitter() {
        let items: Vec<usize> = (0..64).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            par_map_pooled(&items, 4, &|_, &i| {
                if i == 17 {
                    panic!("item 17 exploded");
                }
                i
            })
        }));
        let payload = outcome.expect_err("the panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("item 17 exploded"), "got: {message}");
        // The pool survives the panic and keeps serving jobs.
        let after = par_map_pooled(&[1usize, 2, 3], 2, &|_, &x| x * 10);
        assert_eq!(after, vec![10, 20, 30]);
    }

    #[test]
    fn threads_for_gates_by_mode() {
        let _guard = settings_lock();
        set_thread_override(Some(4));
        set_pool_enabled(Some(true));
        assert_eq!(threads_for(0), 1);
        assert_eq!(threads_for(1), 1);
        assert_eq!(
            threads_for(MIN_POOLED_WORK),
            4,
            "pooled: small deltas fan out"
        );
        assert_eq!(threads_for(MIN_PARALLEL_WORK), 4);
        set_pool_enabled(Some(false));
        assert_eq!(
            threads_for(MIN_POOLED_WORK),
            1,
            "scoped: spawn not amortised"
        );
        assert_eq!(threads_for(MIN_PARALLEL_WORK - 1), 1);
        assert_eq!(threads_for(MIN_PARALLEL_WORK), 4);
        set_pool_enabled(None);
        set_thread_override(None);
    }

    #[test]
    fn pool_mode_switch_is_observable() {
        let _guard = settings_lock();
        set_pool_enabled(Some(false));
        assert!(!pool_enabled());
        set_pool_enabled(Some(true));
        assert!(pool_enabled());
        set_pool_enabled(None);
    }
}
