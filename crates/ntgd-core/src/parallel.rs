//! Deterministic scoped-thread parallelism for chase, grounding and
//! stability workloads.
//!
//! The whole engine is built around fixpoint rounds whose work items —
//! `(rule, delta-pivot)` matching tasks, per-rule grounding tasks, stability
//! checks of independent candidates — are embarrassingly parallel *within*
//! one round: every item only **reads** a snapshot of the shared state and
//! emits into a private buffer.  This module provides the one primitive all
//! of them share, [`par_map`]: apply a function to every item of a slice on
//! a scoped worker pool ([`std::thread::scope`]; the workspace is offline,
//! so no external thread-pool crate is used) and return the results **in
//! item order**, independently of how the items were scheduled.
//!
//! # Sharding and determinism invariants
//!
//! Parallel consumers rely on (and must preserve) the following invariants;
//! together they guarantee that every thread count — including 1 — produces
//! bit-identical results:
//!
//! * **Snapshot reads.**  During a parallel round the shared
//!   [`Interpretation`](crate::interpretation::Interpretation) (arena,
//!   per-predicate and per-position indexes) is only accessed through `&`
//!   references: insertions happen strictly *between* rounds, on one thread.
//!   A compiled plan ([`CompiledConjunction`](crate::matcher::CompiledConjunction),
//!   [`CompiledRuleSet`](crate::ruleset::CompiledRuleSet)) is immutable after
//!   construction and is executed concurrently by any number of workers; all
//!   per-execution state (slot vector, trail) lives on the worker's stack.
//! * **`AtomId` stability.**  Arena ids are assigned in insertion order and
//!   never reused, so the (predicate, position) index slices a worker probes
//!   are identical to what a sequential run would probe — a watermark
//!   observed before the round selects the same delta suffix on every
//!   thread.
//! * **Deterministic merge order.**  Workers never publish results directly:
//!   each work item's output goes into a buffer tagged with the item's
//!   index, and [`par_map`] reassembles the buffers in item order (work
//!   items are ordered by rule index, then delta pivot, then the matcher's
//!   enumeration order within one item).  The merged stream is therefore
//!   exactly the sequential stream, so downstream consumers (trigger
//!   worklists, closure insertion, null invention) behave identically at
//!   every thread count.
//!
//! # Thread-count selection
//!
//! [`num_threads`] resolves, in order: the process-wide override installed
//! with [`set_thread_override`] (used by benchmarks and determinism tests),
//! the `NTGD_THREADS` environment variable (CI runs the test matrix at
//! `NTGD_THREADS=1` and at default parallelism), and finally
//! [`std::thread::available_parallelism`].  Callers gate small rounds with
//! [`MIN_PARALLEL_WORK`] so that a chase step whose delta is a handful of
//! atoms never pays a thread-spawn.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Minimum number of "work units" (delta atoms, closure atoms, …) a round
/// should involve before consumers fan it out to the pool; below this the
/// thread-spawn overhead dominates any matching work.
pub const MIN_PARALLEL_WORK: usize = 64;

/// Process-wide thread-count override; `0` means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Installs (or with `None` removes) a process-wide thread-count override
/// taking precedence over `NTGD_THREADS` and the detected parallelism.
///
/// Intended for benchmarks and determinism tests that compare runs at fixed
/// thread counts; because every consumer is deterministic, concurrent tests
/// observing each other's override can at most change how fast they run.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count a round with `work` work units should fan out to: `1`
/// (run inline) below [`MIN_PARALLEL_WORK`], [`num_threads`] otherwise.
///
/// This is the shared gating policy of every parallel consumer — chase
/// trigger discovery, the grounding closures, stability checks — so the
/// heuristic lives in exactly one place.
pub fn threads_for(work: usize) -> usize {
    if work >= MIN_PARALLEL_WORK {
        num_threads()
    } else {
        1
    }
}

/// The number of worker threads parallel rounds use: the
/// [`set_thread_override`] value if set, else `NTGD_THREADS` (values `>= 1`;
/// anything else is ignored), else [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if overridden >= 1 {
        return overridden;
    }
    if let Ok(text) = std::env::var("NTGD_THREADS") {
        if let Ok(n) = text.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` using up to [`num_threads`] scoped
/// workers and returns the results in item order.
///
/// Work is distributed dynamically (an atomic cursor), so heterogeneous
/// items balance across workers; each worker tags its results with the item
/// index and the tagged buffers are merged by index, which makes the output
/// independent of the schedule.  With one worker (or fewer than two items)
/// the items are processed inline with no thread spawned.
///
/// Panics in `f` are propagated to the caller after the scope unwinds.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, num_threads(), f)
}

/// [`par_map`] with an explicit worker count (callers pass `1` to force the
/// inline path when a round is too small to be worth fanning out).
pub fn par_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(index) else {
                            return out;
                        };
                        out.push((index, f(index, item)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut tagged: Vec<(usize, R)> = buffers.into_iter().flatten().collect();
    tagged.sort_by_key(|(index, _)| *index);
    tagged.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order_at_any_thread_count() {
        let items: Vec<usize> = (0..200).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for threads in [1, 2, 3, 8] {
            let got = par_map_with(&items, threads, |index, item| {
                assert_eq!(index, *item);
                item * 3
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(&empty, 8, |_, x| *x).is_empty());
        assert_eq!(par_map_with(&[7u32], 8, |_, x| x + 1), vec![8]);
    }

    #[test]
    fn override_wins_over_environment_and_detection() {
        set_thread_override(Some(3));
        assert_eq!(num_threads(), 3);
        set_thread_override(None);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn dynamic_scheduling_handles_skewed_items() {
        // One expensive item among many cheap ones must not break ordering.
        let items: Vec<usize> = (0..64).collect();
        let got = par_map_with(&items, 4, |_, &item| {
            if item == 0 {
                // Simulate a heavy item.
                let mut acc = 0u64;
                for k in 0..50_000u64 {
                    acc = acc.wrapping_add(k ^ acc.rotate_left(7));
                }
                std::hint::black_box(acc);
            }
            item * 2
        });
        let expected: Vec<usize> = items.iter().map(|i| i * 2).collect();
        assert_eq!(got, expected);
    }
}
