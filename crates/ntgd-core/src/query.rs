//! Normal (Boolean) conjunctive queries (paper, Section 2).
//!
//! An n-ary *normal conjunctive query* (NCQ) is an existentially quantified
//! conjunction of literals with `n` free (answer) variables; the 0-ary case is
//! a normal *Boolean* conjunctive query (NBCQ).  Queries must be safe: every
//! variable occurring in a negative literal — and every answer variable —
//! also occurs in a positive literal.
//!
//! The answer of an n-ary NCQ over an interpretation `I` is the set of
//! constant tuples `t ∈ Cⁿ` for which a homomorphism `h` with `h(ϕ) ⊆ I` and
//! `h(X) = t` exists.

use std::collections::BTreeSet;
use std::fmt;

use crate::atom::Literal;
use crate::error::{CoreError, CoreResult};
use crate::interpretation::Interpretation;
use crate::matcher::exists_homomorphism;
use crate::matcher::CompiledConjunction;
use crate::schema::Schema;
use crate::substitution::Substitution;
use crate::symbol::Symbol;
use crate::term::Term;

/// A normal conjunctive query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    answer_variables: Vec<Symbol>,
    literals: Vec<Literal>,
}

impl Query {
    /// Creates and validates a query.
    pub fn new(answer_variables: Vec<Symbol>, literals: Vec<Literal>) -> CoreResult<Query> {
        let q = Query {
            answer_variables,
            literals,
        };
        q.validate()?;
        Ok(q)
    }

    /// Creates a Boolean query (no answer variables).
    pub fn boolean(literals: Vec<Literal>) -> CoreResult<Query> {
        Query::new(Vec::new(), literals)
    }

    fn validate(&self) -> CoreResult<()> {
        let positive_vars: BTreeSet<Symbol> = self
            .literals
            .iter()
            .filter(|l| l.is_positive())
            .flat_map(|l| l.variables().collect::<Vec<_>>())
            .collect();
        for lit in self.literals.iter().filter(|l| l.is_negative()) {
            for v in lit.variables() {
                if !positive_vars.contains(&v) {
                    return Err(CoreError::UnsafeQuery {
                        query: self.to_string(),
                        variable: v.as_str().to_owned(),
                    });
                }
            }
        }
        for v in &self.answer_variables {
            if !positive_vars.contains(v) {
                return Err(CoreError::UnsafeQuery {
                    query: self.to_string(),
                    variable: v.as_str().to_owned(),
                });
            }
        }
        Ok(())
    }

    /// The answer variables (free variables) of the query.
    pub fn answer_variables(&self) -> &[Symbol] {
        &self.answer_variables
    }

    /// The literals of the query.
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// The arity of the query.
    pub fn arity(&self) -> usize {
        self.answer_variables.len()
    }

    /// Returns `true` if the query is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.answer_variables.is_empty()
    }

    /// Returns `true` if the query contains no negative literal.
    pub fn is_positive(&self) -> bool {
        self.literals.iter().all(Literal::is_positive)
    }

    /// Registers the query's predicates into a schema.
    pub fn declare_into(&self, schema: &mut Schema) -> CoreResult<()> {
        for l in &self.literals {
            schema.declare_atom(l.atom())?;
        }
        Ok(())
    }

    /// Evaluates the query over an interpretation: the set of constant answer
    /// tuples (paper: `q(I) ⊆ Cⁿ`).
    ///
    /// Answer tuples are read straight off the matcher's borrowed slot
    /// binding; no substitution is materialised per homomorphism.
    pub fn answers(&self, interpretation: &Interpretation) -> BTreeSet<Vec<Term>> {
        let plan = CompiledConjunction::compile(&self.literals, interpretation);
        let mut out = BTreeSet::new();
        plan.for_each(interpretation, &Substitution::new(), &mut |binding| {
            let tuple: Vec<Term> = self
                .answer_variables
                .iter()
                .map(|v| binding.apply_term(&Term::Var(*v)))
                .collect();
            if tuple.iter().all(Term::is_constant) {
                out.insert(tuple);
            }
            std::ops::ControlFlow::Continue(())
        });
        out
    }

    /// Returns `true` if a Boolean query holds over the interpretation
    /// (`I ⊨ q`), or — for a non-Boolean query — if it has at least one
    /// answer.
    pub fn holds(&self, interpretation: &Interpretation) -> bool {
        if self.is_boolean() {
            exists_homomorphism(&self.literals, interpretation, &Substitution::new())
        } else {
            !self.answers(interpretation).is_empty()
        }
    }

    /// The negation of a *single-literal* Boolean query (used to build
    /// counter-model queries); returns `None` for conjunctions of more than
    /// one literal.
    pub fn negate_single_literal(&self) -> Option<Query> {
        if self.literals.len() != 1 || !self.is_boolean() {
            return None;
        }
        Query::boolean(vec![self.literals[0].negated()]).ok()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?")?;
        if !self.answer_variables.is_empty() {
            write!(f, "(")?;
            for (i, v) in self.answer_variables.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        write!(f, " :- ")?;
        for (i, l) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, cst, neg, pos, var};

    fn interp() -> Interpretation {
        Interpretation::from_atoms(vec![
            atom("person", vec![cst("alice")]),
            atom("person", vec![cst("bob")]),
            atom("abnormal", vec![cst("bob")]),
            atom("hasFather", vec![cst("alice"), Term::null(0)]),
        ])
    }

    #[test]
    fn boolean_query_positive() {
        let q = Query::boolean(vec![pos("person", vec![var("X")])]).unwrap();
        assert!(q.is_boolean());
        assert!(q.holds(&interp()));
        let q2 = Query::boolean(vec![pos("person", vec![cst("carol")])]).unwrap();
        assert!(!q2.holds(&interp()));
    }

    #[test]
    fn boolean_query_with_negation() {
        // ∃X person(X) ∧ ¬abnormal(X)   — alice witnesses it.
        let q = Query::boolean(vec![
            pos("person", vec![var("X")]),
            neg("abnormal", vec![var("X")]),
        ])
        .unwrap();
        assert!(q.holds(&interp()));
        // ∃X person(X) ∧ abnormal(X)   — bob witnesses it.
        let q2 = Query::boolean(vec![
            pos("person", vec![var("X")]),
            pos("abnormal", vec![var("X")]),
        ])
        .unwrap();
        assert!(q2.holds(&interp()));
    }

    #[test]
    fn answers_contain_only_constant_tuples() {
        // ?(Y) :- hasFather(X, Y): the only father is a null, so no answer.
        let q = Query::new(
            vec![Symbol::intern("Y")],
            vec![pos("hasFather", vec![var("X"), var("Y")])],
        )
        .unwrap();
        assert!(q.answers(&interp()).is_empty());
        // ?(X) :- person(X), not abnormal(X)  => {alice}
        let q2 = Query::new(
            vec![Symbol::intern("X")],
            vec![
                pos("person", vec![var("X")]),
                neg("abnormal", vec![var("X")]),
            ],
        )
        .unwrap();
        assert_eq!(q2.answers(&interp()), BTreeSet::from([vec![cst("alice")]]));
    }

    #[test]
    fn unsafe_queries_are_rejected() {
        assert!(Query::boolean(vec![neg("p", vec![var("X")])]).is_err());
        assert!(Query::new(
            vec![Symbol::intern("Z")],
            vec![pos("person", vec![var("X")])]
        )
        .is_err());
        // Ground negative literal is fine.
        assert!(Query::boolean(vec![neg("person", vec![cst("zed")])]).is_ok());
    }

    #[test]
    fn negative_ground_query_follows_domain_semantics() {
        // ¬hasFather(alice, carol): carol is not in the domain of `interp`, so
        // the negative literal is not in I and the query does not hold.
        let q = Query::boolean(vec![neg("hasFather", vec![cst("alice"), cst("carol")])]).unwrap();
        assert!(!q.holds(&interp()));
        // ¬hasFather(alice, bob) holds: bob is in the domain (person(bob)) and
        // the atom is false.
        let q1 = Query::boolean(vec![neg("hasFather", vec![cst("alice"), cst("bob")])]).unwrap();
        assert!(q1.holds(&interp()));
        // ¬abnormal(alice) holds (alice is in the domain, atom is false).
        let q2 = Query::boolean(vec![neg("abnormal", vec![cst("alice")])]).unwrap();
        assert!(q2.holds(&interp()));
    }

    #[test]
    fn negate_single_literal() {
        let q = Query::boolean(vec![pos("abnormal", vec![cst("bob")])]).unwrap();
        let n = q.negate_single_literal().unwrap();
        assert!(n.holds(&interp()) != q.holds(&interp()));
        let conj = Query::boolean(vec![
            pos("person", vec![var("X")]),
            pos("abnormal", vec![var("X")]),
        ])
        .unwrap();
        assert!(conj.negate_single_literal().is_none());
    }

    #[test]
    fn display_renders_queries() {
        let q = Query::new(
            vec![Symbol::intern("X")],
            vec![
                pos("person", vec![var("X")]),
                neg("abnormal", vec![var("X")]),
            ],
        )
        .unwrap();
        assert_eq!(q.to_string(), "?(X) :- person(X), not abnormal(X).");
    }
}
