//! Substitutions and homomorphisms.
//!
//! Following the paper (Section 2), a *homomorphism* from a set of literals `L`
//! to a set of literals `L'` is a mapping `h : C ∪ N ∪ V → C ∪ N ∪ V` that is
//! the identity on constants and maps every (positive or negative) literal of
//! `L` to a literal of `L'` of the same polarity.  [`Substitution`] represents
//! the finite, explicitly recorded part of such a mapping: variables and nulls
//! that are not recorded map to themselves.

use std::collections::BTreeMap;
use std::fmt;

use crate::atom::{Atom, Literal};
use crate::term::Term;

/// A finite mapping from variables/nulls to terms, identity on constants.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Substitution {
    map: BTreeMap<Term, Term>,
}

impl Substitution {
    /// The empty substitution (identity everywhere).
    pub fn new() -> Substitution {
        Substitution::default()
    }

    /// Creates a substitution from explicit bindings.
    ///
    /// # Panics
    ///
    /// Panics if a binding key is a constant (constants must map to
    /// themselves).
    pub fn from_bindings<I>(bindings: I) -> Substitution
    where
        I: IntoIterator<Item = (Term, Term)>,
    {
        let mut s = Substitution::new();
        for (k, v) in bindings {
            s.bind(k, v);
        }
        s
    }

    /// Number of explicit bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no explicit binding is recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns the binding of `t`, if explicitly recorded.
    pub fn get(&self, t: &Term) -> Option<&Term> {
        self.map.get(t)
    }

    /// Records the binding `from ↦ to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is a constant.
    pub fn bind(&mut self, from: Term, to: Term) {
        assert!(
            !from.is_constant(),
            "constants must map to themselves in a homomorphism"
        );
        self.map.insert(from, to);
    }

    /// Tries to extend the substitution with `from ↦ to`.
    ///
    /// Returns `false` (leaving the substitution untouched) if `from` is a
    /// constant different from `to`, or if `from` is already bound to a
    /// different term.
    pub fn try_bind(&mut self, from: Term, to: Term) -> bool {
        if from.is_constant() {
            return from == to;
        }
        match self.map.get(&from) {
            Some(existing) => *existing == to,
            None => {
                self.map.insert(from, to);
                true
            }
        }
    }

    /// Applies the substitution to a term.
    pub fn apply_term(&self, t: &Term) -> Term {
        match t {
            Term::Const(_) => *t,
            _ => self.map.get(t).copied().unwrap_or(*t),
        }
    }

    /// Applies the substitution to an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom::new(
            atom.predicate(),
            atom.args().iter().map(|t| self.apply_term(t)).collect(),
        )
    }

    /// Applies the substitution to a literal.
    pub fn apply_literal(&self, lit: &Literal) -> Literal {
        let atom = self.apply_atom(lit.atom());
        if lit.is_positive() {
            Literal::positive(atom)
        } else {
            Literal::negative(atom)
        }
    }

    /// Applies the substitution to a slice of atoms.
    pub fn apply_atoms(&self, atoms: &[Atom]) -> Vec<Atom> {
        atoms.iter().map(|a| self.apply_atom(a)).collect()
    }

    /// Composition `other ∘ self`: first apply `self`, then `other`.
    pub fn then(&self, other: &Substitution) -> Substitution {
        let mut out = Substitution::new();
        for (k, v) in &self.map {
            out.map.insert(*k, other.apply_term(v));
        }
        for (k, v) in &other.map {
            out.map.entry(*k).or_insert(*v);
        }
        out
    }

    /// Returns `true` if `self` agrees with `other` on every binding of
    /// `self` (i.e. `other` is an extension of `self`, written `other ⊇ self`
    /// in the paper).
    pub fn is_extended_by(&self, other: &Substitution) -> bool {
        self.map.iter().all(|(k, v)| other.apply_term(k) == *v)
    }

    /// Iterates over the explicit bindings in a deterministic order.
    pub fn bindings(&self) -> impl Iterator<Item = (&Term, &Term)> + '_ {
        self.map.iter()
    }

    /// Restricts the substitution to the given keys.
    pub fn restrict_to<'a, I>(&self, keys: I) -> Substitution
    where
        I: IntoIterator<Item = &'a Term>,
    {
        let mut out = Substitution::new();
        for k in keys {
            if let Some(v) = self.map.get(k) {
                out.map.insert(*k, *v);
            }
        }
        out
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k} -> {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{atom, cst, var};

    #[test]
    fn identity_on_constants() {
        let s = Substitution::new();
        assert_eq!(s.apply_term(&cst("a")), cst("a"));
        assert_eq!(s.apply_term(&var("X")), var("X"));
        assert_eq!(s.apply_term(&Term::null(1)), Term::null(1));
    }

    #[test]
    fn bind_and_apply() {
        let mut s = Substitution::new();
        s.bind(var("X"), cst("a"));
        s.bind(Term::null(0), cst("b"));
        let a = atom("p", vec![var("X"), Term::null(0), var("Y")]);
        assert_eq!(
            s.apply_atom(&a),
            atom("p", vec![cst("a"), cst("b"), var("Y")])
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "constants must map to themselves")]
    fn binding_a_constant_panics() {
        let mut s = Substitution::new();
        s.bind(cst("a"), cst("b"));
    }

    #[test]
    fn try_bind_respects_existing_bindings() {
        let mut s = Substitution::new();
        assert!(s.try_bind(var("X"), cst("a")));
        assert!(s.try_bind(var("X"), cst("a")));
        assert!(!s.try_bind(var("X"), cst("b")));
        assert!(s.try_bind(cst("c"), cst("c")));
        assert!(!s.try_bind(cst("c"), cst("d")));
    }

    #[test]
    fn composition_applies_left_then_right() {
        let mut s1 = Substitution::new();
        s1.bind(var("X"), var("Y"));
        let mut s2 = Substitution::new();
        s2.bind(var("Y"), cst("a"));
        let c = s1.then(&s2);
        assert_eq!(c.apply_term(&var("X")), cst("a"));
        assert_eq!(c.apply_term(&var("Y")), cst("a"));
    }

    #[test]
    fn extension_check() {
        let mut h = Substitution::new();
        h.bind(var("X"), cst("a"));
        let mut h2 = h.clone();
        h2.bind(var("Z"), cst("b"));
        assert!(h.is_extended_by(&h2));
        assert!(!h2.is_extended_by(&h));
        assert!(h.is_extended_by(&h));
    }

    #[test]
    fn restriction_keeps_only_requested_keys() {
        let mut s = Substitution::new();
        s.bind(var("X"), cst("a"));
        s.bind(var("Y"), cst("b"));
        let keys = [var("X")];
        let r = s.restrict_to(keys.iter());
        assert_eq!(r.len(), 1);
        assert_eq!(r.apply_term(&var("X")), cst("a"));
        assert_eq!(r.apply_term(&var("Y")), var("Y"));
    }

    #[test]
    fn apply_literal_preserves_polarity() {
        let mut s = Substitution::new();
        s.bind(var("X"), cst("a"));
        let l = Literal::negative(atom("p", vec![var("X")]));
        let applied = s.apply_literal(&l);
        assert!(applied.is_negative());
        assert_eq!(applied.atom(), &atom("p", vec![cst("a")]));
    }
}
