//! Zero-dependency observability: a process-wide metrics registry
//! (atomic [`Counter`]s and [`Gauge`]s, mergeable log-bucketed
//! [`Histogram`]s), RAII [`span`] timers, a Prometheus-style text
//! exposition, and a structured JSON-lines event [`log`].
//!
//! # Contract
//!
//! Observability is **write-only** for the engine: nothing in this module
//! feeds back into execution decisions, so transcripts and model sets stay
//! byte-identical whether it is on or off (`tests/differential_oracle.rs`
//! in `ntgd-server` pins this).  `NTGD_OBS=0` disables the registry and the
//! span timers process-wide; when disabled every instrument is a single
//! relaxed atomic load and an early return.
//!
//! # Shape
//!
//! Instruments are `static`s declared at their use site and registered
//! lazily on first use, so the registry only ever lists instruments the
//! process actually touched:
//!
//! ```
//! use ntgd_core::obs;
//!
//! static ROUNDS: obs::Counter = obs::Counter::new("chase.rounds");
//! ROUNDS.incr();
//! {
//!     let _span = obs::span("chase.round");
//!     // ... timed work; elapsed ns recorded into the "chase.round"
//!     // histogram when the guard drops ...
//! }
//! ```
//!
//! Snapshots ([`counters_snapshot`], [`gauges_snapshot`],
//! [`histograms_snapshot`]) are sorted by name; [`prometheus_lines`]
//! renders them as a Prometheus-style text exposition (the `METRICS`
//! protocol verb in `ntgd-server` serves exactly those lines).

pub mod histogram;
pub mod log;

pub use histogram::Histogram;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// --- enablement -----------------------------------------------------------

/// Runtime override of the `NTGD_OBS` switch: 0 = follow the environment,
/// 1 = forced off, 2 = forced on.  Exists for the `obs_overhead` benchmark
/// and tests, which must flip enablement after the process read its
/// environment.
static ENABLED_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_enabled() -> bool {
    static FROM_ENV: OnceLock<bool> = OnceLock::new();
    *FROM_ENV.get_or_init(|| std::env::var("NTGD_OBS").map_or(true, |value| value.trim() != "0"))
}

/// Whether instruments record.  On by default; `NTGD_OBS=0` (or a
/// [`set_enabled_override`]) turns every instrument into a no-op.
pub fn enabled() -> bool {
    match ENABLED_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_enabled(),
    }
}

/// Forces enablement on or off regardless of `NTGD_OBS` (`None` returns to
/// the environment's verdict).  For benchmarks and tests.
pub fn set_enabled_override(value: Option<bool>) {
    let encoded = match value {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    ENABLED_OVERRIDE.store(encoded, Ordering::SeqCst);
}

// --- registry -------------------------------------------------------------

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    gauges: Mutex<Vec<&'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// A monotonically increasing process-wide counter.  Declare as a `static`
/// and bump with [`Counter::incr`]/[`Counter::add`]; hot loops should
/// accumulate locally and `add` once per batch.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A counter named `name` (dotted lowercase, e.g. `"chase.rounds"`).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (no-op when observability is disabled).
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().counters.lock().unwrap().push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A process-wide gauge: a signed level that can move both ways (queue
/// depths, live connection counts).
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
    registered: AtomicBool,
}

impl Gauge {
    /// A gauge named `name`.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicI64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The gauge's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn touch(&'static self) -> bool {
        if !enabled() {
            return false;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().gauges.lock().unwrap().push(self);
        }
        true
    }

    /// Sets the level (no-op when observability is disabled).
    pub fn set(&'static self, value: i64) {
        if self.touch() {
            self.value.store(value, Ordering::Relaxed);
        }
    }

    /// Moves the level by `delta`.
    pub fn add(&'static self, delta: i64) {
        if self.touch() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

// --- durations and spans --------------------------------------------------

/// Records `ns` into the process-wide histogram named `name` (no-op when
/// observability is disabled).
pub fn record_duration(name: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    registry()
        .histograms
        .lock()
        .unwrap()
        .entry(name)
        .or_default()
        .record(ns);
}

/// An RAII phase timer: elapsed wall time lands in the histogram named at
/// [`span`] when the guard drops.  Nests freely (each guard times its own
/// scope) and is thread-safe; when observability is disabled the guard
/// never reads the clock.
#[must_use = "a span records when the guard drops; binding it to _ drops immediately"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            record_duration(self.name, ns);
        }
    }
}

/// Starts a span timer over the histogram named `name`.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: enabled().then(Instant::now),
    }
}

// --- snapshots and exposition ---------------------------------------------

/// Every counter touched so far, as `(name, value)` sorted by name.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = registry()
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|counter| (counter.name, counter.get()))
        .collect();
    out.sort_unstable_by_key(|&(name, _)| name);
    out
}

/// Every gauge touched so far, as `(name, level)` sorted by name.
pub fn gauges_snapshot() -> Vec<(&'static str, i64)> {
    let mut out: Vec<(&'static str, i64)> = registry()
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|gauge| (gauge.name, gauge.get()))
        .collect();
    out.sort_unstable_by_key(|&(name, _)| name);
    out
}

/// Every histogram recorded so far, as `(name, clone)` sorted by name.
pub fn histograms_snapshot() -> Vec<(&'static str, Histogram)> {
    registry()
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|(&name, histogram)| (name, histogram.clone()))
        .collect()
}

/// Mangles a dotted instrument name into a Prometheus metric name
/// (`chase.rounds` → `ntgd_chase_rounds`).
fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("ntgd_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Renders explicit snapshots as Prometheus-style text exposition lines —
/// the pure core of [`prometheus_lines`], so wire-format tests can assert
/// exact bytes over inputs they control.
///
/// Counters render as `# TYPE` + `_total`; gauges as `# TYPE` + a bare
/// sample; histograms (nanosecond-valued, `_ns` suffix) as cumulative
/// non-empty `_bucket{le=…}` lines, `_sum`/`_count`, and
/// `{quantile=…}` summary lines for p50/p90/p99.
pub fn render_prometheus(
    counters: &[(&str, u64)],
    gauges: &[(&str, i64)],
    histograms: &[(&str, Histogram)],
) -> Vec<String> {
    let mut lines = Vec::new();
    for &(name, value) in counters {
        let mangled = mangle(name);
        lines.push(format!("# TYPE {mangled} counter"));
        lines.push(format!("{mangled}_total {value}"));
    }
    for &(name, value) in gauges {
        let mangled = mangle(name);
        lines.push(format!("# TYPE {mangled} gauge"));
        lines.push(format!("{mangled} {value}"));
    }
    for (name, histogram) in histograms {
        let mangled = format!("{}_ns", mangle(name));
        lines.push(format!("# TYPE {mangled} histogram"));
        let mut cumulative = 0u64;
        for (upper, count) in histogram.buckets() {
            cumulative += count;
            lines.push(format!("{mangled}_bucket{{le=\"{upper}\"}} {cumulative}"));
        }
        lines.push(format!(
            "{mangled}_bucket{{le=\"+Inf\"}} {}",
            histogram.count()
        ));
        lines.push(format!("{mangled}_sum {}", histogram.sum()));
        lines.push(format!("{mangled}_count {}", histogram.count()));
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
            lines.push(format!(
                "{mangled}{{quantile=\"{label}\"}} {}",
                histogram.quantile(q)
            ));
        }
    }
    lines
}

/// The current process-wide exposition: every touched instrument, rendered
/// by [`render_prometheus`] in snapshot (name) order.
pub fn prometheus_lines() -> Vec<String> {
    let counters = counters_snapshot();
    let gauges = gauges_snapshot();
    let histograms = histograms_snapshot();
    render_prometheus(&counters, &gauges, &histograms)
}

/// [`prometheus_lines`] joined with a trailing newline (scrape-file form).
pub fn prometheus_text() -> String {
    let mut text = prometheus_lines().join("\n");
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Enablement is process-global; tests that flip it serialise here.
    fn enablement_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn counters_register_lazily_and_accumulate() {
        let _guard = enablement_lock();
        set_enabled_override(Some(true));
        static TEST_COUNTER: Counter = Counter::new("obs.test.counter");
        TEST_COUNTER.incr();
        TEST_COUNTER.add(4);
        assert_eq!(TEST_COUNTER.get(), 5);
        let snapshot = counters_snapshot();
        assert!(snapshot.contains(&("obs.test.counter", 5)));
        assert!(snapshot.windows(2).all(|pair| pair[0].0 <= pair[1].0));
        set_enabled_override(None);
    }

    #[test]
    fn gauges_move_both_ways() {
        let _guard = enablement_lock();
        set_enabled_override(Some(true));
        static TEST_GAUGE: Gauge = Gauge::new("obs.test.gauge");
        TEST_GAUGE.set(7);
        TEST_GAUGE.add(-3);
        assert_eq!(TEST_GAUGE.get(), 4);
        assert!(gauges_snapshot().contains(&("obs.test.gauge", 4)));
        set_enabled_override(None);
    }

    #[test]
    fn disabled_instruments_record_nothing() {
        let _guard = enablement_lock();
        set_enabled_override(Some(false));
        static DEAD_COUNTER: Counter = Counter::new("obs.test.dead");
        DEAD_COUNTER.incr();
        assert_eq!(DEAD_COUNTER.get(), 0);
        let before = histograms_snapshot()
            .iter()
            .find(|(name, _)| *name == "obs.test.dead_span")
            .map(|(_, hist)| hist.count());
        {
            let _span = span("obs.test.dead_span");
        }
        let after = histograms_snapshot()
            .iter()
            .find(|(name, _)| *name == "obs.test.dead_span")
            .map(|(_, hist)| hist.count());
        assert_eq!(before, after);
        set_enabled_override(None);
    }

    #[test]
    fn spans_nest_and_record_once_per_guard() {
        let _guard = enablement_lock();
        set_enabled_override(Some(true));
        let count_of = |name: &str| {
            histograms_snapshot()
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, hist)| hist.count())
                .unwrap_or(0)
        };
        let outer_before = count_of("obs.test.outer");
        let inner_before = count_of("obs.test.inner");
        {
            let _outer = span("obs.test.outer");
            {
                let _inner = span("obs.test.inner");
                // Nested same-name spans record independently too.
                let _again = span("obs.test.inner");
            }
        }
        assert_eq!(count_of("obs.test.outer"), outer_before + 1);
        assert_eq!(count_of("obs.test.inner"), inner_before + 2);
        set_enabled_override(None);
    }

    #[test]
    fn extreme_durations_do_not_overflow() {
        let _guard = enablement_lock();
        set_enabled_override(Some(true));
        record_duration("obs.test.overflow", u64::MAX);
        record_duration("obs.test.overflow", 0);
        let (_, hist) = histograms_snapshot()
            .into_iter()
            .find(|(name, _)| *name == "obs.test.overflow")
            .expect("histogram registered");
        assert_eq!(hist.quantile(1.0), u64::MAX);
        set_enabled_override(None);
    }

    #[test]
    fn exposition_renders_exact_lines_from_explicit_snapshots() {
        let mut hist = Histogram::new();
        hist.record(10);
        hist.record(20);
        let lines = render_prometheus(
            &[("chase.rounds", 12)],
            &[("server.runnable", 3)],
            &[("server.request.assert", hist)],
        );
        assert_eq!(
            lines,
            vec![
                "# TYPE ntgd_chase_rounds counter",
                "ntgd_chase_rounds_total 12",
                "# TYPE ntgd_server_runnable gauge",
                "ntgd_server_runnable 3",
                "# TYPE ntgd_server_request_assert_ns histogram",
                "ntgd_server_request_assert_ns_bucket{le=\"10\"} 1",
                "ntgd_server_request_assert_ns_bucket{le=\"20\"} 2",
                "ntgd_server_request_assert_ns_bucket{le=\"+Inf\"} 2",
                "ntgd_server_request_assert_ns_sum 30",
                "ntgd_server_request_assert_ns_count 2",
                "ntgd_server_request_assert_ns{quantile=\"0.5\"} 10",
                "ntgd_server_request_assert_ns{quantile=\"0.9\"} 20",
                "ntgd_server_request_assert_ns{quantile=\"0.99\"} 20",
            ]
        );
    }

    #[test]
    fn concurrent_recording_is_safe_and_lossless() {
        let _guard = enablement_lock();
        set_enabled_override(Some(true));
        static SHARED: Counter = Counter::new("obs.test.shared");
        let before = SHARED.get();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        SHARED.incr();
                        let _span = span("obs.test.shared_span");
                    }
                });
            }
        });
        assert_eq!(SHARED.get(), before + 4000);
        set_enabled_override(None);
    }
}
