//! An optional structured JSON-lines event log.
//!
//! Off unless `NTGD_LOG` names a sink — a file path (appended) or the
//! literal `stderr`.  `NTGD_LOG_LEVEL` (`debug` | `info` | `warn` |
//! `error`, default `info`) filters events below the threshold.  One event
//! is one line of JSON: `ts_ms` (Unix milliseconds), `level`, `event`,
//! then the caller's fields in order.  Logging is observability, not
//! control flow: no engine decision reads the log or its configuration.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Event severities, ordered so `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-phase chatter; off by default.
    Debug,
    /// Normal operational events (the default threshold).
    Info,
    /// Degraded-but-running conditions (accept backoff, budget warnings).
    Warn,
    /// Failures.
    Error,
}

impl Level {
    /// The lowercase JSON label.
    pub fn label(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a `NTGD_LOG_LEVEL` value (case-insensitive).
    pub fn parse(text: &str) -> Option<Level> {
        match text.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// One field value; [`From`] conversions keep call sites terse.
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// Rendered as a JSON string (escaped).
    Str(String),
    /// Rendered as a bare unsigned integer.
    U64(u64),
    /// Rendered as a bare signed integer.
    I64(i64),
    /// Rendered as a bare float.
    F64(f64),
    /// Rendered as `true`/`false`.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(value: &str) -> FieldValue {
        FieldValue::Str(value.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(value: String) -> FieldValue {
        FieldValue::Str(value)
    }
}

impl From<u64> for FieldValue {
    fn from(value: u64) -> FieldValue {
        FieldValue::U64(value)
    }
}

impl From<usize> for FieldValue {
    fn from(value: usize) -> FieldValue {
        FieldValue::U64(value as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(value: i64) -> FieldValue {
        FieldValue::I64(value)
    }
}

impl From<f64> for FieldValue {
    fn from(value: f64) -> FieldValue {
        FieldValue::F64(value)
    }
}

impl From<bool> for FieldValue {
    fn from(value: bool) -> FieldValue {
        FieldValue::Bool(value)
    }
}

enum Sink {
    Stderr,
    File(Mutex<std::fs::File>),
}

fn sink() -> Option<&'static Sink> {
    static SINK: OnceLock<Option<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        let target = std::env::var("NTGD_LOG").ok()?;
        let target = target.trim();
        if target.is_empty() {
            return None;
        }
        if target == "stderr" {
            return Some(Sink::Stderr);
        }
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(target)
            .ok()
            .map(|file| Sink::File(Mutex::new(file)))
    })
    .as_ref()
}

/// The configured threshold (`NTGD_LOG_LEVEL`, default [`Level::Info`]).
pub fn threshold() -> Level {
    static THRESHOLD: OnceLock<Level> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("NTGD_LOG_LEVEL")
            .ok()
            .and_then(|value| Level::parse(&value))
            .unwrap_or(Level::Info)
    })
}

/// Whether an event at `level` would be written (a sink is configured and
/// the level clears the threshold) — lets callers skip building fields.
pub fn log_enabled(level: Level) -> bool {
    level >= threshold() && sink().is_some()
}

fn escape_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders one event as its JSON line (no trailing newline).  Pure, so
/// wire-format tests can assert exact bytes.
pub fn format_event(ts_ms: u64, level: Level, event: &str, fields: &[(&str, FieldValue)]) -> String {
    let mut line = String::with_capacity(96);
    let _ = write!(line, "{{\"ts_ms\":{ts_ms},\"level\":\"{}\"", level.label());
    line.push_str(",\"event\":\"");
    escape_into(&mut line, event);
    line.push('"');
    for (key, value) in fields {
        line.push_str(",\"");
        escape_into(&mut line, key);
        line.push_str("\":");
        match value {
            FieldValue::Str(text) => {
                line.push('"');
                escape_into(&mut line, text);
                line.push('"');
            }
            FieldValue::U64(n) => {
                let _ = write!(line, "{n}");
            }
            FieldValue::I64(n) => {
                let _ = write!(line, "{n}");
            }
            FieldValue::F64(x) => {
                let _ = write!(line, "{x}");
            }
            FieldValue::Bool(b) => {
                let _ = write!(line, "{b}");
            }
        }
    }
    line.push('}');
    line
}

/// Writes one structured event to the configured sink; a no-op when no
/// sink is configured or `level` is below the threshold.
pub fn log_event(level: Level, event: &str, fields: &[(&str, FieldValue)]) {
    if !log_enabled(level) {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|elapsed| elapsed.as_millis() as u64)
        .unwrap_or(0);
    let mut line = format_event(ts_ms, level, event, fields);
    line.push('\n');
    match sink() {
        Some(Sink::Stderr) => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
        Some(Sink::File(file)) => {
            let _ = file.lock().unwrap().write_all(line.as_bytes());
        }
        None => {}
    }
}

/// A token bucket of one: [`RateLimit::allow`] passes at most once per
/// interval, so a tight failure loop (accept backoff) cannot flood the
/// log.  Declare as a `static` next to the event it limits.
pub struct RateLimit {
    interval: Duration,
    last: Mutex<Option<Instant>>,
}

impl RateLimit {
    /// A limiter passing one event per `interval`.
    pub const fn new(interval: Duration) -> RateLimit {
        RateLimit {
            interval,
            last: Mutex::new(None),
        }
    }

    /// Whether the caller may emit now; records the emission when yes.
    pub fn allow(&self) -> bool {
        let mut last = self.last.lock().unwrap();
        match *last {
            Some(at) if at.elapsed() < self.interval => false,
            _ => {
                *last = Some(Instant::now());
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse(" warning "), Some(Level::Warn));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn events_format_as_one_json_line() {
        let line = format_event(
            1234,
            Level::Warn,
            "slow_request",
            &[
                ("verb", "assert".into()),
                ("session", 7u64.into()),
                ("duration_ms", 12.5f64.into()),
                ("ok", true.into()),
            ],
        );
        assert_eq!(
            line,
            "{\"ts_ms\":1234,\"level\":\"warn\",\"event\":\"slow_request\",\
             \"verb\":\"assert\",\"session\":7,\"duration_ms\":12.5,\"ok\":true}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let line = format_event(
            0,
            Level::Error,
            "accept_error",
            &[("detail", "a \"quoted\"\nline\u{1}".into())],
        );
        assert_eq!(
            line,
            "{\"ts_ms\":0,\"level\":\"error\",\"event\":\"accept_error\",\
             \"detail\":\"a \\\"quoted\\\"\\nline\\u0001\"}"
        );
    }

    #[test]
    fn rate_limit_passes_once_per_interval() {
        let limit = RateLimit::new(Duration::from_secs(3600));
        assert!(limit.allow());
        assert!(!limit.allow());
        let open = RateLimit::new(Duration::ZERO);
        assert!(open.allow());
        assert!(open.allow());
    }
}
