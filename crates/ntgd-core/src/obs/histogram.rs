//! A constant-memory, HDR-style log-bucketed latency histogram.
//!
//! Values (nanoseconds) are bucketed into 32 sub-buckets per power of two,
//! so any recorded value is reproduced by [`Histogram::quantile`] with at
//! most ~3.2% relative error while the whole histogram is one fixed
//! `Vec<u64>` — recording is O(1) and allocation-free no matter how many
//! samples a load run produces.  No dependencies: the workspace is offline.

/// Sub-bucket resolution: 2^5 buckets per octave (≈3.2% worst-case error).
const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range (highest index is
/// `bucket(u64::MAX)` = `(63 - SUB_BITS + 1) * SUBS + SUBS - 1`).
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS;

/// A log-bucketed histogram of `u64` samples (latencies in nanoseconds).
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket a value lands in.
fn bucket(value: u64) -> usize {
    if value < SUBS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    let sub = ((value >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    octave * SUBS + sub
}

/// The largest value mapping to `index` (what quantiles report, so the
/// estimate errs pessimistically — never below a recorded latency's bucket).
fn bucket_upper(index: usize) -> u64 {
    if index < SUBS {
        return index as u64;
    }
    let octave = (index / SUBS) as u32;
    let sub = (index % SUBS) as u64;
    let msb = octave + SUB_BITS - 1;
    let low = (1u64 << msb) + (sub << (msb - SUB_BITS));
    // The very top bucket's upper bound is u64::MAX; saturate instead of
    // overflowing the add.
    low.saturating_add((1u64 << (msb - SUB_BITS)) - 1)
}

impl Histogram {
    /// An empty histogram (~15 KiB, fixed).
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (for mean latency / throughput ratios).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact maximum recorded sample (not bucket-rounded).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in [0, 1]: the upper bound of the bucket
    /// holding the ⌈q·count⌉-th smallest sample (≤ ~3.2% above the true
    /// value), clamped to the exact max.  0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket_count) in self.counts.iter().enumerate() {
            seen += bucket_count;
            if seen >= rank {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs in ascending
    /// order (the Prometheus-style exposition in [`crate::obs`] renders
    /// these as cumulative `_bucket` lines).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count != 0)
            .map(|(index, &count)| (bucket_upper(index), count))
    }

    /// Merges another histogram into this one (per-thread histograms are
    /// merged into the per-verb report).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn small_values_are_exact() {
        let mut hist = Histogram::new();
        for v in 0..32u64 {
            hist.record(v);
        }
        assert_eq!(hist.count(), 32);
        assert_eq!(hist.quantile(0.0), 0);
        assert_eq!(hist.quantile(1.0), 31);
        assert_eq!(hist.max(), 31);
    }

    #[test]
    fn quantiles_are_within_the_bucket_error_bound() {
        let mut hist = Histogram::new();
        let mut rng = StdRng::seed_from_u64(9);
        let mut samples: Vec<u64> = (0..10_000)
            .map(|_| rng.gen_range(100u64..50_000_000))
            .collect();
        for &s in &samples {
            hist.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
            let exact = samples[rank] as f64;
            let estimate = hist.quantile(q) as f64;
            assert!(
                estimate >= exact * 0.999 && estimate <= exact * 1.04,
                "q{q}: estimate {estimate} vs exact {exact}"
            );
        }
        assert_eq!(hist.max(), *samples.last().unwrap());
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut all = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for v in [3u64, 700, 12_345, 9_999_999, 42] {
            all.record(v);
            if v % 2 == 0 {
                left.record(v)
            } else {
                right.record(v)
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert_eq!(left.sum(), all.sum());
        assert_eq!(left.max(), all.max());
        for q in [0.25, 0.5, 0.75, 1.0] {
            assert_eq!(left.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn extremes_do_not_overflow_the_bucket_map() {
        let mut hist = Histogram::new();
        hist.record(0);
        hist.record(u64::MAX);
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.quantile(1.0), u64::MAX);
    }
}
