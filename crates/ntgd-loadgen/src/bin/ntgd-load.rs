//! `ntgd-load`: the load-test harness for `ntgd-serve`.
//!
//! ```text
//! ntgd-load --spec <file> [options]
//!   --spec <file>         workload spec (docs/WORKLOAD_SPEC.md); required
//!   --seed <n>            override the spec's seed
//!   --sessions <n>        override the spec's session count
//!   --addr <host:port>    drive an external ntgd-serve (default: in-process)
//!   --bench               also run a caches-off server and record per-verb
//!                         speedups (in-process only)
//!   --transport-bench     run the evented and the threaded connection layer
//!                         back to back (both cached, in-process only) and
//!                         record the total-wall speedup of evented vs
//!                         threaded
//!   --rounds <n>          repeat runs and report the median (default 1,
//!                         or 5 with --bench/--transport-bench;
//!                         env NTGD_LOAD_ROUNDS)
//!   --out <path>          report file (default BENCH_server.json; "-" for
//!                         stdout only)
//!   --slo [verb:]q=<dur>  latency SLO, e.g. p99=5ms or assert:max=50ms;
//!                         repeatable; violations exit 3
//!   --report-only         print SLO violations but exit 0 (CI smoke mode)
//!   --print-ops           dump the generated operation stream and exit
//! ```
//!
//! A run prints a human summary to stdout and writes the JSON report (see
//! `docs/OPERATIONS.md` for examples; `docs/WORKLOAD_SPEC.md` explains how
//! a committed spec + seed reproduces a report's operation stream exactly).

use std::process::ExitCode;

use ntgd_loadgen::driver::{self, ServerMode};
use ntgd_loadgen::report::{self, RunReport, SloRule};
use ntgd_loadgen::{generate, WorkloadSpec};
use ntgd_server::Transport;

struct Args {
    spec_path: String,
    seed: Option<u64>,
    sessions: Option<usize>,
    addr: Option<String>,
    bench: bool,
    transport_bench: bool,
    rounds: Option<usize>,
    out: String,
    slos: Vec<SloRule>,
    report_only: bool,
    print_ops: bool,
}

fn usage() -> &'static str {
    "usage: ntgd-load --spec <file> [--seed N] [--sessions N] [--addr host:port] \
     [--bench | --transport-bench] [--rounds N] [--out path] \
     [--slo [verb:]metric=duration]... [--report-only] [--print-ops]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        spec_path: String::new(),
        seed: None,
        sessions: None,
        addr: None,
        bench: false,
        transport_bench: false,
        rounds: None,
        out: "BENCH_server.json".to_owned(),
        slos: Vec::new(),
        report_only: false,
        print_ops: false,
    };
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        let mut value = |flag: &str| raw.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--spec" => args.spec_path = value("--spec")?,
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|_| "--seed needs a 64-bit integer".to_owned())?,
                )
            }
            "--sessions" => {
                let n: usize = value("--sessions")?
                    .parse()
                    .map_err(|_| "--sessions needs a positive integer".to_owned())?;
                if n == 0 {
                    return Err("--sessions needs a positive integer".to_owned());
                }
                args.sessions = Some(n);
            }
            "--addr" => args.addr = Some(value("--addr")?),
            "--bench" => args.bench = true,
            "--transport-bench" => args.transport_bench = true,
            "--rounds" => {
                let n: usize = value("--rounds")?
                    .parse()
                    .map_err(|_| "--rounds needs a positive integer".to_owned())?;
                if n == 0 {
                    return Err("--rounds needs a positive integer".to_owned());
                }
                args.rounds = Some(n);
            }
            "--out" => args.out = value("--out")?,
            "--slo" => args.slos.push(SloRule::parse(&value("--slo")?)?),
            "--report-only" => args.report_only = true,
            "--print-ops" => args.print_ops = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.spec_path.is_empty() {
        return Err("--spec is required".to_owned());
    }
    if (args.bench || args.transport_bench) && args.addr.is_some() {
        return Err("--bench/--transport-bench need an in-process server; drop --addr".to_owned());
    }
    if args.bench && args.transport_bench {
        return Err("--bench and --transport-bench are mutually exclusive".to_owned());
    }
    if args.rounds.is_none() {
        if let Ok(rounds) = std::env::var("NTGD_LOAD_ROUNDS") {
            args.rounds = Some(
                rounds
                    .parse()
                    .map_err(|_| "NTGD_LOAD_ROUNDS needs a positive integer".to_owned())?,
            );
        }
    }
    Ok(args)
}

/// Runs `rounds` fresh rounds against `mode` (or the external address) and
/// returns every round's report.  In-process targets get a fresh server per
/// round so registry state never leaks across rounds — and each round's
/// server is gracefully shut down afterwards (acceptor, pollers and live
/// connections joined), so a many-round run holds one server at a time
/// instead of leaking a thread and listener per round.
fn run_rounds(
    workload: &ntgd_loadgen::Workload,
    addr: &Option<String>,
    mode: ServerMode,
    rounds: usize,
    transport: Option<Transport>,
) -> Result<Vec<RunReport>, String> {
    (0..rounds)
        .map(|_| match addr {
            Some(addr) => driver::run(workload, addr),
            None => {
                let server = match transport {
                    Some(transport) => driver::spawn_server_on(mode, transport),
                    None => driver::spawn_server(mode),
                }
                .map_err(|e| format!("cannot spawn server: {e}"))?;
                let report = driver::run(workload, server.addr());
                server
                    .shutdown()
                    .map_err(|e| format!("server shutdown failed: {e}"))?;
                report
            }
        })
        .collect()
}

/// The round whose wall time is the median (the report latencies come from
/// one coherent round, not a mix).
fn median_round(rounds: Vec<RunReport>) -> RunReport {
    let mut indexed: Vec<(u64, usize)> = rounds
        .iter()
        .enumerate()
        .map(|(i, r)| (r.wall_ns, i))
        .collect();
    indexed.sort_unstable();
    let middle = indexed[(indexed.len() - 1) / 2].1;
    rounds.into_iter().nth(middle).expect("non-empty rounds")
}

fn real_main() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let mut spec = WorkloadSpec::parse_file(&args.spec_path)?;
    if let Some(seed) = args.seed {
        spec.seed = seed;
    }
    if let Some(sessions) = args.sessions {
        spec.sessions = sessions;
    }
    let workload = generate(&spec);
    if args.print_ops {
        print!("{}", workload.render());
        println!("# fingerprint={:#018x}", workload.fingerprint());
        return Ok(ExitCode::SUCCESS);
    }
    let rounds = args
        .rounds
        .unwrap_or(if args.bench || args.transport_bench {
            5
        } else {
            1
        });
    println!(
        "ntgd-load: workload {} (family {}, seed {}): {} sessions x {} ops, {} round(s){}",
        spec.name,
        spec.family,
        spec.seed,
        spec.sessions,
        workload.sessions[0].len(),
        rounds,
        if args.bench {
            " + caches-off baseline"
        } else if args.transport_bench {
            " + threaded-transport baseline"
        } else {
            ""
        },
    );
    // --transport-bench pins the measured run to the evented transport;
    // everything else follows NTGD_TRANSPORT (default evented).
    let pinned = args.transport_bench.then_some(Transport::Evented);
    let cached = run_rounds(&workload, &args.addr, ServerMode::Cached, rounds, pinned)?;
    let speedups = if args.bench {
        let uncached = run_rounds(&workload, &args.addr, ServerMode::FromScratch, rounds, None)?;
        Some(report::speedups(&cached, &uncached))
    } else if args.transport_bench {
        let threaded = run_rounds(
            &workload,
            &args.addr,
            ServerMode::Cached,
            rounds,
            Some(Transport::Threaded),
        )?;
        Some(report::transport_speedups(&cached, &threaded))
    } else {
        None
    };
    let chosen = median_round(cached);
    for verb in &chosen.verbs {
        println!(
            "  {:<10} {:>6} reqs  p50 {:>8.1}us  p99 {:>8.1}us  max {:>8.1}us",
            verb.verb.label(),
            verb.hist.count(),
            verb.hist.quantile(0.5) as f64 / 1e3,
            verb.hist.quantile(0.99) as f64 / 1e3,
            verb.hist.max() as f64 / 1e3,
        );
    }
    println!(
        "  total      {:>6} reqs  {:.1} ops/s over {:.1} ms",
        chosen.requests,
        chosen.ops_per_sec(),
        chosen.wall_ns as f64 / 1e6
    );
    // Server-observed per-verb counts and p99 from the METRICS scrape; a
    // count that disagrees with the client's is flagged — it means requests
    // were lost, double-counted, or a foreign client shared the window.
    for server in &chosen.server_verbs {
        let client_count = chosen
            .verb(server.verb)
            .map(|v| v.hist.count())
            .unwrap_or(0);
        println!(
            "  server     {:<10} {:>6} reqs  p99 {:>8.1}us{}",
            server.verb.label(),
            server.requests,
            server.p99_ns as f64 / 1e3,
            if server.requests == client_count {
                String::new()
            } else {
                format!("  DRIFT (client observed {client_count})")
            },
        );
    }
    if let Some(speedups) = &speedups {
        let baseline = if args.transport_bench {
            "vs threaded transport"
        } else {
            "vs caches-off"
        };
        for (label, ratio) in &speedups.verbs {
            println!("  speedup    {label:<10} {ratio:.1}x {baseline}");
        }
        println!("  speedup    total      {:.1}x {baseline}", speedups.total);
    }
    let command = format!(
        "cargo run --release -p ntgd-loadgen --bin ntgd-load -- --spec {}{}{}{}{}",
        args.spec_path,
        match args.sessions {
            Some(n) => format!(" --sessions {n}"),
            None => String::new(),
        },
        if args.bench { " --bench" } else { "" },
        if args.transport_bench {
            " --transport-bench"
        } else {
            ""
        },
        match args.rounds {
            Some(n) => format!(" --rounds {n}"),
            None => String::new(),
        }
    );
    let json = report::render_json(&chosen, &command, spec.seed, speedups.as_ref());
    if args.out == "-" {
        print!("{json}");
    } else {
        std::fs::write(&args.out, &json).map_err(|e| format!("cannot write {}: {e}", args.out))?;
        println!("wrote {}", args.out);
    }
    let violations: Vec<String> = args
        .slos
        .iter()
        .flat_map(|slo| slo.check(&chosen))
        .collect();
    for violation in &violations {
        eprintln!("ntgd-load: {violation}");
    }
    if !violations.is_empty() && !args.report_only {
        return Ok(ExitCode::from(3));
    }
    if !violations.is_empty() {
        println!(
            "ntgd-load: {} SLO violation(s) ignored (--report-only)",
            violations.len()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("ntgd-load: {message}\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
