//! # ntgd-loadgen
//!
//! Spec-driven workload generation and a latency-SLO load harness for
//! `ntgd-serve` — the measurement side of the ROADMAP's "production scale"
//! goal.  Three layers, each usable on its own:
//!
//! * [`spec`]: a declarative [`WorkloadSpec`] parsed
//!   from a `key = value` file (format reference:
//!   `docs/WORKLOAD_SPEC.md`) describing program shape (chain / star /
//!   existential / disjunctive rule templates, predicate arity,
//!   constant-pool size), session count, fact-arrival distribution
//!   (uniform or zipf), `ASSERT` batch sizes, retract rate and the
//!   query/`MODELS` mix.  Malformed specs are rejected with line and field
//!   diagnostics.
//! * [`generator`]: expands a spec into per-session protocol streams.
//!   Generation is **seed-deterministic**: the same spec + seed produces a
//!   byte-identical operation stream on every run, machine and thread
//!   count, so any report is replayable from its spec alone
//!   (`tests/determinism.rs` pins this, fingerprint included).
//! * [`driver`] + [`report`]: N client threads over real TCP against an
//!   in-process or external `ntgd-serve`, per-request latencies in
//!   constant-memory log-bucketed [`histogram::Histogram`]s, and a
//!   per-verb throughput/p50/p90/p99/max report rendered to
//!   `BENCH_server.json` — the same `"name"`/`"speedup"` row format
//!   `bench_gate` (in `ntgd-bench`) already guards, plus `--slo` rules
//!   (`p99=5ms`, `assert:max=50ms`) with a non-zero exit for CI.
//!
//! The `ntgd-load` binary ties the layers together; `ntgd-load --help`
//! and `docs/OPERATIONS.md` document the flags.  The crate is std-only,
//! like the rest of the workspace (the PRNG is the vendored `rand`).

pub mod driver;
pub mod generator;
pub mod histogram;
pub mod report;
pub mod spec;

pub use driver::{
    fetch_server_metrics, fetch_server_requests, run, spawn_server, spawn_server_on, LoadServer,
    ServerMode, ServerVerbSample,
};
pub use generator::{generate, Operation, Verb, Workload};
pub use histogram::Histogram;
pub use report::{
    render_json, speedups, transport_speedups, RunReport, ServerSpeedups, ServerVerbReport,
    SloRule, VerbReport,
};
pub use spec::{Distribution, Family, SpecError, WorkloadSpec};
