//! Re-export of the latency histogram, which now lives in
//! [`ntgd_core::obs::histogram`] so the server's own instrumentation and
//! this load harness share one implementation (same buckets, same error
//! bound — a scraped `METRICS` quantile and a client-side quantile are
//! directly comparable).  The loadgen API is unchanged: `Histogram` is
//! still reachable as `ntgd_loadgen::histogram::Histogram`.

pub use ntgd_core::obs::histogram::Histogram;
