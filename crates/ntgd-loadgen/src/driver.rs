//! The load driver: real TCP clients against a real `ntgd-serve`.
//!
//! [`run`] spawns one client thread per session, synchronises them on a
//! barrier (connections and the `READY` banner are established *before* the
//! clock starts), pumps each session's operation stream request-by-request,
//! and records one latency sample per request into per-thread log-bucketed
//! histograms ([`crate::histogram::Histogram`]) that are merged into the
//! per-verb report afterwards — the measurement loop allocates nothing per
//! request beyond the request line itself.
//!
//! The target is either an external server (`ntgd-load --addr host:port`) or
//! an in-process one ([`spawn_server`]): the same serving loop the
//! `ntgd-serve` binary runs, on an OS-assigned loopback port.  In-process
//! targets are what `--bench` uses, since it must control the server's
//! caching configuration ([`ServerMode`]) — and what `--transport-bench`
//! uses via [`spawn_server_on`], which pins the connection transport.  The
//! returned [`LoadServer`] owns the server's [`ServeHandle`], so each
//! `--rounds` round shuts its server down cleanly instead of leaking an
//! acceptor thread and listener per round.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use ntgd_server::{serve, BaseRegistry, ServeHandle, SessionConfig, Transport};

use crate::generator::{Verb, Workload};
use crate::histogram::Histogram;
use crate::report::{RunReport, ServerVerbReport, VerbReport};

/// Caching posture of an in-process target server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerMode {
    /// Production configuration: shared-base registry on, incremental
    /// `MODELS` on — what `ntgd-serve` runs by default.
    Cached,
    /// Every session rebuilds everything from scratch (`NTGD_SHARED_BASE=0`
    /// + `NTGD_SMS_INCREMENTAL=0` equivalent): the `--bench` baseline.
    FromScratch,
}

/// An in-process target server: its address plus the owned
/// [`ServeHandle`].  [`LoadServer::shutdown`] stops accepting, closes the
/// live connections and joins every server thread; dropping without it
/// leaves the server running detached for the life of the process (what
/// one-shot runs rely on).
pub struct LoadServer {
    addr: String,
    handle: Option<ServeHandle>,
}

impl LoadServer {
    /// The loopback address clients connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The server's connection counters (what `STATS conn` serves).
    pub fn conn_stats(&self) -> Option<ntgd_server::ConnSnapshot> {
        self.handle.as_ref().map(ServeHandle::conn_stats)
    }

    /// Gracefully stops the server and joins its threads.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        match self.handle.take() {
            Some(handle) => handle.shutdown(),
            None => Ok(()),
        }
    }
}

/// Starts an in-process server on an OS-assigned loopback port, on the
/// environment-selected transport (`NTGD_TRANSPORT`, default evented).
pub fn spawn_server(mode: ServerMode) -> std::io::Result<LoadServer> {
    spawn_server_on(mode, Transport::from_env())
}

/// Starts an in-process server on an explicit transport (what
/// `--transport-bench` uses to compare evented vs threaded on one process).
pub fn spawn_server_on(mode: ServerMode, transport: Transport) -> std::io::Result<LoadServer> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let config = SessionConfig {
        incremental_models: mode == ServerMode::Cached,
        base_registry: (mode == ServerMode::Cached).then(|| Arc::new(BaseRegistry::new())),
        transport,
        ..SessionConfig::default()
    };
    let handle = serve(listener, config)?;
    Ok(LoadServer {
        addr: handle.addr().to_string(),
        handle: Some(handle),
    })
}

/// One connected protocol client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
}

impl Client {
    fn connect(addr: &str) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        // Requests are single small lines; without nodelay the kernel's
        // batching would dominate every latency sample.
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?,
        );
        let mut client = Client {
            reader,
            writer: stream,
            line: String::new(),
        };
        let banner = client.read_line()?;
        if !banner.starts_with("READY") {
            return Err(format!("expected READY banner, got {banner:?}"));
        }
        Ok(client)
    }

    fn read_line(&mut self) -> Result<&str, String> {
        self.line.clear();
        match self.reader.read_line(&mut self.line) {
            Ok(0) => Err("server closed the connection".to_owned()),
            Ok(_) => Ok(self.line.trim_end()),
            Err(e) => Err(format!("read failed: {e}")),
        }
    }

    /// Sends one request and reads to its `OK`/`ERR` terminator; returns the
    /// terminator line.
    fn request(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .map_err(|e| format!("write failed: {e}"))?;
        loop {
            let line = self.read_line()?;
            if line.starts_with("OK") || line.starts_with("ERR") {
                return Ok(line.to_owned());
            }
        }
    }
}

/// Per-thread measurement state: one histogram per verb.
struct ThreadStats {
    hists: Vec<Histogram>,
    requests: u64,
    errors: Vec<String>,
}

fn verb_index(verb: Verb) -> usize {
    Verb::ALL
        .iter()
        .position(|&v| v == verb)
        .expect("known verb")
}

/// Drives a workload against a serving address and merges the per-session
/// measurements into one report.  Any `ERR` response fails the run — the
/// generator only emits valid streams, so an error means the server (or the
/// spec's budgets) broke under this workload.
pub fn run(workload: &Workload, addr: &str) -> Result<RunReport, String> {
    let sessions = workload.sessions.len();
    // Scrape the server's cumulative per-verb metrics before the window so
    // the after-scrape can be reduced to window-scoped deltas (the obs
    // registry is process-wide — in-process rounds and bench baselines all
    // share it).
    let metrics_before = fetch_server_metrics(addr);
    // Connect (and consume the banner) before the clock starts, so the
    // measured window contains requests only.
    let mut clients = Vec::with_capacity(sessions);
    for _ in 0..sessions {
        clients.push(Client::connect(addr)?);
    }
    let barrier = Arc::new(Barrier::new(sessions + 1));
    let mut wall_ns = 0u64;
    let stats: Vec<ThreadStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .into_iter()
            .zip(&workload.sessions)
            .map(|(mut client, ops)| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut stats = ThreadStats {
                        hists: (0..Verb::ALL.len()).map(|_| Histogram::new()).collect(),
                        requests: 0,
                        errors: Vec::new(),
                    };
                    barrier.wait();
                    for op in ops {
                        let started = Instant::now();
                        match client.request(&op.line) {
                            Ok(terminator) if terminator.starts_with("OK") => {
                                let elapsed =
                                    started.elapsed().as_nanos().min(u128::from(u64::MAX));
                                stats.hists[verb_index(op.verb)].record(elapsed as u64);
                                stats.requests += 1;
                            }
                            Ok(terminator) => {
                                stats.errors.push(format!("{} -> {terminator}", op.line));
                                break;
                            }
                            Err(error) => {
                                stats.errors.push(format!("{} -> {error}", op.line));
                                break;
                            }
                        }
                    }
                    let _ = client.request("QUIT");
                    stats
                })
            })
            .collect();
        // All sessions are connected and parked on the barrier: releasing it
        // starts the measured window, the last join ends it.
        let started = Instant::now();
        barrier.wait();
        let stats: Vec<ThreadStats> = handles
            .into_iter()
            .map(|handle| handle.join().expect("session thread panicked"))
            .collect();
        wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        stats
    });
    let errors: Vec<String> = stats
        .iter()
        .flat_map(|s| s.errors.iter().cloned())
        .collect();
    if !errors.is_empty() {
        return Err(format!(
            "{} session(s) failed; first: {}",
            errors.len(),
            errors[0]
        ));
    }
    let mut verbs = Vec::new();
    for verb in Verb::ALL {
        let mut hist = Histogram::new();
        for thread in &stats {
            hist.merge(&thread.hists[verb_index(verb)]);
        }
        if hist.count() > 0 {
            verbs.push(VerbReport { verb, hist });
        }
    }
    let metrics_after = fetch_server_metrics(addr);
    Ok(RunReport {
        name: workload.name.clone(),
        sessions,
        wall_ns,
        requests: stats.iter().map(|s| s.requests).sum(),
        server_requests: fetch_server_requests(addr),
        verbs,
        server_verbs: server_verb_deltas(metrics_before, metrics_after),
    })
}

/// A per-verb sample parsed from one `METRICS` scrape: the cumulative
/// request count and the p99 wall time of the server's
/// `server.request.<verb>` histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerVerbSample {
    /// Cumulative `..._ns_count` value.
    pub count: u64,
    /// The `{quantile="0.99"}` summary value, nanoseconds.
    pub p99_ns: u64,
}

/// The server's metric label for a workload verb (`RETRACT-TO` is counted
/// as `retract` server-side).
fn server_metric_verb(verb: Verb) -> &'static str {
    match verb {
        Verb::Retract => "retract",
        other => other.label(),
    }
}

/// Folds one exposition line into the per-verb samples (indexed in
/// [`Verb::ALL`] order).  Lines about other instruments are ignored.
fn parse_metric_line(line: &str, samples: &mut [ServerVerbSample]) {
    for (index, &verb) in Verb::ALL.iter().enumerate() {
        let stem = format!("ntgd_server_request_{}_ns", server_metric_verb(verb));
        let Some(rest) = line.strip_prefix(&stem) else {
            continue;
        };
        if let Some(value) = rest.strip_prefix("_count ") {
            if let Ok(count) = value.trim().parse() {
                samples[index].count = count;
            }
        } else if let Some(value) = rest.strip_prefix("{quantile=\"0.99\"} ") {
            if let Ok(p99) = value.trim().parse() {
                samples[index].p99_ns = p99;
            }
        }
    }
}

/// Scrapes a server's `METRICS` exposition (fresh session) and reduces it
/// to the workload verbs' samples, in [`Verb::ALL`] order.  `None` when the
/// server predates the verb or refused it; all-zero samples when
/// observability is disabled (`NTGD_OBS=0`).
pub fn fetch_server_metrics(addr: &str) -> Option<Vec<ServerVerbSample>> {
    let mut client = Client::connect(addr).ok()?;
    client.writer.write_all(b"METRICS\n").ok()?;
    let mut samples = vec![ServerVerbSample::default(); Verb::ALL.len()];
    loop {
        let line = client.read_line().ok()?;
        if line.starts_with("OK") {
            return Some(samples);
        }
        if line.starts_with("ERR") {
            return None;
        }
        let line = line.to_owned();
        parse_metric_line(&line, &mut samples);
    }
}

/// Reduces before/after scrapes to window-scoped per-verb reports: the
/// count delta plus the after-scrape's p99.  Verbs the window never touched
/// are omitted; a failed scrape yields no reports at all.
fn server_verb_deltas(
    before: Option<Vec<ServerVerbSample>>,
    after: Option<Vec<ServerVerbSample>>,
) -> Vec<ServerVerbReport> {
    let (Some(before), Some(after)) = (before, after) else {
        return Vec::new();
    };
    Verb::ALL
        .iter()
        .zip(after.iter().zip(&before))
        .filter(|(_, (after, before))| after.count > before.count)
        .map(|(&verb, (after, before))| ServerVerbReport {
            verb,
            requests: after.count - before.count,
            p99_ns: after.p99_ns,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_lines_parse_counts_and_p99_per_verb() {
        let mut samples = vec![ServerVerbSample::default(); Verb::ALL.len()];
        for line in [
            "# TYPE ntgd_server_request_assert_ns histogram",
            "ntgd_server_request_assert_ns_bucket{le=\"1024\"} 3",
            "ntgd_server_request_assert_ns_sum 2500",
            "ntgd_server_request_assert_ns_count 3",
            "ntgd_server_request_assert_ns{quantile=\"0.5\"} 700",
            "ntgd_server_request_assert_ns{quantile=\"0.99\"} 992",
            "ntgd_server_request_retract_ns_count 2",
            "ntgd_server_request_retract_ns{quantile=\"0.99\"} 50",
            // Non-workload instruments are ignored.
            "ntgd_server_request_ping_ns_count 9",
            "ntgd_chase_rounds_total 12",
        ] {
            parse_metric_line(line, &mut samples);
        }
        assert_eq!(
            samples[verb_index(Verb::Assert)],
            ServerVerbSample {
                count: 3,
                p99_ns: 992
            }
        );
        // RETRACT-TO maps onto the server's "retract" label.
        assert_eq!(
            samples[verb_index(Verb::Retract)],
            ServerVerbSample {
                count: 2,
                p99_ns: 50
            }
        );
        assert_eq!(samples[verb_index(Verb::Query)], ServerVerbSample::default());
    }

    #[test]
    fn server_deltas_are_window_scoped_and_skip_untouched_verbs() {
        let mut before = vec![ServerVerbSample::default(); Verb::ALL.len()];
        before[verb_index(Verb::Assert)] = ServerVerbSample {
            count: 10,
            p99_ns: 400,
        };
        let mut after = before.clone();
        after[verb_index(Verb::Assert)] = ServerVerbSample {
            count: 14,
            p99_ns: 900,
        };
        let deltas = server_verb_deltas(Some(before.clone()), Some(after));
        assert_eq!(
            deltas,
            vec![ServerVerbReport {
                verb: Verb::Assert,
                requests: 4,
                p99_ns: 900
            }]
        );
        assert!(server_verb_deltas(None, Some(before)).is_empty());
    }
}

/// Fetches the process-wide `STAT server_requests` counter from a server
/// (opens a fresh session; the counter includes this very `STATS` request).
pub fn fetch_server_requests(addr: &str) -> Option<u64> {
    let mut client = Client::connect(addr).ok()?;
    client.writer.write_all(b"STATS\n").ok()?;
    loop {
        let line = client.read_line().ok()?.to_owned();
        if let Some(value) = line.strip_prefix("STAT server_requests=") {
            return value.parse().ok();
        }
        if line.starts_with("OK") || line.starts_with("ERR") {
            return None;
        }
    }
}
