//! The declarative workload specification and its parser.
//!
//! A spec is a flat `key = value` file (a TOML subset: `#` comments, blank
//! lines and `[section]` headers are allowed; headers are decorative and
//! carry no meaning).  Every knob has a default, so the smallest valid spec
//! is a single `family = chain` line.  The full format, with a worked
//! example per workload family, is documented in `docs/WORKLOAD_SPEC.md` at
//! the repository root.
//!
//! Parsing is strict by design — an unknown key, a duplicated key, or an
//! out-of-range value is an error carrying the **line number and field
//! name**, never a silently ignored knob: a load report is only reproducible
//! if the spec that produced it cannot be misread.

use std::fmt;

/// The rule-template family a workload instantiates (see
/// [`crate::generator`] for the exact templates).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Transitive-style chain joins: `p_i(X, Y), e(Y, Z, …) -> p_{i+1}(X, Z)`.
    Chain,
    /// A star join: `depth` arm predicates meeting in one `hub(X)` head.
    Star,
    /// A terminating (weakly acyclic) chain of existential hops.
    Existential,
    /// Disjunctive heads (`node(…) -> red(X) | green(X)`); exercised through
    /// `MODELS`, since disjunctive sessions have no chase to `QUERY`.
    Disjunctive,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Family::Chain => write!(f, "chain"),
            Family::Star => write!(f, "star"),
            Family::Existential => write!(f, "existential"),
            Family::Disjunctive => write!(f, "disjunctive"),
        }
    }
}

/// How fact arguments are drawn from the constant pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Every constant equally likely.
    Uniform,
    /// Zipf-distributed ranks (exponent [`WorkloadSpec::zipf_s`]): a few hot
    /// constants dominate, the shape real fact streams have.
    Zipf,
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distribution::Uniform => write!(f, "uniform"),
            Distribution::Zipf => write!(f, "zipf"),
        }
    }
}

/// A parsed, validated workload specification.  Together with its
/// [`seed`](WorkloadSpec::seed) it fully determines the generated operation
/// stream, byte for byte ([`crate::generator::generate`]).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Report label (`name = …`; defaults to `workload`).
    pub name: String,
    /// Rule-template family (`family = chain|star|existential|disjunctive`).
    pub family: Family,
    /// Template depth: chain length, star arms, existential hops, extra
    /// disjunctive layers (`depth = …`, default 3, ≥ 1).
    pub depth: usize,
    /// Arity of the base fact predicate (`arity = …`, default 2, ≥ 2).
    pub arity: usize,
    /// Constant-pool size (`constants = …`, default 64, ≥ 1): fact arguments
    /// are `c0 … c{constants-1}`.
    pub constants: usize,
    /// Facts embedded in the shared `LOAD` payload (`initial_facts = …`,
    /// default 24).  All sessions `LOAD` the same program text, so with the
    /// shared-base registry on they fork one chased base.
    pub initial_facts: usize,
    /// Fact-argument distribution (`distribution = uniform|zipf`).
    pub distribution: Distribution,
    /// Zipf exponent (`zipf_s = …`, default 1.1, > 0; only meaningful with
    /// `distribution = zipf`).
    pub zipf_s: f64,
    /// Concurrent client sessions (`sessions = …`, default 2, ≥ 1).
    pub sessions: usize,
    /// Operations per session after the `LOAD` (`ops = …`, default 32).
    pub ops: usize,
    /// Facts per `ASSERT` batch (`batch = …`, default 4, ≥ 1).
    pub batch: usize,
    /// Probability an operation is a `RETRACT-TO` (`retract_rate = …`,
    /// default 0.1, in [0, 1]).
    pub retract_rate: f64,
    /// Probability an operation is a `QUERY` (`query_rate = …`, default 0.25;
    /// folded into the `MODELS` share for disjunctive programs, which have
    /// no chase to query).
    pub query_rate: f64,
    /// Probability an operation is a `MODELS` request (`models_rate = …`,
    /// default 0).  The remaining mass is `ASSERT`.
    pub models_rate: f64,
    /// The `max=` cap sent with every `MODELS` request (`models_max = …`,
    /// default 8, ≥ 1).
    pub models_max: usize,
    /// PRNG seed (`seed = …`, default 42).  Replaying the same spec file
    /// with the same seed reproduces the operation stream exactly.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            name: "workload".to_owned(),
            family: Family::Chain,
            depth: 3,
            arity: 2,
            constants: 64,
            initial_facts: 24,
            distribution: Distribution::Uniform,
            zipf_s: 1.1,
            sessions: 2,
            ops: 32,
            batch: 4,
            retract_rate: 0.1,
            query_rate: 0.25,
            models_rate: 0.0,
            models_max: 8,
            seed: 42,
        }
    }
}

/// A spec rejection: the offending line (1-based; 0 for whole-spec
/// constraints) and field, plus a human-readable reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number of the offending entry (0 when the error spans
    /// fields, e.g. rates summing past 1).
    pub line: usize,
    /// The field the error is about.
    pub field: String,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "spec: {}: {}", self.field, self.message)
        } else {
            write!(
                f,
                "spec line {}: {}: {}",
                self.line, self.field, self.message
            )
        }
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, field: &str, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        field: field.to_owned(),
        message: message.into(),
    }
}

impl WorkloadSpec {
    /// Parses a spec from its textual form.  See the module documentation
    /// for the format; every error names the line and field it is about.
    pub fn parse(text: &str) -> Result<WorkloadSpec, SpecError> {
        let mut spec = WorkloadSpec::default();
        let mut seen: Vec<(String, usize)> = Vec::new();
        for (index, raw) in text.lines().enumerate() {
            let line_no = index + 1;
            let line = match raw.find('#') {
                Some(hash) => &raw[..hash],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                if line.ends_with(']') {
                    continue; // decorative section header
                }
                return Err(err(line_no, line, "unterminated [section] header"));
            }
            let Some(eq) = line.find('=') else {
                return Err(err(line_no, line, "expected `key = value`"));
            };
            let key = line[..eq].trim();
            let value = line[eq + 1..].trim().trim_matches('"');
            if key.is_empty() {
                return Err(err(line_no, line, "expected `key = value`"));
            }
            if let Some((_, first)) = seen.iter().find(|(k, _)| k == key) {
                return Err(err(
                    line_no,
                    key,
                    format!("duplicate key (first set on line {first})"),
                ));
            }
            seen.push((key.to_owned(), line_no));
            spec.apply(line_no, key, value)?;
        }
        spec.validate(&seen)?;
        Ok(spec)
    }

    /// Reads and parses a spec file (convenience for the `ntgd-load` binary
    /// and tests).
    pub fn parse_file(path: &str) -> Result<WorkloadSpec, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        WorkloadSpec::parse(&text).map_err(|e| e.to_string())
    }

    fn apply(&mut self, line: usize, key: &str, value: &str) -> Result<(), SpecError> {
        match key {
            "name" => {
                if value.is_empty()
                    || !value
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    return Err(err(
                        line,
                        key,
                        format!("expected an identifier, got {value:?}"),
                    ));
                }
                self.name = value.to_owned();
            }
            "family" => {
                self.family = match value {
                    "chain" => Family::Chain,
                    "star" => Family::Star,
                    "existential" => Family::Existential,
                    "disjunctive" => Family::Disjunctive,
                    other => {
                        return Err(err(
                            line,
                            key,
                            format!("expected chain|star|existential|disjunctive, got {other:?}"),
                        ))
                    }
                };
            }
            "distribution" => {
                self.distribution = match value {
                    "uniform" => Distribution::Uniform,
                    "zipf" => Distribution::Zipf,
                    other => {
                        return Err(err(
                            line,
                            key,
                            format!("expected uniform|zipf, got {other:?}"),
                        ))
                    }
                };
            }
            "depth" => self.depth = positive(line, key, value)?,
            "arity" => {
                self.arity = positive(line, key, value)?;
                if self.arity < 2 {
                    return Err(err(line, key, "arity must be at least 2"));
                }
            }
            "constants" => self.constants = positive(line, key, value)?,
            "initial_facts" => self.initial_facts = unsigned(line, key, value)?,
            "sessions" => self.sessions = positive(line, key, value)?,
            "ops" => self.ops = unsigned(line, key, value)?,
            "batch" => self.batch = positive(line, key, value)?,
            "models_max" => self.models_max = positive(line, key, value)?,
            "seed" => {
                self.seed = value.parse::<u64>().map_err(|_| {
                    err(line, key, format!("expected a 64-bit seed, got {value:?}"))
                })?;
            }
            "zipf_s" => {
                self.zipf_s = float(line, key, value)?;
                if !self.zipf_s.is_finite() || self.zipf_s <= 0.0 {
                    return Err(err(line, key, "zipf exponent must be positive"));
                }
            }
            "retract_rate" => self.retract_rate = rate(line, key, value)?,
            "query_rate" => self.query_rate = rate(line, key, value)?,
            "models_rate" => self.models_rate = rate(line, key, value)?,
            other => {
                return Err(err(
                    line,
                    other,
                    "unknown key (see docs/WORKLOAD_SPEC.md for the field list)",
                ))
            }
        }
        Ok(())
    }

    fn validate(&self, seen: &[(String, usize)]) -> Result<(), SpecError> {
        let mix = self.retract_rate + self.query_rate + self.models_rate;
        if mix > 1.0 {
            return Err(err(
                0,
                "retract_rate/query_rate/models_rate",
                format!("rates sum to {mix}, leaving no probability mass for ASSERT"),
            ));
        }
        if self.distribution == Distribution::Uniform {
            if let Some((_, line)) = seen.iter().find(|(k, _)| k == "zipf_s") {
                return Err(err(
                    *line,
                    "zipf_s",
                    "zipf exponent set but distribution is uniform",
                ));
            }
        }
        Ok(())
    }
}

fn unsigned(line: usize, key: &str, value: &str) -> Result<usize, SpecError> {
    value.parse::<usize>().map_err(|_| {
        err(
            line,
            key,
            format!("expected a non-negative integer, got {value:?}"),
        )
    })
}

fn positive(line: usize, key: &str, value: &str) -> Result<usize, SpecError> {
    match unsigned(line, key, value)? {
        0 => Err(err(line, key, "must be at least 1")),
        n => Ok(n),
    }
}

fn float(line: usize, key: &str, value: &str) -> Result<f64, SpecError> {
    value
        .parse::<f64>()
        .map_err(|_| err(line, key, format!("expected a number, got {value:?}")))
}

fn rate(line: usize, key: &str, value: &str) -> Result<f64, SpecError> {
    let rate = float(line, key, value)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(err(
            line,
            key,
            format!("expected a rate in [0, 1], got {value}"),
        ));
    }
    Ok(rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_fills_defaults() {
        let spec = WorkloadSpec::parse("family = star\n").unwrap();
        assert_eq!(spec.family, Family::Star);
        assert_eq!(spec.sessions, 2);
        assert_eq!(spec.seed, 42);
        assert_eq!(WorkloadSpec::parse("").unwrap(), WorkloadSpec::default());
    }

    #[test]
    fn full_spec_parses_with_comments_and_sections() {
        let text = "\
[workload]
name = smoke # trailing comment
family = disjunctive
depth = 2
arity = 3
constants = 10
initial_facts = 5
distribution = zipf
zipf_s = 1.3
sessions = 4
ops = 16
batch = 2
retract_rate = 0.05
query_rate = 0.0
models_rate = 0.4
models_max = 6
seed = 7
";
        let spec = WorkloadSpec::parse(text).unwrap();
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.family, Family::Disjunctive);
        assert_eq!(spec.arity, 3);
        assert_eq!(spec.distribution, Distribution::Zipf);
        assert_eq!(spec.zipf_s, 1.3);
        assert_eq!(spec.seed, 7);
    }

    #[test]
    fn errors_carry_line_and_field() {
        let error = WorkloadSpec::parse("family = chain\nquery_rate = lots\n").unwrap_err();
        assert_eq!(error.line, 2);
        assert_eq!(error.field, "query_rate");
        assert!(error.to_string().starts_with("spec line 2: query_rate:"));

        let error = WorkloadSpec::parse("famly = chain\n").unwrap_err();
        assert_eq!((error.line, error.field.as_str()), (1, "famly"));
        assert!(error.message.contains("unknown key"));

        let error = WorkloadSpec::parse("seed = 1\n\nseed = 2\n").unwrap_err();
        assert_eq!(error.line, 3);
        assert!(error.message.contains("first set on line 1"));

        let error = WorkloadSpec::parse("depth 3\n").unwrap_err();
        assert!(error.message.contains("key = value"));
    }

    #[test]
    fn out_of_range_values_are_rejected() {
        assert!(WorkloadSpec::parse("retract_rate = 1.5\n").is_err());
        assert!(WorkloadSpec::parse("arity = 1\n").is_err());
        assert!(WorkloadSpec::parse("sessions = 0\n").is_err());
        assert!(WorkloadSpec::parse("family = cyclic\n").is_err());
        assert!(WorkloadSpec::parse("distribution = zipf\nzipf_s = 0\n").is_err());
        let error =
            WorkloadSpec::parse("retract_rate = 0.5\nquery_rate = 0.4\nmodels_rate = 0.3\n")
                .unwrap_err();
        assert_eq!(error.line, 0);
        assert!(error.to_string().contains("no probability mass"));
    }

    #[test]
    fn zipf_exponent_requires_zipf_distribution() {
        let error = WorkloadSpec::parse("zipf_s = 1.2\n").unwrap_err();
        assert_eq!(error.field, "zipf_s");
        assert_eq!(error.line, 1);
        assert!(WorkloadSpec::parse("distribution = zipf\nzipf_s = 1.2\n").is_ok());
    }
}
