//! Latency/throughput reports, the `BENCH_server.json` rendering, and the
//! latency-SLO gate.
//!
//! The JSON layout deliberately mirrors `BENCH_matcher.json`: one workload
//! row per line carrying `"name"` and (in `--bench` mode) `"speedup"`
//! fields, which is exactly the subset `ntgd-bench`'s `bench_gate` parses —
//! so the same gate binary guards both baselines.  Rows without a
//! `"speedup"` field (plain, non-comparative runs) are ignored by the gate.

use std::fmt::Write as _;

use crate::generator::Verb;
use crate::histogram::Histogram;

/// Latency statistics of one protocol verb across a run.
#[derive(Clone, Debug)]
pub struct VerbReport {
    /// The verb (report bucket).
    pub verb: Verb,
    /// Merged per-request latency histogram (nanoseconds).
    pub hist: Histogram,
}

/// Server-observed statistics of one verb, scraped from the `METRICS`
/// exposition: the request-count delta across the measured window and the
/// server-side p99 wall time.  The count is the server's own tally of the
/// window (before/after scrape difference, since the exposition is
/// process-cumulative), so it cross-checks the client-observed count —
/// any drift means requests were dropped, double-counted, or a foreign
/// client shared the server during the window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerVerbReport {
    /// The verb (report bucket).
    pub verb: Verb,
    /// Requests the server recorded for this verb during the window.
    pub requests: u64,
    /// Server-observed p99 request wall time, nanoseconds (process
    /// lifetime, not window-scoped — histograms don't subtract).
    pub p99_ns: u64,
}

/// One complete load run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The spec's report label.
    pub name: String,
    /// Concurrent client sessions driven.
    pub sessions: usize,
    /// Wall-clock duration of the whole run (barrier release to last
    /// session finished), nanoseconds.
    pub wall_ns: u64,
    /// Requests sent (and answered `OK`) across all sessions.
    pub requests: u64,
    /// The server's own `STAT server_requests` counter after the run, when
    /// the driver could fetch it (includes the fetching `STATS` request).
    pub server_requests: Option<u64>,
    /// Per-verb statistics, in [`Verb::ALL`] order; verbs with no requests
    /// are omitted.
    pub verbs: Vec<VerbReport>,
    /// Server-observed per-verb statistics from the `METRICS` scrape, in
    /// [`Verb::ALL`] order; empty when the scrape failed (old server, or
    /// `NTGD_OBS=0`) or nothing was recorded.
    pub server_verbs: Vec<ServerVerbReport>,
}

impl RunReport {
    /// Total request throughput over the run's wall time.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.requests as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// The report of one verb, if it occurred.
    pub fn verb(&self, verb: Verb) -> Option<&VerbReport> {
        self.verbs.iter().find(|v| v.verb == verb)
    }
}

/// Picks the median element of an unordered float list (lower middle for
/// even lengths; NaN-free inputs only).
pub fn median(mut values: Vec<f64>) -> f64 {
    assert!(!values.is_empty(), "median of nothing");
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    values[(values.len() - 1) / 2]
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Renders a run (plus optional per-verb and total speedups from a
/// `--bench` comparison) as the `BENCH_server.json` document.
pub fn render_json(
    report: &RunReport,
    command: &str,
    seed: u64,
    speedups: Option<&ServerSpeedups>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"benchmark\": \"ntgd-serve load: workload {} over {} concurrent sessions\",",
        report.name, report.sessions
    );
    let _ = writeln!(out, "  \"command\": \"{command}\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"sessions\": {},", report.sessions);
    if let Some(server_requests) = report.server_requests {
        let _ = writeln!(out, "  \"server_requests\": {server_requests},");
    }
    let _ = writeln!(out, "  \"workloads\": [");
    let mut rows: Vec<String> = Vec::new();
    for verb in &report.verbs {
        let mut row = format!(
            "    {{\"name\": \"{}\", \"requests\": {}, \"mean_us\": {:.1}, \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}",
            verb.verb.label(),
            verb.hist.count(),
            verb.hist.mean() / 1_000.0,
            us(verb.hist.quantile(0.50)),
            us(verb.hist.quantile(0.90)),
            us(verb.hist.quantile(0.99)),
            us(verb.hist.max()),
        );
        if let Some(server) = report.server_verbs.iter().find(|s| s.verb == verb.verb) {
            let _ = write!(
                row,
                ", \"server_requests\": {}, \"server_p99_us\": {:.1}",
                server.requests,
                us(server.p99_ns)
            );
        }
        if let Some(speedups) = speedups {
            if let Some((_, ratio)) = speedups
                .verbs
                .iter()
                .find(|(label, _)| *label == verb.verb.label())
            {
                let _ = write!(row, ", \"speedup\": {ratio:.1}");
            }
        }
        row.push('}');
        rows.push(row);
    }
    let mut total = format!(
        "    {{\"name\": \"total\", \"requests\": {}, \"wall_ms\": {:.1}, \"ops_per_sec\": {:.1}",
        report.requests,
        report.wall_ns as f64 / 1e6,
        report.ops_per_sec(),
    );
    if let Some(speedups) = speedups {
        let _ = write!(total, ", \"speedup\": {:.1}", speedups.total);
    }
    total.push('}');
    rows.push(total);
    let _ = writeln!(out, "{}", rows.join(",\n"));
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Per-verb and total cached-vs-uncached throughput ratios (`--bench`).
#[derive(Clone, Debug, Default)]
pub struct ServerSpeedups {
    /// `(verb label, uncached mean latency / cached mean latency)`.
    pub verbs: Vec<(&'static str, f64)>,
    /// Uncached wall time / cached wall time.
    pub total: f64,
}

/// The verbs whose cached/uncached latency ratio is a meaningful, gateable
/// signal.  Only `MODELS` takes a different code path on the two server
/// modes (incremental grounding vs from-scratch grounding, both
/// compute-dominated, so the ratio is machine-stable).  `ASSERT`, `QUERY`
/// and `RETRACT-TO` execute identical code on both servers — their ratio is
/// definitionally noise — and `LOAD` races: all sessions issue their one
/// `LOAD` simultaneously, so on a fresh server every one of them misses the
/// shared-base registry and builds (first-wins), making the cached mean
/// equal the uncached one by construction.
const GATED_VERBS: [Verb; 1] = [Verb::Models];

/// Computes speedups from per-round cached and uncached reports: per gated
/// verb the ratio of median mean-latencies, overall the ratio of median
/// walls.
pub fn speedups(cached: &[RunReport], uncached: &[RunReport]) -> ServerSpeedups {
    let verb_medians = |rounds: &[RunReport], verb: Verb| -> Option<f64> {
        let means: Vec<f64> = rounds
            .iter()
            .filter_map(|r| r.verb(verb))
            .filter(|v| v.hist.count() > 0)
            .map(|v| v.hist.mean())
            .collect();
        (means.len() == rounds.len()).then(|| median(means))
    };
    let mut verbs = Vec::new();
    for verb in GATED_VERBS {
        if let (Some(fast), Some(slow)) = (verb_medians(cached, verb), verb_medians(uncached, verb))
        {
            verbs.push((verb.label(), slow / fast.max(f64::MIN_POSITIVE)));
        }
    }
    let wall = |rounds: &[RunReport]| median(rounds.iter().map(|r| r.wall_ns as f64).collect());
    ServerSpeedups {
        verbs,
        total: wall(uncached) / wall(cached).max(f64::MIN_POSITIVE),
    }
}

/// Computes the `--transport-bench` comparison: evented vs threaded
/// transport, both fully cached, total-wall ratio only (threaded median
/// wall / evented median wall — above 1.0 the evented loop is faster).
/// Per-verb ratios are definitionally noise here — a request executes
/// identical session code on both transports; only scheduling differs — so
/// no verb rows are emitted and the gateable signal is the end-to-end wall
/// of a sessions ≫ cores workload, where thread-per-connection pays its
/// scheduler price.
pub fn transport_speedups(evented: &[RunReport], threaded: &[RunReport]) -> ServerSpeedups {
    let wall = |rounds: &[RunReport]| median(rounds.iter().map(|r| r.wall_ns as f64).collect());
    ServerSpeedups {
        verbs: Vec::new(),
        total: wall(threaded) / wall(evented).max(f64::MIN_POSITIVE),
    }
}

/// The latency metric an SLO constrains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloMetric {
    /// Median latency.
    P50,
    /// 90th percentile.
    P90,
    /// 99th percentile.
    P99,
    /// Worst recorded latency.
    Max,
}

impl SloMetric {
    fn label(self) -> &'static str {
        match self {
            SloMetric::P50 => "p50",
            SloMetric::P90 => "p90",
            SloMetric::P99 => "p99",
            SloMetric::Max => "max",
        }
    }

    fn of(self, hist: &Histogram) -> u64 {
        match self {
            SloMetric::P50 => hist.quantile(0.50),
            SloMetric::P90 => hist.quantile(0.90),
            SloMetric::P99 => hist.quantile(0.99),
            SloMetric::Max => hist.max(),
        }
    }
}

/// One `--slo` rule: `[verb:]metric=duration` (e.g. `p99=5ms`,
/// `assert:p50=800us`).  Without a verb the rule applies to every verb the
/// run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct SloRule {
    /// Verb label the rule is scoped to, or `None` for all verbs.
    pub verb: Option<String>,
    /// Constrained metric.
    pub metric: SloMetric,
    /// Limit in nanoseconds.
    pub limit_ns: u64,
}

/// Parses a duration literal with a unit suffix (`ns`, `us`, `ms`, `s`).
fn parse_duration_ns(text: &str) -> Result<u64, String> {
    let (digits, scale) = if let Some(v) = text.strip_suffix("ns") {
        (v, 1.0)
    } else if let Some(v) = text.strip_suffix("us") {
        (v, 1e3)
    } else if let Some(v) = text.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = text.strip_suffix('s') {
        (v, 1e9)
    } else {
        return Err(format!("duration {text:?} needs a unit (ns|us|ms|s)"));
    };
    let value: f64 = digits
        .parse()
        .map_err(|_| format!("bad duration value {digits:?}"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("bad duration value {digits:?}"));
    }
    Ok((value * scale) as u64)
}

impl SloRule {
    /// Parses one `--slo` argument.
    pub fn parse(text: &str) -> Result<SloRule, String> {
        let (verb, rest) = match text.split_once(':') {
            Some((verb, rest)) => (Some(verb.to_ascii_lowercase()), rest),
            None => (None, text),
        };
        if let Some(verb) = &verb {
            if !Verb::ALL.iter().any(|v| v.label() == verb) {
                return Err(format!(
                    "unknown SLO verb {verb:?} (expected one of load|assert|query|models|retract-to)"
                ));
            }
        }
        let Some((metric, duration)) = rest.split_once('=') else {
            return Err(format!("bad SLO {text:?}: expected [verb:]metric=duration"));
        };
        let metric = match metric.to_ascii_lowercase().as_str() {
            "p50" => SloMetric::P50,
            "p90" => SloMetric::P90,
            "p99" => SloMetric::P99,
            "max" => SloMetric::Max,
            other => return Err(format!("unknown SLO metric {other:?} (p50|p90|p99|max)")),
        };
        Ok(SloRule {
            verb,
            metric,
            limit_ns: parse_duration_ns(duration)?,
        })
    }

    /// The violations of this rule against a report, as human-readable
    /// lines (empty = satisfied).
    pub fn check(&self, report: &RunReport) -> Vec<String> {
        report
            .verbs
            .iter()
            .filter(|v| match &self.verb {
                Some(verb) => v.verb.label() == verb,
                None => true,
            })
            .filter_map(|v| {
                let observed = self.metric.of(&v.hist);
                (observed > self.limit_ns).then(|| {
                    format!(
                        "SLO VIOLATION {}: {} {:.1}us exceeds the {:.1}us limit",
                        v.verb.label(),
                        self.metric.label(),
                        us(observed),
                        us(self.limit_ns)
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(verb: Verb, samples: &[u64]) -> RunReport {
        let mut hist = Histogram::new();
        for &s in samples {
            hist.record(s);
        }
        RunReport {
            name: "t".into(),
            sessions: 1,
            wall_ns: 1_000_000,
            requests: samples.len() as u64,
            server_requests: Some(samples.len() as u64 + 1),
            verbs: vec![VerbReport { verb, hist }],
            server_verbs: Vec::new(),
        }
    }

    #[test]
    fn slo_rules_parse_and_reject() {
        assert_eq!(
            SloRule::parse("p99=5ms").unwrap(),
            SloRule {
                verb: None,
                metric: SloMetric::P99,
                limit_ns: 5_000_000
            }
        );
        assert_eq!(
            SloRule::parse("assert:p50=800us").unwrap().verb.as_deref(),
            Some("assert")
        );
        assert_eq!(SloRule::parse("max=2s").unwrap().limit_ns, 2_000_000_000);
        assert!(SloRule::parse("p98=5ms").is_err());
        assert!(SloRule::parse("frob:p99=5ms").is_err());
        assert!(SloRule::parse("p99=5").is_err());
        assert!(SloRule::parse("p99").is_err());
        assert!(SloRule::parse("p99=-1ms").is_err());
    }

    #[test]
    fn slo_violations_name_verb_metric_and_values() {
        let report = report_with(Verb::Assert, &[1_000, 2_000, 90_000_000]);
        let tight = SloRule::parse("p99=1ms").unwrap();
        let violations = tight.check(&report);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("assert"));
        assert!(violations[0].contains("p99"));
        assert!(SloRule::parse("max=1s").unwrap().check(&report).is_empty());
        // A verb-scoped rule for a verb that never ran is vacuously
        // satisfied.
        assert!(SloRule::parse("query:p50=1ns")
            .unwrap()
            .check(&report)
            .is_empty());
    }

    #[test]
    fn json_rows_carry_the_gate_fields_only_in_bench_mode() {
        let report = report_with(Verb::Assert, &[1_000, 2_000]);
        let plain = render_json(&report, "cmd", 42, None);
        assert!(plain.contains("\"name\": \"assert\""));
        assert!(plain.contains("\"name\": \"total\""));
        assert!(!plain.contains("speedup"));
        let speedups = ServerSpeedups {
            verbs: vec![("assert", 2.5)],
            total: 1.4,
        };
        let bench = render_json(&report, "cmd", 42, Some(&speedups));
        assert!(bench.contains("\"speedup\": 2.5"));
        assert!(bench.contains("\"speedup\": 1.4"));
    }

    #[test]
    fn json_rows_carry_server_observations_when_scraped() {
        let mut report = report_with(Verb::Assert, &[1_000, 2_000]);
        report.server_verbs = vec![ServerVerbReport {
            verb: Verb::Assert,
            requests: 2,
            p99_ns: 2_500,
        }];
        let json = render_json(&report, "cmd", 42, None);
        assert!(json.contains("\"server_requests\": 2, \"server_p99_us\": 2.5"));
        // A verb the server never observed carries no server fields.
        assert!(!render_json(&report_with(Verb::Query, &[1_000]), "cmd", 42, None)
            .contains("server_p99_us"));
    }

    #[test]
    fn median_takes_the_lower_middle() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median(vec![7.0]), 7.0);
    }

    #[test]
    fn speedups_compare_median_mean_latencies() {
        let fast: Vec<RunReport> = (0..3)
            .map(|i| report_with(Verb::Models, &[1_000 + i, 1_000]))
            .collect();
        let slow: Vec<RunReport> = (0..3)
            .map(|i| report_with(Verb::Models, &[3_000 + i, 3_000]))
            .collect();
        let speedups = speedups(&fast, &slow);
        assert_eq!(speedups.verbs.len(), 1);
        let (label, ratio) = speedups.verbs[0];
        assert_eq!(label, "models");
        assert!((ratio - 3.0).abs() < 0.01, "ratio was {ratio}");
        assert!((speedups.total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_gated_verbs_never_carry_speedup_rows() {
        // assert/query/retract-to run identical code on both server modes
        // and load races the registry: only MODELS ratios are gateable.
        let fast = vec![report_with(Verb::Assert, &[1_000])];
        let slow = vec![report_with(Verb::Assert, &[9_000])];
        assert!(speedups(&fast, &slow).verbs.is_empty());
    }
}
