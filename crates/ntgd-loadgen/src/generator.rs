//! Seed-deterministic operation-stream generation.
//!
//! [`generate`] turns a [`WorkloadSpec`] into one shared `LOAD` payload plus
//! a per-session list of protocol lines.  The expansion is a pure function
//! of the spec and its seed: the program text is derived from a PRNG seeded
//! with `mix(seed, PROGRAM)`, and session `i`'s stream from `mix(seed, i)`,
//! so streams never depend on thread count, scheduling, or each other —
//! replaying a spec + seed reproduces every byte ([`Workload::render`] is
//! what the determinism tests compare).
//!
//! Every session `LOAD`s the **same** program text.  That is deliberate:
//! with the shared-base registry on, session 2..n fork the chased base of
//! session 1, which is exactly the server behaviour a load test should
//! exercise (and what the `--bench` mode of `ntgd-load` measures against a
//! registry-less server).

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::spec::{Distribution, Family, WorkloadSpec};

/// The protocol verb of one generated operation (also the latency-report
/// bucket key).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verb {
    /// `LOAD …`
    Load,
    /// `ASSERT …`
    Assert,
    /// `QUERY …`
    Query,
    /// `MODELS …`
    Models,
    /// `RETRACT-TO …`
    Retract,
}

impl Verb {
    /// The lower-case report label.
    pub fn label(self) -> &'static str {
        match self {
            Verb::Load => "load",
            Verb::Assert => "assert",
            Verb::Query => "query",
            Verb::Models => "models",
            Verb::Retract => "retract-to",
        }
    }

    /// All verbs, in report order.
    pub const ALL: [Verb; 5] = [
        Verb::Load,
        Verb::Assert,
        Verb::Query,
        Verb::Models,
        Verb::Retract,
    ];
}

/// One generated protocol line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Operation {
    /// The verb (report bucket).
    pub verb: Verb,
    /// The full request line, ready to send.
    pub line: String,
}

/// A fully expanded workload: the shared `LOAD` line plus each session's
/// operation stream (the `LOAD` is `ops[0]` of every session).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Workload {
    /// The spec's report label.
    pub name: String,
    /// Per-session operation streams, index = session id.
    pub sessions: Vec<Vec<Operation>>,
}

impl Workload {
    /// Renders the whole workload as one byte-stable text block (one line
    /// per operation, prefixed with the session id).  Two generations of the
    /// same spec + seed must render identically — this is the determinism
    /// witness asserted by `tests/determinism.rs`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (session, ops) in self.sessions.iter().enumerate() {
            for op in ops {
                out.push_str(&format!("{session} {}\n", op.line));
            }
        }
        out
    }

    /// Total number of operations across all sessions.
    pub fn total_ops(&self) -> usize {
        self.sessions.iter().map(Vec::len).sum()
    }

    /// 64-bit FNV-1a hash of [`Workload::render`] — a compact fingerprint
    /// for pinning a committed spec + seed to its exact stream.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.render().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Splitmix-style seed derivation, so per-session generators are
/// independent of each other and of the program generator.
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The PRNG stream id of the program/`LOAD` generator (sessions use their
/// own index, which is always < 2^32).
const PROGRAM_STREAM: u64 = 0xffff_ffff_0000_0001;

/// Draws a constant index from the spec's arrival distribution.
struct ConstantPool {
    size: usize,
    /// Zipf cumulative weights (empty for uniform): `cdf[k]` = Σ_{r≤k} r^-s.
    cdf: Vec<f64>,
}

impl ConstantPool {
    fn new(spec: &WorkloadSpec) -> ConstantPool {
        let cdf = match spec.distribution {
            Distribution::Uniform => Vec::new(),
            Distribution::Zipf => {
                let mut total = 0.0;
                (1..=spec.constants)
                    .map(|rank| {
                        total += (rank as f64).powf(-spec.zipf_s);
                        total
                    })
                    .collect()
            }
        };
        ConstantPool {
            size: spec.constants,
            cdf,
        }
    }

    fn draw(&self, rng: &mut StdRng) -> usize {
        if self.cdf.is_empty() {
            return rng.gen_range(0..self.size);
        }
        // A uniform draw in [0, total) inverted through the CDF; the 53-bit
        // mantissa is plenty for pool sizes the spec allows.
        let total = *self.cdf.last().expect("non-empty pool");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let target = unit * total;
        self.cdf
            .partition_point(|&cum| cum <= target)
            .min(self.size - 1)
    }
}

/// The base ("fact") predicate of each family, of the spec's arity.
fn base_predicate(family: Family, arm: usize) -> String {
    match family {
        Family::Chain => "e".to_owned(),
        Family::Star => format!("r{arm}"),
        Family::Existential | Family::Disjunctive => "node".to_owned(),
    }
}

/// One ground base fact with every argument drawn from the pool.
fn fact(spec: &WorkloadSpec, pool: &ConstantPool, rng: &mut StdRng, arm: usize) -> String {
    let args: Vec<String> = (0..spec.arity)
        .map(|_| format!("c{}", pool.draw(rng)))
        .collect();
    format!("{}({}).", base_predicate(spec.family, arm), args.join(", "))
}

/// The rule templates of a family (see the crate docs of this module); the
/// variable lists are spelled out so the text is valid `ntgd_parser` input
/// at any arity.
fn rules(spec: &WorkloadSpec) -> String {
    let vars = |prefix: &str, n: usize| -> Vec<String> {
        (0..n).map(|i| format!("{prefix}{i}")).collect()
    };
    let mut rules = Vec::new();
    match spec.family {
        Family::Chain => {
            // e(X, Y, …) -> p1(X, Y).   p_i(X, Y), e(Y, Z, …) -> p_{i+1}(X, Z).
            let tail = vars("W", spec.arity - 2);
            let e_head = |a: &str, b: &str| {
                let mut args = vec![a.to_owned(), b.to_owned()];
                args.extend(tail.iter().cloned());
                format!("e({})", args.join(", "))
            };
            rules.push(format!("{} -> p1(X, Y).", e_head("X", "Y")));
            for i in 1..spec.depth {
                rules.push(format!(
                    "p{i}(X, Y), {} -> p{}(X, Z).",
                    e_head("Y", "Z"),
                    i + 1
                ));
            }
        }
        Family::Star => {
            // r1(X, …), r2(X, …), … -> hub(X).
            let arms: Vec<String> = (1..=spec.depth)
                .map(|arm| {
                    let mut args = vec!["X".to_owned()];
                    args.extend(vars(&format!("Y{arm}x"), spec.arity - 1));
                    format!("r{arm}({})", args.join(", "))
                })
                .collect();
            rules.push(format!("{} -> hub(X).", arms.join(", ")));
        }
        Family::Existential => {
            // node(X0…) -> owns(X0, V), t1(V).   t_i(V) -> link_i(V, W), t_{i+1}(W).
            // Each level is a fresh predicate, so the program is weakly
            // acyclic and the chase terminates at every budget.
            let node = format!("node({})", vars("X", spec.arity).join(", "));
            rules.push(format!("{node} -> owns(X0, V), t1(V)."));
            for i in 1..spec.depth {
                rules.push(format!("t{i}(V) -> link{i}(V, W), t{}(W).", i + 1));
            }
        }
        Family::Disjunctive => {
            // node(X0…) -> red(X0) | green(X0), plus depth-1 refinement
            // layers; `seen` keeps a monotone predicate for sanity checks.
            let node = format!("node({})", vars("X", spec.arity).join(", "));
            rules.push(format!("{node} -> red(X0) | green(X0)."));
            rules.push(format!("{node} -> seen(X0)."));
            for i in 1..spec.depth {
                rules.push(format!("red(X) -> shade{i}a(X) | shade{i}b(X)."));
            }
        }
    }
    rules.join(" ")
}

/// Generates the shared `LOAD` payload: the family's rule templates plus
/// `initial_facts` base facts drawn from the program PRNG stream.
fn load_line(spec: &WorkloadSpec, pool: &ConstantPool) -> String {
    let mut rng = StdRng::seed_from_u64(mix(spec.seed, PROGRAM_STREAM));
    let mut text = rules(spec);
    for ordinal in 0..spec.initial_facts {
        text.push(' ');
        text.push_str(&fact(spec, pool, &mut rng, ordinal % spec.depth.max(1) + 1));
    }
    format!("LOAD {text}")
}

/// A family-appropriate `QUERY` line (chase-backed families only).
fn query_line(spec: &WorkloadSpec, pool: &ConstantPool, rng: &mut StdRng) -> String {
    match spec.family {
        Family::Chain => {
            let level = rng.gen_range(1..spec.depth + 1);
            if rng.gen_bool(0.5) {
                format!("QUERY ?(Y) :- p{level}(c{}, Y).", pool.draw(rng))
            } else {
                format!(
                    "QUERY ?- p{level}(c{}, c{}).",
                    pool.draw(rng),
                    pool.draw(rng)
                )
            }
        }
        Family::Star => {
            if rng.gen_bool(0.5) {
                "QUERY ?(X) :- hub(X).".to_owned()
            } else {
                format!("QUERY ?- hub(c{}).", pool.draw(rng))
            }
        }
        Family::Existential => {
            if rng.gen_bool(0.5) {
                // Certain answers drop null bindings, so this stays small.
                format!("QUERY ?(V) :- owns(c{}, V).", pool.draw(rng))
            } else {
                format!("QUERY ?- t{}(V).", rng.gen_range(1..spec.depth + 1))
            }
        }
        // Disjunctive programs have no chase; the caller routes the query
        // share to MODELS instead.
        Family::Disjunctive => unreachable!("disjunctive workloads never emit QUERY"),
    }
}

/// Expands a spec into its full operation streams.  Pure and single-threaded
/// by construction: the only state is the per-stream PRNGs seeded from the
/// spec seed.
pub fn generate(spec: &WorkloadSpec) -> Workload {
    let pool = ConstantPool::new(spec);
    let load = load_line(spec, &pool);
    let models = format!("MODELS sms max={}", spec.models_max);
    let sessions = (0..spec.sessions)
        .map(|session| {
            let mut rng = StdRng::seed_from_u64(mix(spec.seed, session as u64));
            let mut ops = vec![Operation {
                verb: Verb::Load,
                line: load.clone(),
            }];
            // Marks mirror the session's view: LOAD establishes mark 0, each
            // ASSERT pushes one, RETRACT-TO k truncates to k+1.
            let mut marks = 1usize;
            for ordinal in 0..spec.ops {
                let draw = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let retract = spec.retract_rate;
                let (query, models_rate) = match spec.family {
                    Family::Disjunctive => (0.0, spec.models_rate + spec.query_rate),
                    _ => (spec.query_rate, spec.models_rate),
                };
                // A retract draw with no mark to roll back to becomes an
                // ASSERT (not a query — the mix rates must stay honest).
                if draw < retract && marks > 1 {
                    let target = rng.gen_range(0..marks - 1);
                    marks = target + 1;
                    ops.push(Operation {
                        verb: Verb::Retract,
                        line: format!("RETRACT-TO {target}"),
                    });
                } else if (retract..retract + query).contains(&draw) {
                    ops.push(Operation {
                        verb: Verb::Query,
                        line: query_line(spec, &pool, &mut rng),
                    });
                } else if (retract + query..retract + query + models_rate).contains(&draw) {
                    ops.push(Operation {
                        verb: Verb::Models,
                        line: models.clone(),
                    });
                } else {
                    let facts: Vec<String> = (0..spec.batch)
                        .map(|_| fact(spec, &pool, &mut rng, ordinal % spec.depth.max(1) + 1))
                        .collect();
                    marks += 1;
                    ops.push(Operation {
                        verb: Verb::Assert,
                        line: format!("ASSERT {}", facts.join(" ")),
                    });
                }
            }
            ops
        })
        .collect();
    Workload {
        name: spec.name.clone(),
        sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn spec(family: &str) -> WorkloadSpec {
        WorkloadSpec::parse(&format!(
            "family = {family}\nsessions = 3\nops = 40\nmodels_rate = 0.1\nretract_rate = 0.15\n"
        ))
        .unwrap()
    }

    #[test]
    fn streams_are_deterministic_and_sessions_independent() {
        for family in ["chain", "star", "existential", "disjunctive"] {
            let one = generate(&spec(family));
            let two = generate(&spec(family));
            assert_eq!(
                one.render(),
                two.render(),
                "{family} stream not reproducible"
            );
            assert_eq!(one.fingerprint(), two.fingerprint());
            // Different sessions draw from different streams.
            assert_ne!(
                one.sessions[0], one.sessions[1],
                "{family} sessions identical"
            );
            // But share one LOAD payload (the shared-base key).
            assert_eq!(one.sessions[0][0], one.sessions[1][0]);
        }
    }

    #[test]
    fn seeds_change_the_stream() {
        let mut base = spec("chain");
        let one = generate(&base);
        base.seed = 43;
        let two = generate(&base);
        assert_ne!(one.render(), two.render());
    }

    #[test]
    fn retract_targets_stay_within_live_marks() {
        // Re-simulate the mark discipline over the generated stream; an
        // out-of-range RETRACT-TO would ERR on the server.
        let workload = generate(&spec("chain"));
        for ops in &workload.sessions {
            let mut marks = 1usize;
            for op in &ops[1..] {
                match op.verb {
                    Verb::Assert => marks += 1,
                    Verb::Retract => {
                        let target: usize =
                            op.line.trim_start_matches("RETRACT-TO ").parse().unwrap();
                        assert!(target < marks, "retract past the newest mark");
                        marks = target + 1;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn disjunctive_workloads_route_queries_to_models() {
        let workload = generate(&spec("disjunctive"));
        assert!(workload
            .sessions
            .iter()
            .flatten()
            .all(|op| op.verb != Verb::Query));
        assert!(workload
            .sessions
            .iter()
            .flatten()
            .any(|op| op.verb == Verb::Models));
    }

    #[test]
    fn zipf_draws_skew_towards_low_ranks() {
        let spec = WorkloadSpec::parse(
            "family = chain\ndistribution = zipf\nzipf_s = 1.4\nconstants = 50\nops = 200\nsessions = 1\nquery_rate = 0\nretract_rate = 0\n",
        )
        .unwrap();
        let workload = generate(&spec);
        let text = workload.render();
        let count = |c: &str| text.matches(c).count();
        // c0/c1 must dominate the tail under a zipf(1.4) arrival pattern.
        assert!(count("c0,") + count("c0)") > count("c40,") + count("c40)"));
    }

    #[test]
    fn arity_widens_the_base_predicate() {
        let spec = WorkloadSpec::parse("family = chain\narity = 4\n").unwrap();
        let workload = generate(&spec);
        let load = &workload.sessions[0][0].line;
        assert!(
            load.contains("e(X, Y, W0, W1) -> p1(X, Y)."),
            "load was: {load}"
        );
    }
}
