//! End-to-end: generated workloads driven over real TCP against an
//! in-process `ntgd-server`, in both server modes the `--bench` comparison
//! uses.  Asserts the driver's accounting (every generated operation becomes
//! exactly one timed request, tallied under its verb), that no request ERRs
//! — the generator's mark simulation and family templates must only emit
//! valid protocol lines — that the server-side `server_requests` counter is
//! visible over `STATS`, and that [`LoadServer::shutdown`] really stops the
//! server (the per-round hygiene `ntgd-load --rounds` relies on).

use std::net::TcpStream;
use std::time::Duration;

use ntgd_loadgen::{
    fetch_server_requests, generate, run, spawn_server, spawn_server_on, ServerMode, Verb,
    WorkloadSpec,
};
use ntgd_server::Transport;

fn spec(text: &str) -> WorkloadSpec {
    WorkloadSpec::parse(text).expect("inline spec parses")
}

fn small_chain() -> WorkloadSpec {
    spec(
        "name = e2e-chain\n\
         family = chain\n\
         depth = 3\n\
         constants = 12\n\
         initial_facts = 8\n\
         sessions = 2\n\
         ops = 12\n\
         batch = 3\n\
         retract_rate = 0.15\n\
         query_rate = 0.25\n\
         models_rate = 0.1\n\
         models_max = 2\n\
         seed = 7\n",
    )
}

#[test]
fn cached_server_runs_the_smoke_workload_cleanly() {
    let workload = generate(&small_chain());
    let server = spawn_server(ServerMode::Cached).expect("spawn server");
    let report = run(&workload, server.addr()).expect("load run succeeds");

    assert_eq!(report.requests, workload.total_ops() as u64);
    assert!(report.wall_ns > 0);
    // Every session LOADs once; the rest of the mix is seed-dependent but
    // the per-verb tallies must add up to the request total.
    let load = report.verb(Verb::Load).expect("LOAD tallied");
    assert_eq!(load.hist.count(), workload.sessions.len() as u64);
    let tallied: u64 = report.verbs.iter().map(|v| v.hist.count()).sum();
    assert_eq!(tallied, report.requests);
    assert!(report.verb(Verb::Assert).is_some(), "mix includes ASSERT");
    // The driver samples the process-wide request counter after the run; at
    // least this run's requests (plus one QUIT per session and the STATS
    // probe itself) must have been counted.
    let seen = report
        .server_requests
        .expect("STATS exposes server_requests");
    assert!(seen > report.requests, "counter includes untimed requests");
    // The METRICS scrape cross-checks the client's accounting: every verb
    // the clients timed shows up server-side with at least as many requests
    // (the obs registry is process-global, so concurrently running tests in
    // this binary may add to the window — equality only holds in isolation).
    assert!(!report.server_verbs.is_empty(), "METRICS scrape succeeded");
    for verb in &report.verbs {
        let server = report
            .server_verbs
            .iter()
            .find(|s| s.verb == verb.verb)
            .unwrap_or_else(|| panic!("server observed no {} requests", verb.verb.label()));
        assert!(
            server.requests >= verb.hist.count(),
            "server undercounted {}: {} < {}",
            verb.verb.label(),
            server.requests,
            verb.hist.count()
        );
        assert!(server.p99_ns > 0, "server recorded wall times");
    }
    // The connection counters saw every session (plus the STATS probe) and
    // nobody was rejected: the default server has no admission cap.
    let conn = server.conn_stats().expect("in-process server has counters");
    assert!(conn.accepted > workload.sessions.len() as u64);
    assert_eq!(conn.rejected, 0);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn from_scratch_server_agrees_on_the_operation_mix() {
    let workload = generate(&small_chain());
    let cached = spawn_server(ServerMode::Cached).expect("spawn cached");
    let scratch = spawn_server(ServerMode::FromScratch).expect("spawn scratch");
    let a = run(&workload, cached.addr()).expect("cached run");
    let b = run(&workload, scratch.addr()).expect("from-scratch run");
    // Both modes execute the identical stream: same totals, same per-verb
    // request counts — only the latencies may differ.  This is what makes
    // the --bench speedup ratios well-defined.
    assert_eq!(a.requests, b.requests);
    for verb in Verb::ALL {
        let na = a.verb(verb).map_or(0, |v| v.hist.count());
        let nb = b.verb(verb).map_or(0, |v| v.hist.count());
        assert_eq!(na, nb, "request count for {} diverged", verb.label());
    }
}

#[test]
fn disjunctive_workloads_enumerate_models_over_the_wire() {
    let workload = generate(&spec(
        "name = e2e-disj\n\
         family = disjunctive\n\
         depth = 2\n\
         constants = 6\n\
         initial_facts = 4\n\
         sessions = 1\n\
         ops = 8\n\
         batch = 2\n\
         retract_rate = 0.1\n\
         query_rate = 0.2\n\
         models_max = 2\n\
         seed = 11\n",
    ));
    let server = spawn_server(ServerMode::Cached).expect("spawn server");
    let report = run(&workload, server.addr()).expect("disjunctive run succeeds");
    assert!(
        report.verb(Verb::Models).is_some(),
        "disjunctive mix routes its query share to MODELS"
    );
    assert!(report.verb(Verb::Query).is_none(), "no chase, no QUERY");
}

#[test]
fn every_family_classifies_to_a_terminating_verdict() {
    // The decidability-aware front door must have a real opinion about
    // every generated program shape: all four family templates are
    // chase-terminating by construction (chain/star are full TGDs, the
    // existential family is a forward weakly-acyclic chain, and the
    // disjunctive family's positive transform is full), so `STATS classes`
    // after their `LOAD` must report the terminating verdict — which is
    // what lifts the chase budget for every loadgen run.
    use std::io::{BufRead, BufReader, Write};
    let server = spawn_server(ServerMode::Cached).expect("spawn server");
    for family in ["chain", "star", "existential", "disjunctive"] {
        let workload = generate(&spec(&format!(
            "name = e2e-class\nfamily = {family}\nsessions = 1\nops = 1\n"
        )));
        let load = &workload.sessions[0][0];
        assert_eq!(load.verb, Verb::Load, "{family}: ops[0] is the LOAD");
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut line = String::new();
        reader.read_line(&mut line).expect("banner");
        let mut request = |text: &str| -> Vec<String> {
            writeln!(writer, "{text}").expect("request");
            let mut lines = Vec::new();
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).expect("response line");
                let done = line.starts_with("OK") || line.starts_with("ERR");
                lines.push(line.trim_end().to_owned());
                if done {
                    return lines;
                }
            }
        };
        let loaded = request(&load.line);
        assert!(
            loaded.last().unwrap().starts_with("OK"),
            "{family}: LOAD failed: {loaded:?}"
        );
        let classes = request("STATS classes");
        assert!(
            classes.contains(&"STAT class_verdict=terminating".to_owned()),
            "{family}: expected a terminating verdict, got {classes:?}"
        );
        request("QUIT");
    }
    server.shutdown().expect("clean shutdown");
}

#[test]
fn server_requests_counter_is_monotone_over_stats_probes() {
    let server = spawn_server(ServerMode::FromScratch).expect("spawn server");
    let first = fetch_server_requests(server.addr()).expect("first probe");
    let second = fetch_server_requests(server.addr()).expect("second probe");
    // Each probe issues STATS (+ QUIT) itself, so the counter strictly grows.
    assert!(second > first);
}

#[test]
fn shutdown_stops_both_transports_without_leaking() {
    for transport in [Transport::Evented, Transport::Threaded] {
        let workload = generate(&small_chain());
        let server = spawn_server_on(ServerMode::Cached, transport).expect("spawn server");
        let addr = server.addr().to_string();
        run(&workload, &addr).expect("run before shutdown");
        server.shutdown().expect("graceful shutdown");
        // The listener is closed: a fresh connect must fail (or be accepted
        // by nobody — connect_timeout covers the race where the backlog
        // still has room but nothing ever serves the socket).
        let socket_addr = addr.parse().expect("loopback addr parses");
        match TcpStream::connect_timeout(&socket_addr, Duration::from_millis(200)) {
            Err(_) => {}
            Ok(stream) => {
                // If the kernel still completed the handshake, no banner may
                // ever arrive: the server threads are gone.
                stream
                    .set_read_timeout(Some(Duration::from_millis(200)))
                    .expect("set timeout");
                let mut buf = [0u8; 8];
                use std::io::Read;
                let got = (&stream).read(&mut buf);
                assert!(
                    matches!(got, Ok(0) | Err(_)),
                    "post-shutdown connection produced data: {got:?}"
                );
            }
        }
    }
}
