//! The replayability contract: a spec + seed IS the operation stream.
//!
//! `docs/WORKLOAD_SPEC.md` promises that any load report can be reproduced
//! from its committed spec and seed alone.  These tests hold the generator
//! to that promise: byte-identical streams across repeated generations,
//! across thread-count configurations (`NTGD_THREADS` {1, 8} — generation
//! must never fan out nondeterministically), and — for the committed CI
//! smoke spec — across time, via a pinned fingerprint.

use ntgd_core::parallel;
use ntgd_loadgen::{generate, WorkloadSpec};

fn smoke_spec() -> WorkloadSpec {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../ci/server_load_smoke.spec"
    );
    WorkloadSpec::parse_file(path).expect("committed smoke spec parses")
}

fn high_sessions_spec() -> WorkloadSpec {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../ci/server_load_high_sessions.spec"
    );
    WorkloadSpec::parse_file(path).expect("committed high-sessions spec parses")
}

#[test]
fn committed_spec_renders_identically_across_runs() {
    let spec = smoke_spec();
    let first = generate(&spec).render();
    let second = generate(&spec).render();
    assert_eq!(first, second);
    assert!(!first.is_empty());
}

#[test]
fn generation_is_identical_at_thread_counts_1_and_8() {
    // Generation is pure and single-threaded by construction; this pins the
    // contract that no future change may make the stream depend on the
    // parallel layer's configuration (the CI matrix also runs this whole
    // test binary under NTGD_THREADS=1 and the runner default).
    let spec = smoke_spec();
    parallel::set_thread_override(Some(1));
    let one = generate(&spec).render();
    parallel::set_thread_override(Some(8));
    let eight = generate(&spec).render();
    parallel::set_thread_override(None);
    assert_eq!(one, eight);
}

#[test]
fn committed_spec_fingerprint_is_pinned() {
    // The committed smoke spec's exact operation stream, pinned.  If this
    // fails you changed the generator's output for existing specs (or the
    // spec file): that invalidates the committed BENCH_server.json baseline
    // and every recorded report — regenerate them and update this pin
    // deliberately.
    let workload = generate(&smoke_spec());
    assert_eq!(
        workload.fingerprint(),
        0xe059_79f8_689d_976f,
        "generator output changed for the committed spec (fingerprint {:#018x})",
        workload.fingerprint()
    );
}

#[test]
fn committed_high_sessions_fingerprint_is_pinned() {
    // Same contract for the 256-session connection-layer gate spec: its
    // stream (and the 256 concurrent sessions CI drives with it) must not
    // drift silently.
    let workload = generate(&high_sessions_spec());
    assert_eq!(
        workload.sessions.len(),
        256,
        "the spec IS the 256-session gate"
    );
    assert_eq!(
        workload.fingerprint(),
        0x3a7b_7e09_5d69_708b,
        "generator output changed for the committed spec (fingerprint {:#018x})",
        workload.fingerprint()
    );
}

#[test]
fn seed_and_session_overrides_change_the_stream_predictably() {
    let mut spec = smoke_spec();
    let base = generate(&spec).render();
    spec.seed += 1;
    assert_ne!(generate(&spec).render(), base, "seed must matter");
    spec.seed -= 1;
    assert_eq!(
        generate(&spec).render(),
        base,
        "seed restore must round-trip"
    );
    spec.sessions += 1;
    let wider = generate(&spec);
    // Existing sessions keep their streams when the fleet grows: session
    // streams are seeded independently by index.
    let narrower = generate(&smoke_spec());
    assert_eq!(
        wider.sessions[..narrower.sessions.len()],
        narrower.sessions[..]
    );
}
