//! The well-founded semantics via the alternating fixpoint.
//!
//! The well-founded model of a ground normal program partitions the relevant
//! Herbrand base into *true*, *false* and *undefined* atoms.  It is used
//! both as a semantics in its own right (the paper discusses the
//! equality-friendly WFS of \[21\]) and as a sound simplification before stable
//! model enumeration: well-founded-true atoms belong to every stable model,
//! well-founded-false atoms to none.

use std::collections::BTreeSet;

use ntgd_core::Atom;

use crate::program::GroundProgram;

/// The three-valued well-founded model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WellFoundedModel {
    /// Atoms true in the well-founded model.
    pub true_atoms: BTreeSet<Atom>,
    /// Atoms false in the well-founded model.
    pub false_atoms: BTreeSet<Atom>,
    /// Atoms with undefined truth value.
    pub undefined_atoms: BTreeSet<Atom>,
}

impl WellFoundedModel {
    /// Returns `true` if no atom is undefined (the model is total); in that
    /// case the well-founded model is the unique stable model.
    pub fn is_total(&self) -> bool {
        self.undefined_atoms.is_empty()
    }
}

/// The Γ operator: least model of the Gelfond–Lifschitz reduct of the program
/// with respect to `assumed`.
fn gamma(program: &GroundProgram, assumed: &BTreeSet<Atom>) -> BTreeSet<Atom> {
    let mut model: BTreeSet<Atom> = BTreeSet::new();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if model.contains(&rule.head) {
                continue;
            }
            if rule.body_neg.iter().any(|a| assumed.contains(a)) {
                continue; // removed by the reduct
            }
            if rule.body_pos.iter().all(|a| model.contains(a)) {
                model.insert(rule.head.clone());
                changed = true;
            }
        }
        if !changed {
            return model;
        }
    }
}

/// Computes the well-founded model by the alternating fixpoint construction.
pub fn well_founded_model(program: &GroundProgram) -> WellFoundedModel {
    // T_{i+1} = Γ(Γ(T_i)), starting from ∅; the sequence of T's is increasing
    // and the sequence of U = Γ(T) is decreasing.  At the fixpoint, T is the
    // set of well-founded-true atoms and U the set of possibly-true atoms.
    let mut true_set: BTreeSet<Atom> = BTreeSet::new();
    loop {
        let possibly_true = gamma(program, &true_set);
        let next_true = gamma(program, &possibly_true);
        if next_true == true_set {
            let false_atoms: BTreeSet<Atom> = program
                .herbrand
                .iter()
                .filter(|a| !possibly_true.contains(*a))
                .cloned()
                .collect();
            let undefined: BTreeSet<Atom> = possibly_true
                .iter()
                .filter(|a| !true_set.contains(*a))
                .cloned()
                .collect();
            return WellFoundedModel {
                true_atoms: true_set,
                false_atoms,
                undefined_atoms: undefined,
            };
        }
        true_set = next_true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::{ground_program, GroundingLimits};
    use crate::skolem::skolemize;
    use ntgd_core::{atom, cst};
    use ntgd_parser::{parse_database, parse_program};

    fn ground(db: &str, rules: &str) -> GroundProgram {
        let db = parse_database(db).unwrap();
        let p = parse_program(rules).unwrap();
        ground_program(&db, &skolemize(&p), &GroundingLimits::default()).0
    }

    #[test]
    fn positive_programs_have_total_well_founded_models() {
        let gp = ground("p(a).", "p(X) -> q(X). q(X) -> r(X).");
        let wfm = well_founded_model(&gp);
        assert!(wfm.is_total());
        assert!(wfm.true_atoms.contains(&atom("r", vec![cst("a")])));
        assert!(wfm.false_atoms.is_empty());
    }

    #[test]
    fn stratified_negation_is_resolved() {
        let gp = ground("p(a). p(b). q(a).", "p(X), not q(X) -> r(X).");
        let wfm = well_founded_model(&gp);
        assert!(wfm.is_total());
        assert!(wfm.true_atoms.contains(&atom("r", vec![cst("b")])));
        assert!(wfm.false_atoms.contains(&atom("r", vec![cst("a")])));
    }

    #[test]
    fn even_negative_loop_is_undefined() {
        let gp = ground("seed(x).", "seed(X), not b -> a. seed(X), not a -> b.");
        let wfm = well_founded_model(&gp);
        assert!(!wfm.is_total());
        assert!(wfm.undefined_atoms.contains(&atom("a", vec![])));
        assert!(wfm.undefined_atoms.contains(&atom("b", vec![])));
        assert!(wfm.true_atoms.contains(&atom("seed", vec![cst("x")])));
    }

    #[test]
    fn odd_negative_loop_is_undefined_not_inconsistent() {
        let gp = ground("seed(x).", "seed(X), not a -> a.");
        let wfm = well_founded_model(&gp);
        assert!(wfm.undefined_atoms.contains(&atom("a", vec![])));
    }

    #[test]
    fn unfounded_positive_loops_are_false() {
        // a <- b.  b <- a.  Nothing supports them.
        let gp = ground("seed(x).", "a -> b. b -> a. seed(X), not a -> c.");
        let wfm = well_founded_model(&gp);
        assert!(wfm.false_atoms.contains(&atom("a", vec![])));
        // b is not even part of the relevant Herbrand base (never derivable).
        assert!(!gp.herbrand.contains(&atom("b", vec![])));
        assert!(wfm.true_atoms.contains(&atom("c", vec![])));
    }
}
