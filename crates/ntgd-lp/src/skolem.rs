//! Skolemization of NTGDs (paper, Section 3.1).
//!
//! The Skolemization of `∀X∀Y(ϕ(X,Y) → ∃Z ψ(X,Z))` is the normal rule
//! `ψ(X, f_σ(X,Y)) ← ϕ(X,Y)`, with one function symbol `f_{σ,Z}` per
//! existential variable `Z` of `σ`.  Following the standard treatment, the
//! Skolem functions take **all** universally quantified variables of the rule
//! as arguments.
//!
//! Head conjunctions are split into one normal rule per head atom (sharing
//! the same Skolem functions), so the result is a set of single-head normal
//! rules.

use std::collections::BTreeSet;
use std::fmt;

use ntgd_core::{Atom, Literal, Program, Symbol, Term};

/// An argument of a Skolemized head atom: either an original term (variable
/// or constant) or a Skolem function applied to the rule's universal
/// variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HeadArg {
    /// A term of the original rule (constant or universal variable).
    Plain(Term),
    /// A Skolem function `f_{σ,Z}(X₁,...,Xₖ)`.
    Skolem {
        /// Index of the rule the function belongs to.
        rule_index: usize,
        /// The existential variable the function replaces.
        variable: Symbol,
        /// The universal variables of the rule (the function's arguments).
        arguments: Vec<Term>,
    },
}

impl fmt::Display for HeadArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeadArg::Plain(t) => write!(f, "{t}"),
            HeadArg::Skolem {
                rule_index,
                variable,
                arguments,
            } => {
                write!(f, "f{rule_index}_{variable}(")?;
                for (i, a) in arguments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A Skolemized head atom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SkolemHeadAtom {
    /// Predicate symbol.
    pub predicate: Symbol,
    /// Arguments.
    pub args: Vec<HeadArg>,
}

impl fmt::Display for SkolemHeadAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.predicate)?;
        if self.args.is_empty() {
            return Ok(());
        }
        write!(f, "(")?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A Skolemized normal rule: single head atom, body of literals over
/// variables and constants.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SkolemRule {
    /// Index of the originating NTGD in the input program.
    pub source_rule: usize,
    /// The single head atom.
    pub head: SkolemHeadAtom,
    /// The body literals (unchanged from the original rule).
    pub body: Vec<Literal>,
}

impl fmt::Display for SkolemRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <- ", self.head)?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

/// A Skolemized normal logic program.
#[derive(Clone, Debug, Default)]
pub struct SkolemProgram {
    /// The single-head normal rules.
    pub rules: Vec<SkolemRule>,
}

impl SkolemProgram {
    /// Returns `true` if no rule uses a Skolem function (i.e. the original
    /// program had no existential variables).
    pub fn is_function_free(&self) -> bool {
        self.rules
            .iter()
            .all(|r| r.head.args.iter().all(|a| matches!(a, HeadArg::Plain(_))))
    }

    /// The set of predicates appearing in the program.
    pub fn predicates(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            out.insert(r.head.predicate);
            for l in &r.body {
                out.insert(l.atom().predicate());
            }
        }
        out
    }
}

impl fmt::Display for SkolemProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Skolemizes a program of NTGDs into a normal logic program.
pub fn skolemize(program: &Program) -> SkolemProgram {
    let mut out = SkolemProgram::default();
    for (idx, rule) in program.iter() {
        let universal: Vec<Term> = rule
            .universal_variables()
            .into_iter()
            .map(Term::Var)
            .collect();
        let existential = rule.existential_variables();
        for head_atom in rule.head() {
            let args: Vec<HeadArg> = head_atom
                .args()
                .iter()
                .map(|t| match t {
                    Term::Var(v) if existential.contains(v) => HeadArg::Skolem {
                        rule_index: idx,
                        variable: *v,
                        arguments: universal.clone(),
                    },
                    other => HeadArg::Plain(*other),
                })
                .collect();
            out.rules.push(SkolemRule {
                source_rule: idx,
                head: SkolemHeadAtom {
                    predicate: head_atom.predicate(),
                    args,
                },
                body: rule.body().to_vec(),
            });
        }
    }
    out
}

/// Renders a ground Skolem term as a fresh constant name.  Distinct ground
/// Skolem terms map to distinct constants, and never collide with ordinary
/// constants (the rendered name contains parentheses, which the parser never
/// produces for plain constants).
pub fn skolem_constant(rule_index: usize, variable: Symbol, arguments: &[Term]) -> Term {
    let rendered = format!(
        "f{rule_index}_{variable}({})",
        arguments
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    Term::Const(Symbol::intern(&rendered))
}

/// Instantiates a Skolemized head atom under a substitution of the rule's
/// universal variables by ground terms, producing an ordinary ground atom
/// whose Skolem terms are rendered as constants via [`skolem_constant`].
pub fn instantiate_head(head: &SkolemHeadAtom, substitution: &ntgd_core::Substitution) -> Atom {
    let args: Vec<Term> = head
        .args
        .iter()
        .map(|a| match a {
            HeadArg::Plain(t) => substitution.apply_term(t),
            HeadArg::Skolem {
                rule_index,
                variable,
                arguments,
            } => {
                let ground_args: Vec<Term> = arguments
                    .iter()
                    .map(|t| substitution.apply_term(t))
                    .collect();
                skolem_constant(*rule_index, *variable, &ground_args)
            }
        })
        .collect();
    Atom::new(head.predicate, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::{cst, var, Substitution};
    use ntgd_parser::parse_program;

    #[test]
    fn skolemization_replaces_existentials_with_functions() {
        let p = parse_program("person(X) -> hasFather(X, Y).").unwrap();
        let s = skolemize(&p);
        assert_eq!(s.rules.len(), 1);
        assert!(!s.is_function_free());
        let head = &s.rules[0].head;
        assert_eq!(head.predicate.as_str(), "hasFather");
        assert!(matches!(head.args[0], HeadArg::Plain(Term::Var(_))));
        assert!(matches!(head.args[1], HeadArg::Skolem { .. }));
        assert_eq!(s.rules[0].to_string(), "hasFather(X,f0_Y(X)) <- person(X).");
    }

    #[test]
    fn existential_free_programs_are_function_free() {
        let p = parse_program("e(X,Y), e(Y,Z) -> e(X,Z). p(X), not q(X) -> r(X).").unwrap();
        let s = skolemize(&p);
        assert!(s.is_function_free());
        assert_eq!(s.rules.len(), 2);
    }

    #[test]
    fn conjunction_heads_are_split_into_single_head_rules() {
        let p = parse_program("p(X) -> q(X, Y), r(Y).").unwrap();
        let s = skolemize(&p);
        assert_eq!(s.rules.len(), 2);
        // Both rules use the same Skolem function for Y.
        let rendered: Vec<String> = s.rules.iter().map(|r| r.head.to_string()).collect();
        assert_eq!(rendered[0], "q(X,f0_Y(X))");
        assert_eq!(rendered[1], "r(f0_Y(X))");
    }

    #[test]
    fn instantiation_renders_ground_skolem_terms_as_constants() {
        let p = parse_program("person(X) -> hasFather(X, Y).").unwrap();
        let s = skolemize(&p);
        let mut sub = Substitution::new();
        sub.bind(var("X"), cst("alice"));
        let ground = instantiate_head(&s.rules[0].head, &sub);
        assert!(ground.is_constant_only());
        assert_eq!(ground.to_string(), "hasFather(alice,f0_Y(alice))");
        // Distinct arguments yield distinct Skolem constants.
        let mut sub2 = Substitution::new();
        sub2.bind(var("X"), cst("bob"));
        let ground2 = instantiate_head(&s.rules[0].head, &sub2);
        assert_ne!(ground.args()[1], ground2.args()[1]);
    }

    #[test]
    fn predicates_are_collected() {
        let p = parse_program("p(X), not q(X) -> r(X, Y).").unwrap();
        let s = skolemize(&p);
        let mut preds: Vec<&str> = s.predicates().iter().map(|s| s.as_str()).collect();
        preds.sort_unstable();
        assert_eq!(preds, vec!["p", "q", "r"]);
    }
}
