//! End-to-end query answering under the LP approach.

use std::collections::BTreeSet;

use ntgd_core::{CoreError, Database, Interpretation, Program, Query, Term};

use crate::ground::{ground_program, GroundingLimits, GroundingOutcome};
use crate::program::GroundProgram;
use crate::skolem::{skolemize, SkolemProgram};
use crate::stable::{stable_models, StableEnumerationLimits};
use crate::wellfounded::{well_founded_model, WellFoundedModel};

/// Combined limits for the LP pipeline.
#[derive(Clone, Debug, Default)]
pub struct LpLimits {
    /// Limits for grounding.
    pub grounding: GroundingLimits,
    /// Limits for stable model enumeration.
    pub enumeration: StableEnumerationLimits,
}

/// Errors reported by the LP engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// The relevant grounding was truncated; answers would be unreliable.
    GroundingIncomplete,
    /// Too many choice atoms for exhaustive stable-model enumeration.
    TooManyChoices(usize),
    /// A core validation error.
    Core(CoreError),
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::GroundingIncomplete => {
                write!(f, "the relevant grounding exceeded the configured limits")
            }
            LpError::TooManyChoices(n) => write!(
                f,
                "stable-model enumeration would need to branch over {n} atoms"
            ),
            LpError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LpError {}

/// The answer of the LP engine to a Boolean query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpAnswer {
    /// Entailed by every stable model (cautious yes).
    Entailed,
    /// Not entailed (some stable model refutes it).
    NotEntailed,
    /// There is no stable model at all (everything is cautiously entailed).
    Inconsistent,
}

/// The LP-approach engine: Skolemize, ground, enumerate stable models, answer
/// queries.
pub struct LpEngine {
    skolem: SkolemProgram,
    ground: GroundProgram,
    models: Vec<Interpretation>,
    extra_domain: BTreeSet<Term>,
}

impl LpEngine {
    /// Builds the engine for a database and a program, computing all stable
    /// models eagerly.
    pub fn new(
        database: &Database,
        program: &Program,
        limits: &LpLimits,
    ) -> Result<LpEngine, LpError> {
        let skolem = skolemize(program);
        let (ground, outcome) = ground_program(database, &skolem, &limits.grounding);
        if outcome == GroundingOutcome::LimitReached {
            return Err(LpError::GroundingIncomplete);
        }
        let raw_models =
            stable_models(&ground, &limits.enumeration).map_err(LpError::TooManyChoices)?;
        // Negative query literals are evaluated against the Herbrand
        // universe, so register every ground term of the grounding plus the
        // database and program constants as domain elements of every model.
        let mut extra_domain: BTreeSet<Term> = ground.herbrand_terms();
        extra_domain.extend(database.domain());
        extra_domain.extend(program.constants());
        let models = raw_models
            .into_iter()
            .map(|atoms| {
                let mut i = Interpretation::from_atoms(atoms);
                for t in &extra_domain {
                    i.add_domain_element(*t);
                }
                i
            })
            .collect();
        Ok(LpEngine {
            skolem,
            ground,
            models,
            extra_domain,
        })
    }

    /// The Skolemized program.
    pub fn skolem_program(&self) -> &SkolemProgram {
        &self.skolem
    }

    /// The relevant ground program.
    pub fn ground_program(&self) -> &GroundProgram {
        &self.ground
    }

    /// The stable models (as interpretations whose domain is the relevant
    /// Herbrand universe).
    pub fn models(&self) -> &[Interpretation] {
        &self.models
    }

    /// Returns `true` if at least one stable model exists.
    pub fn is_consistent(&self) -> bool {
        !self.models.is_empty()
    }

    /// The well-founded model of the ground program.
    pub fn well_founded(&self) -> WellFoundedModel {
        well_founded_model(&self.ground)
    }

    fn with_query_domain(&self, model: &Interpretation, query: &Query) -> Interpretation {
        let mut m = model.clone();
        for lit in query.literals() {
            for t in lit.atom().terms() {
                if t.is_constant() {
                    m.add_domain_element(*t);
                }
            }
        }
        m
    }

    /// Cautious entailment of a Boolean query: true in **every** stable model.
    pub fn entails_cautious(&self, query: &Query) -> LpAnswer {
        if self.models.is_empty() {
            return LpAnswer::Inconsistent;
        }
        if self
            .models
            .iter()
            .all(|m| query.holds(&self.with_query_domain(m, query)))
        {
            LpAnswer::Entailed
        } else {
            LpAnswer::NotEntailed
        }
    }

    /// Brave entailment of a Boolean query: true in **some** stable model.
    pub fn entails_brave(&self, query: &Query) -> bool {
        self.models
            .iter()
            .any(|m| query.holds(&self.with_query_domain(m, query)))
    }

    /// Certain answers of an n-ary query (intersection over all stable
    /// models); empty when inconsistent-with-no-models would make everything
    /// certain, the full signature cannot be enumerated, so this returns the
    /// intersection over the (non-empty) set of models and `None` when there
    /// is no model.
    pub fn certain_answers(&self, query: &Query) -> Option<BTreeSet<Vec<Term>>> {
        let mut iter = self.models.iter();
        let first = iter.next()?;
        let mut acc = query.answers(&self.with_query_domain(first, query));
        for m in iter {
            let answers = query.answers(&self.with_query_domain(m, query));
            acc = acc.intersection(&answers).cloned().collect();
        }
        Some(acc)
    }

    /// Possible (brave) answers of an n-ary query (union over stable models).
    pub fn possible_answers(&self, query: &Query) -> BTreeSet<Vec<Term>> {
        let mut acc = BTreeSet::new();
        for m in &self.models {
            acc.extend(query.answers(&self.with_query_domain(m, query)));
        }
        acc
    }

    /// The ground terms of the relevant Herbrand universe.
    pub fn herbrand_terms(&self) -> &BTreeSet<Term> {
        &self.extra_domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_parser::{parse_database, parse_program, parse_query};

    fn engine(db: &str, rules: &str) -> LpEngine {
        LpEngine::new(
            &parse_database(db).unwrap(),
            &parse_program(rules).unwrap(),
            &LpLimits::default(),
        )
        .unwrap()
    }

    const EXAMPLE1_RULES: &str = "person(X) -> hasFather(X, Y).\
         hasFather(X, Y) -> sameAs(Y, Y).\
         hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).";

    #[test]
    fn example1_queries_match_the_paper() {
        let e = engine("person(alice).", EXAMPLE1_RULES);
        assert!(e.is_consistent());
        assert_eq!(e.models().len(), 1);
        // ∃X person(X) ∧ ¬abnormal(X) is entailed.
        let q1 = parse_query("?- person(X), not abnormal(X).").unwrap();
        assert_eq!(e.entails_cautious(&q1), LpAnswer::Entailed);
        // ∃X person(X) ∧ abnormal(X) is refuted.
        let q2 = parse_query("?- person(X), abnormal(X).").unwrap();
        assert_eq!(e.entails_cautious(&q2), LpAnswer::NotEntailed);
        assert!(!e.entails_brave(&q2));
    }

    #[test]
    fn example2_lp_approach_entails_the_unintended_negative_query() {
        // The crux of the paper: under the LP approach,
        // ¬hasFather(alice, bob) is certain, because the Skolem witness is a
        // distinct object.  (The paper's new semantics will disagree.)
        let e = engine("person(alice).", EXAMPLE1_RULES);
        let q = parse_query("?- not hasFather(alice, bob).").unwrap();
        assert_eq!(e.entails_cautious(&q), LpAnswer::Entailed);
    }

    #[test]
    fn even_loop_cautious_and_brave_differ() {
        let e = engine("seed(x).", "seed(X), not b -> a. seed(X), not a -> b.");
        assert_eq!(e.models().len(), 2);
        let qa = parse_query("?- a.").unwrap();
        assert_eq!(e.entails_cautious(&qa), LpAnswer::NotEntailed);
        assert!(e.entails_brave(&qa));
    }

    #[test]
    fn inconsistent_programs_are_reported() {
        let e = engine("p(0).", "p(X), not t(X) -> r(X). r(X) -> t(X).");
        assert!(!e.is_consistent());
        let q = parse_query("?- r(0).").unwrap();
        assert_eq!(e.entails_cautious(&q), LpAnswer::Inconsistent);
        assert!(e.certain_answers(&q).is_none());
    }

    #[test]
    fn certain_and_possible_answers() {
        let e = engine(
            "person(alice). person(bob). rich(bob).",
            "person(X), not rich(X) -> modest(X).",
        );
        let q = parse_query("?(X) :- modest(X).").unwrap();
        let certain = e.certain_answers(&q).unwrap();
        assert_eq!(certain.len(), 1);
        assert!(certain.contains(&vec![ntgd_core::cst("alice")]));
        assert_eq!(e.possible_answers(&q).len(), 1);
    }

    #[test]
    fn grounding_limit_surfaces_as_an_error() {
        let result = LpEngine::new(
            &parse_database("person(adam).").unwrap(),
            &parse_program("person(X) -> parent(X, Y), person(Y).").unwrap(),
            &LpLimits {
                grounding: GroundingLimits {
                    max_atoms: 20,
                    max_rules: 100,
                },
                ..Default::default()
            },
        );
        assert_eq!(result.err(), Some(LpError::GroundingIncomplete));
    }

    #[test]
    fn well_founded_model_is_available() {
        let e = engine("seed(x).", "seed(X), not b -> a. seed(X), not a -> b.");
        let wfm = e.well_founded();
        assert!(!wfm.is_total());
        assert_eq!(wfm.undefined_atoms.len(), 2);
    }
}
