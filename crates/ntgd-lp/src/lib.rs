//! # ntgd-lp
//!
//! The classical **logic-programming (LP) approach** to stable model semantics
//! for NTGDs (paper, Section 3.1), implemented as a baseline:
//!
//! 1. [`skolem`] — eliminate existentially quantified variables by
//!    Skolemization, producing a normal logic program with function symbols;
//! 2. [`ground`] — compute the relevant part of the grounding bottom-up
//!    (finite for weakly-acyclic programs; guarded by explicit limits
//!    otherwise);
//! 3. [`wellfounded`] — the well-founded semantics (alternating fixpoint),
//!    used both as a solver simplification and as a semantics in its own
//!    right;
//! 4. [`stable`] — enumeration of the stable models of the ground normal
//!    program via the Gelfond–Lifschitz reduct;
//! 5. [`engine`] — the end-to-end [`LpEngine`] answering normal (Boolean)
//!    conjunctive queries under cautious and brave reasoning.
//!
//! The paper's Example 2 is reproduced in this crate's tests: under the LP
//! approach, `¬hasFather(alice, bob)` is (unintendedly) entailed, because the
//! Skolem term witnessing alice's father is a *new* object distinct from
//! `bob`.
//!
//! The crate also contains a bounded implementation of the
//! **equality-friendly well-founded semantics** of \[21\] ([`efwfs`]), the
//! other Skolemization-free approach the paper discusses (and whose
//! shortcoming — Example 3 — motivates the new semantics).

pub mod efwfs;
pub mod engine;
pub mod ground;
pub mod program;
pub mod skolem;
pub mod stable;
pub mod wellfounded;

pub use efwfs::{
    efwfs_entails_cautious, efwfs_models, holds_in_wfs, EfwfsConfig, EfwfsOutcome, EfwfsResult,
};
pub use engine::{LpAnswer, LpEngine, LpLimits};
pub use ground::{ground_program, GroundingLimits, GroundingOutcome};
pub use program::{GroundProgram, GroundRule};
pub use skolem::{skolemize, SkolemProgram, SkolemRule};
pub use stable::{stable_models, StableEnumerationLimits};
pub use wellfounded::{well_founded_model, WellFoundedModel};
