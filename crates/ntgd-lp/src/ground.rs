//! Relevance-based bottom-up grounding of Skolemized programs.
//!
//! The grounding of a Skolemized program is in general infinite (the Herbrand
//! universe contains arbitrarily nested Skolem terms).  For weakly-acyclic
//! programs the *relevant* grounding — instantiations whose positive bodies
//! are over atoms derivable from the database when negation is ignored — is
//! finite, and restricting to it preserves the stable models.  Arbitrary
//! programs are handled by explicit limits.
//!
//! Ground Skolem terms are rendered as fresh constants (see
//! [`crate::skolem::skolem_constant`]), which is faithful to Herbrand
//! semantics: distinct ground Skolem terms denote distinct objects, distinct
//! from every ordinary constant.

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use ntgd_core::{parallel, Atom, CompiledConjunction, Database, Substitution};

use crate::program::{GroundProgram, GroundRule};
use crate::skolem::{instantiate_head, SkolemProgram};

/// Limits for the grounding procedure.
#[derive(Clone, Debug)]
pub struct GroundingLimits {
    /// Maximum number of distinct ground atoms to derive.
    pub max_atoms: usize,
    /// Maximum number of ground rule instances to produce.
    pub max_rules: usize,
}

impl Default for GroundingLimits {
    fn default() -> Self {
        GroundingLimits {
            max_atoms: 100_000,
            max_rules: 500_000,
        }
    }
}

/// Whether the grounding reached a fixpoint or was truncated by the limits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GroundingOutcome {
    /// The relevant grounding is complete.
    Complete,
    /// A limit was hit; the ground program is only a fragment.
    LimitReached,
}

/// Computes the relevant grounding of `program` over `database`.
///
/// The returned ground program contains one fact per database atom plus every
/// relevant rule instance.
pub fn ground_program(
    database: &Database,
    program: &SkolemProgram,
    limits: &GroundingLimits,
) -> (GroundProgram, GroundingOutcome) {
    let mut possibly_true = database.to_interpretation();
    let mut rules: Vec<GroundRule> = database.facts().cloned().map(GroundRule::fact).collect();
    let mut seen_rules: BTreeSet<GroundRule> = rules.iter().cloned().collect();
    let mut outcome = GroundingOutcome::Complete;
    // Each rule's positive body is compiled once for the whole grounding;
    // every semi-naive round executes the cached plans.
    let empty = Substitution::new();
    let body_plans: Vec<CompiledConjunction> = program
        .rules
        .iter()
        .map(|rule| {
            let positive: Vec<ntgd_core::Literal> = rule
                .body
                .iter()
                .filter(|l| l.is_positive())
                .cloned()
                .collect();
            CompiledConjunction::compile(&positive, &possibly_true)
        })
        .collect();
    // Semi-naive rounds: after the first (full) round, bodies are only
    // matched against homomorphisms that use an atom derived in the previous
    // round, so each relevant instantiation is produced exactly once.
    let mut watermark = 0usize;

    let rule_indices: Vec<usize> = (0..program.rules.len()).collect();
    loop {
        let next_watermark = possibly_true.len();
        // One work item per rule: workers read the frozen `possibly_true`
        // snapshot and collect candidate (rule instance, head) pairs into
        // private buffers, merged in rule order — the merged stream is
        // exactly the sequential enumeration, so the ground program is
        // identical at every thread count.  Deduplication against
        // `seen_rules` stays sequential, after the merge.
        let work = if watermark == 0 {
            possibly_true.len().max(1)
        } else {
            possibly_true.len().saturating_sub(watermark)
        };
        let threads = parallel::threads_for(work);
        let snapshot = &possibly_true;
        let buckets: Vec<Vec<(GroundRule, Atom)>> =
            parallel::par_map_with(&rule_indices, threads, |_, &index| {
                let rule = &program.rules[index];
                let plan = &body_plans[index];
                let mut local: Vec<(GroundRule, Atom)> = Vec::new();
                plan.for_each_delta(snapshot, &empty, watermark, &mut |binding| {
                    // The Skolem-term head instantiation is the only place
                    // the binding must be materialised; body instances are
                    // read off the borrowed slot view.
                    let h = binding.to_substitution();
                    let head = instantiate_head(&rule.head, &h);
                    let body_pos: Vec<Atom> = rule
                        .body
                        .iter()
                        .filter(|l| l.is_positive())
                        .map(|l| binding.apply_atom(l.atom()))
                        .collect();
                    let body_neg: Vec<Atom> = rule
                        .body
                        .iter()
                        .filter(|l| l.is_negative())
                        .map(|l| binding.apply_atom(l.atom()))
                        .collect();
                    debug_assert!(
                        body_neg.iter().all(Atom::is_ground),
                        "safety guarantees ground negative bodies"
                    );
                    let ground = GroundRule::new(head.clone(), body_pos, body_neg);
                    local.push((ground, head));
                    ControlFlow::Continue(())
                });
                local
            });
        let mut new_atoms: Vec<Atom> = Vec::new();
        let mut new_rules: Vec<GroundRule> = Vec::new();
        for (ground, head) in buckets.into_iter().flatten() {
            if seen_rules.insert(ground.clone()) {
                new_rules.push(ground);
            }
            if !possibly_true.contains(&head) {
                new_atoms.push(head);
            }
        }
        if new_rules.is_empty() && new_atoms.is_empty() {
            break;
        }
        for a in new_atoms {
            possibly_true.insert(a);
        }
        rules.extend(new_rules);
        watermark = next_watermark;
        if possibly_true.len() > limits.max_atoms || rules.len() > limits.max_rules {
            outcome = GroundingOutcome::LimitReached;
            break;
        }
    }
    (GroundProgram::new(rules), outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skolem::skolemize;
    use ntgd_core::{atom, cst};
    use ntgd_parser::{parse_database, parse_program};

    #[test]
    fn grounding_of_example1_is_finite_and_complete() {
        let db = parse_database("person(alice).").unwrap();
        let p = parse_program(
            "person(X) -> hasFather(X, Y).\
             hasFather(X, Y) -> sameAs(Y, Y).\
             hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
        )
        .unwrap();
        let (gp, outcome) = ground_program(&db, &skolemize(&p), &GroundingLimits::default());
        assert_eq!(outcome, GroundingOutcome::Complete);
        // fact + father rule + sameAs rule + one abnormal instance.
        assert!(gp.herbrand.contains(&atom("person", vec![cst("alice")])));
        assert!(gp
            .herbrand
            .iter()
            .any(|a| a.predicate().as_str() == "hasFather"));
        assert!(gp
            .herbrand
            .iter()
            .any(|a| a.predicate().as_str() == "abnormal"));
        // The Skolem term shows up as a rendered constant.
        assert!(gp
            .herbrand_terms()
            .iter()
            .any(|t| t.to_string().contains("f0_Y(alice)")));
    }

    #[test]
    fn datalog_grounding_matches_naive_instantiation() {
        let db = parse_database("e(a,b). e(b,c).").unwrap();
        let p = parse_program("e(X,Y), e(Y,Z) -> e(X,Z).").unwrap();
        let (gp, outcome) = ground_program(&db, &skolemize(&p), &GroundingLimits::default());
        assert_eq!(outcome, GroundingOutcome::Complete);
        assert!(gp.herbrand.contains(&atom("e", vec![cst("a"), cst("c")])));
        // 2 facts, e(a,c) derivable via one instance, plus the instance of
        // a->c joined with c->? (none).  The relevant instances are those
        // whose bodies are possibly true.
        assert!(gp.len() >= 3);
    }

    #[test]
    fn non_terminating_grounding_hits_the_limit() {
        let db = parse_database("person(adam).").unwrap();
        let p = parse_program("person(X) -> parent(X, Y), person(Y).").unwrap();
        let limits = GroundingLimits {
            max_atoms: 50,
            max_rules: 1_000,
        };
        let (gp, outcome) = ground_program(&db, &skolemize(&p), &limits);
        assert_eq!(outcome, GroundingOutcome::LimitReached);
        assert!(gp.herbrand.len() > 50);
    }

    #[test]
    fn negative_literals_are_grounded_but_do_not_drive_derivation() {
        let db = parse_database("p(a).").unwrap();
        let p = parse_program("p(X), not q(X) -> r(X).").unwrap();
        let (gp, _) = ground_program(&db, &skolemize(&p), &GroundingLimits::default());
        let rule = gp
            .rules
            .iter()
            .find(|r| r.head.predicate().as_str() == "r")
            .unwrap();
        assert_eq!(rule.body_neg, vec![atom("q", vec![cst("a")])]);
    }

    #[test]
    fn facts_become_rules_with_empty_bodies() {
        let db = parse_database("p(a). p(b).").unwrap();
        let p = parse_program("p(X) -> q(X).").unwrap();
        let (gp, _) = ground_program(&db, &skolemize(&p), &GroundingLimits::default());
        let fact_count = gp
            .rules
            .iter()
            .filter(|r| r.body_pos.is_empty() && r.body_neg.is_empty())
            .count();
        assert_eq!(fact_count, 2);
    }
}
