//! Ground normal logic programs.

use std::collections::BTreeSet;
use std::fmt;

use ntgd_core::{Atom, Term};

/// A ground normal rule `head ← body⁺, not body⁻`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct GroundRule {
    /// The single head atom.
    pub head: Atom,
    /// Positive body atoms.
    pub body_pos: Vec<Atom>,
    /// Negated body atoms.
    pub body_neg: Vec<Atom>,
}

impl GroundRule {
    /// Creates a ground rule.
    pub fn new(head: Atom, body_pos: Vec<Atom>, body_neg: Vec<Atom>) -> GroundRule {
        GroundRule {
            head,
            body_pos,
            body_neg,
        }
    }

    /// Creates a fact (a rule with an empty body).
    pub fn fact(head: Atom) -> GroundRule {
        GroundRule::new(head, Vec::new(), Vec::new())
    }

    /// Returns `true` if the rule has no negative body atoms.
    pub fn is_positive(&self) -> bool {
        self.body_neg.is_empty()
    }
}

impl fmt::Display for GroundRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if self.body_pos.is_empty() && self.body_neg.is_empty() {
            return write!(f, ".");
        }
        write!(f, " <- ")?;
        let mut first = true;
        for a in &self.body_pos {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        for a in &self.body_neg {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "not {a}")?;
            first = false;
        }
        write!(f, ".")
    }
}

/// A ground normal logic program together with its (relevant) Herbrand base.
#[derive(Clone, Debug, Default)]
pub struct GroundProgram {
    /// The ground rules (facts are rules with empty bodies).
    pub rules: Vec<GroundRule>,
    /// All ground atoms mentioned anywhere in the program (relevant Herbrand
    /// base).
    pub herbrand: BTreeSet<Atom>,
}

impl GroundProgram {
    /// Creates a ground program from rules, computing the Herbrand base.
    pub fn new(rules: Vec<GroundRule>) -> GroundProgram {
        let mut herbrand = BTreeSet::new();
        for r in &rules {
            herbrand.insert(r.head.clone());
            herbrand.extend(r.body_pos.iter().cloned());
            herbrand.extend(r.body_neg.iter().cloned());
        }
        GroundProgram { rules, herbrand }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The atoms that occur under negation.
    pub fn negated_atoms(&self) -> BTreeSet<Atom> {
        self.rules
            .iter()
            .flat_map(|r| r.body_neg.iter().cloned())
            .collect()
    }

    /// All ground terms of the relevant Herbrand base.
    pub fn herbrand_terms(&self) -> BTreeSet<Term> {
        self.herbrand
            .iter()
            .flat_map(|a| a.terms().copied().collect::<Vec<_>>())
            .collect()
    }

    /// Computes the least model of the **positive** rules (negative bodies
    /// removed entirely would be wrong, so callers must pass reducts); this
    /// helper ignores rules that still carry negative literals.
    pub fn least_model_of_positive_rules(&self) -> BTreeSet<Atom> {
        least_model(self.rules.iter().filter(|r| r.is_positive()))
    }
}

impl fmt::Display for GroundProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Least model of a set of positive ground rules (naive bottom-up fixpoint).
pub fn least_model<'a, I>(rules: I) -> BTreeSet<Atom>
where
    I: IntoIterator<Item = &'a GroundRule>,
    I::IntoIter: Clone,
{
    let rules = rules.into_iter();
    let mut model: BTreeSet<Atom> = BTreeSet::new();
    loop {
        let mut changed = false;
        for rule in rules.clone() {
            if model.contains(&rule.head) {
                continue;
            }
            if rule.body_pos.iter().all(|a| model.contains(a)) {
                model.insert(rule.head.clone());
                changed = true;
            }
        }
        if !changed {
            return model;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::{atom, cst};

    fn a(name: &str) -> Atom {
        atom(name, vec![cst("c")])
    }

    #[test]
    fn least_model_computes_closure() {
        let rules = [
            GroundRule::fact(a("p")),
            GroundRule::new(a("q"), vec![a("p")], vec![]),
            GroundRule::new(a("r"), vec![a("q"), a("p")], vec![]),
            GroundRule::new(a("s"), vec![a("t")], vec![]),
        ];
        let m = least_model(rules.iter());
        assert!(m.contains(&a("p")) && m.contains(&a("q")) && m.contains(&a("r")));
        assert!(!m.contains(&a("s")));
    }

    #[test]
    fn ground_program_collects_herbrand_base() {
        let gp = GroundProgram::new(vec![GroundRule::new(a("q"), vec![a("p")], vec![a("r")])]);
        assert_eq!(gp.herbrand.len(), 3);
        assert_eq!(gp.negated_atoms(), BTreeSet::from([a("r")]));
        assert_eq!(gp.herbrand_terms(), BTreeSet::from([cst("c")]));
        assert_eq!(gp.len(), 1);
    }

    #[test]
    fn display_renders_rules_and_facts() {
        let r = GroundRule::new(a("q"), vec![a("p")], vec![a("r")]);
        assert_eq!(r.to_string(), "q(c) <- p(c), not r(c).");
        assert_eq!(GroundRule::fact(a("p")).to_string(), "p(c).");
    }
}
