//! The equality-friendly well-founded semantics (EFWFS) of Gottlob et al.
//! \[21\], reproduced far enough to run the paper's Examples 2 and 3.
//!
//! The idea (paper, Section 1): the meaning of `(D, Σ)` is captured by the
//! set `I(D, Σ)` of all normal programs obtained by
//!
//! 1. *unifying* constants occurring in `D` (the unique name assumption is
//!    **not** adopted), and
//! 2. replacing each NTGD `σ ∈ Σ` by arbitrary ground *instances* of `σ` —
//!    at least one for every assignment of its body variables — where an
//!    instance of `∀X∀Y(ϕ(X,Y) → ∃Z ψ(X,Z))` is a rule `ϕ(a,b) → ψ(a,c)`
//!    over constants.
//!
//! The EFWFS models of `(D, Σ)` are `{WFS(Π) | Π ∈ I(D,Σ)}`, and a query is
//! (cautiously) entailed if it holds in every such three-valued model.
//!
//! `I(D, Σ)` is infinite (instances may use arbitrary constants, and each
//! body assignment may receive arbitrarily many instances), so this module
//! implements the obvious **bounded** version: instances draw their constants
//! from `dom(D)` ∪ the constants of `Σ` and the query ∪ a configurable pool
//! of fresh constants, each body assignment receives at most
//! `max_witnesses_per_trigger` instances, and at most `max_programs` programs
//! are explored.  Within those bounds the construction is exhaustive, which
//! is enough to replay the paper's discussion: non-entailment results
//! (Examples 2 and 3) are definitive because they only need *one* witnessing
//! program, while entailment results are relative to the explored bound (the
//! [`EfwfsOutcome::exhaustive`] flag reports whether the bound was reached).

use std::collections::BTreeSet;

use ntgd_core::matcher::all_atom_homomorphisms;
use ntgd_core::{Atom, Database, Literal, Program, Query, Substitution, Symbol, Term};

use crate::program::{GroundProgram, GroundRule};
use crate::wellfounded::{well_founded_model, WellFoundedModel};

/// Bounds for the EFWFS instance-space exploration.
#[derive(Clone, Debug)]
pub struct EfwfsConfig {
    /// Fresh constants added to the instance pool (beyond the constants of
    /// the database, the rules and the query).
    pub fresh_constants: usize,
    /// Maximum number of instances generated for a single rule and body
    /// assignment (the paper allows arbitrarily many; 2 suffices to replay
    /// Example 3's "two fathers" program).
    pub max_witnesses_per_trigger: usize,
    /// Maximum number of programs of `I(D,Σ)` explored before truncating.
    pub max_programs: usize,
    /// Whether to enumerate unifications (set partitions) of the database
    /// constants, as the equality-friendly semantics prescribes.
    pub unify_database_constants: bool,
    /// Partition enumeration is skipped (identity only) when the database has
    /// more constants than this.
    pub max_unified_constants: usize,
}

impl Default for EfwfsConfig {
    fn default() -> Self {
        EfwfsConfig {
            fresh_constants: 1,
            max_witnesses_per_trigger: 2,
            max_programs: 20_000,
            unify_database_constants: true,
            max_unified_constants: 5,
        }
    }
}

/// The (bounded) set of equality-friendly well-founded models.
#[derive(Clone, Debug)]
pub struct EfwfsResult {
    /// The distinct well-founded models of the explored programs.
    pub models: Vec<WellFoundedModel>,
    /// How many programs of `I(D,Σ)` were explored.
    pub programs_explored: usize,
    /// `true` if the exploration stopped because `max_programs` was reached.
    pub truncated: bool,
}

/// The outcome of a cautious EFWFS entailment check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EfwfsOutcome {
    /// `true` if the query holds in every explored model.
    pub entailed: bool,
    /// `true` if the bounded instance space was explored completely (the
    /// answer is then definitive *for the bounded pool*; non-entailment is
    /// always definitive).
    pub exhaustive: bool,
}

/// Enumerates the set partitions of `items` as vectors of blocks.
fn set_partitions<T: Clone>(items: &[T]) -> Vec<Vec<Vec<T>>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let first = items[0].clone();
    let rest = set_partitions(&items[1..]);
    let mut out = Vec::new();
    for partition in rest {
        // Add `first` to each existing block …
        for i in 0..partition.len() {
            let mut extended = partition.clone();
            extended[i].push(first.clone());
            out.push(extended);
        }
        // … or as its own new block.
        let mut extended = partition.clone();
        extended.push(vec![first.clone()]);
        out.push(extended);
    }
    out
}

/// A constant-unification map induced by a partition of the database
/// constants: every constant is replaced by its block representative.
fn unification_maps(database: &Database, config: &EfwfsConfig) -> Vec<Vec<(Symbol, Symbol)>> {
    let constants: Vec<Symbol> = database.constants().into_iter().collect();
    if !config.unify_database_constants || constants.len() > config.max_unified_constants {
        return vec![Vec::new()];
    }
    set_partitions(&constants)
        .into_iter()
        .map(|partition| {
            let mut map = Vec::new();
            for block in partition {
                let representative = *block.iter().min().expect("non-empty block");
                for constant in block {
                    if constant != representative {
                        map.push((constant, representative));
                    }
                }
            }
            map
        })
        .collect()
}

fn apply_unification_to_term(term: &Term, map: &[(Symbol, Symbol)]) -> Term {
    match term {
        Term::Const(c) => {
            for (from, to) in map {
                if c == from {
                    return Term::Const(*to);
                }
            }
            *term
        }
        other => *other,
    }
}

fn apply_unification_to_atom(atom: &Atom, map: &[(Symbol, Symbol)]) -> Atom {
    Atom::new(
        atom.predicate(),
        atom.args()
            .iter()
            .map(|t| apply_unification_to_term(t, map))
            .collect(),
    )
}

/// The ground rules of one instance of a rule: the body assignment extended
/// with one witness assignment, one ground rule per head atom.
fn instance_rules(rule: &ntgd_core::Ntgd, assignment: &Substitution) -> Vec<GroundRule> {
    let body_pos: Vec<Atom> = rule
        .body_positive()
        .into_iter()
        .map(|a| assignment.apply_atom(a))
        .collect();
    let body_neg: Vec<Atom> = rule
        .body_negative()
        .into_iter()
        .map(|a| assignment.apply_atom(a))
        .collect();
    rule.head()
        .iter()
        .map(|head| {
            GroundRule::new(
                assignment.apply_atom(head),
                body_pos.clone(),
                body_neg.clone(),
            )
        })
        .collect()
}

/// All assignments of `variables` to the constant pool.
fn assignments(variables: &[Symbol], pool: &[Term], base: &Substitution) -> Vec<Substitution> {
    let mut out = vec![base.clone()];
    for variable in variables {
        let mut next = Vec::with_capacity(out.len() * pool.len());
        for assignment in &out {
            for value in pool {
                let mut extended = assignment.clone();
                extended.bind(Term::Var(*variable), *value);
                next.push(extended);
            }
        }
        out = next;
    }
    out
}

/// The non-empty subsets of `0..n` with at most `k` elements, as index lists.
fn bounded_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    fn recurse(
        start: usize,
        n: usize,
        k: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if !current.is_empty() {
            out.push(current.clone());
        }
        if current.len() == k {
            return;
        }
        for i in start..n {
            current.push(i);
            recurse(i + 1, n, k, current, out);
            current.pop();
        }
    }
    recurse(0, n, k, &mut current, &mut out);
    out
}

/// Computes the (bounded) EFWFS models of `(D, Σ)`.  The `query` is only used
/// to make sure its constants belong to the instance pool.
pub fn efwfs_models(
    database: &Database,
    program: &Program,
    query: Option<&Query>,
    config: &EfwfsConfig,
) -> EfwfsResult {
    // Constant pool.
    let mut pool_symbols: BTreeSet<Symbol> = database.constants();
    for term in program.constants() {
        if let Term::Const(c) = term {
            pool_symbols.insert(c);
        }
    }
    if let Some(query) = query {
        for literal in query.literals() {
            for term in literal.atom().args() {
                if let Term::Const(c) = term {
                    pool_symbols.insert(*c);
                }
            }
        }
    }
    for i in 0..config.fresh_constants {
        pool_symbols.insert(Symbol::intern(&format!("efwfs_fresh_{i}")));
    }
    let pool: Vec<Term> = pool_symbols.into_iter().map(Term::Const).collect();

    let mut models: Vec<WellFoundedModel> = Vec::new();
    let mut seen: BTreeSet<(Vec<Atom>, Vec<Atom>, Vec<Atom>)> = BTreeSet::new();
    let mut programs_explored = 0usize;
    let mut truncated = false;

    'partitions: for unification in unification_maps(database, config) {
        let facts: Vec<GroundRule> = database
            .facts()
            .map(|fact| GroundRule::fact(apply_unification_to_atom(fact, &unification)))
            .collect();

        // Per trigger (rule + body assignment), the list of alternative
        // instance sets to choose from.
        let mut choice_sets: Vec<Vec<Vec<GroundRule>>> = Vec::new();
        for (_, rule) in program.iter() {
            let body_variables: Vec<Symbol> = rule.universal_variables().into_iter().collect();
            let existential_variables: Vec<Symbol> =
                rule.existential_variables().into_iter().collect();
            for body_assignment in assignments(&body_variables, &pool, &Substitution::new()) {
                if existential_variables.is_empty() {
                    choice_sets.push(vec![instance_rules(rule, &body_assignment)]);
                    continue;
                }
                let witness_assignments =
                    assignments(&existential_variables, &pool, &body_assignment);
                let subsets =
                    bounded_subsets(witness_assignments.len(), config.max_witnesses_per_trigger);
                let choices: Vec<Vec<GroundRule>> = subsets
                    .into_iter()
                    .map(|subset| {
                        subset
                            .into_iter()
                            .flat_map(|i| instance_rules(rule, &witness_assignments[i]))
                            .collect()
                    })
                    .collect();
                choice_sets.push(choices);
            }
        }

        // Odometer over the choice sets.
        let mut odometer = vec![0usize; choice_sets.len()];
        loop {
            if programs_explored >= config.max_programs {
                truncated = true;
                break 'partitions;
            }
            let mut rules: Vec<GroundRule> = facts.clone();
            for (trigger, &choice) in odometer.iter().enumerate() {
                rules.extend(choice_sets[trigger][choice].iter().cloned());
            }
            let ground = GroundProgram::new(rules);
            let wfs = well_founded_model(&ground);
            programs_explored += 1;
            let key = (
                wfs.true_atoms.iter().cloned().collect::<Vec<Atom>>(),
                wfs.false_atoms.iter().cloned().collect::<Vec<Atom>>(),
                wfs.undefined_atoms.iter().cloned().collect::<Vec<Atom>>(),
            );
            if seen.insert(key) {
                models.push(wfs);
            }

            // Advance the odometer.
            let mut position = 0usize;
            loop {
                if position == odometer.len() {
                    break;
                }
                odometer[position] += 1;
                if odometer[position] < choice_sets[position].len() {
                    break;
                }
                odometer[position] = 0;
                position += 1;
            }
            if position == odometer.len() {
                break;
            }
            if odometer.is_empty() {
                break;
            }
        }
    }

    EfwfsResult {
        models,
        programs_explored,
        truncated,
    }
}

/// Evaluates a normal (Boolean or non-Boolean) query over a three-valued
/// well-founded model: positive literals must be *true*, negative literals
/// must be over *false* atoms (undefined atoms satisfy neither).
pub fn holds_in_wfs(query: &Query, model: &WellFoundedModel) -> bool {
    let positive_interpretation =
        ntgd_core::Interpretation::from_atoms(model.true_atoms.iter().cloned());
    let positive_atoms: Vec<Atom> = query
        .literals()
        .iter()
        .filter(|l| l.is_positive())
        .map(|l| l.atom().clone())
        .collect();
    let negative_atoms: Vec<&Literal> = query
        .literals()
        .iter()
        .filter(|l| l.is_negative())
        .collect();
    let homomorphisms = all_atom_homomorphisms(
        &positive_atoms,
        &positive_interpretation,
        &Substitution::new(),
    );
    homomorphisms.into_iter().any(|h| {
        negative_atoms
            .iter()
            .all(|l| model.false_atoms.contains(&h.apply_atom(l.atom())))
    })
}

/// Cautious EFWFS entailment of a Boolean query within the configured bounds.
pub fn efwfs_entails_cautious(
    database: &Database,
    program: &Program,
    query: &Query,
    config: &EfwfsConfig,
) -> EfwfsOutcome {
    let result = efwfs_models(database, program, Some(query), config);
    let entailed = result.models.iter().all(|m| holds_in_wfs(query, m));
    EfwfsOutcome {
        entailed,
        exhaustive: !result.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_parser::{parse_database, parse_program, parse_query};

    const EXAMPLE1: &str = "person(X) -> hasFather(X, Y).\
         hasFather(X, Y) -> sameAs(Y, Y).\
         hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).";

    fn small_config() -> EfwfsConfig {
        EfwfsConfig {
            fresh_constants: 1,
            max_witnesses_per_trigger: 2,
            max_programs: 5_000,
            unify_database_constants: true,
            max_unified_constants: 4,
        }
    }

    #[test]
    fn example2_efwfs_does_not_entail_the_negative_father_query() {
        // The paper: EFWFS yields the *intended* answer here — the query
        // ¬hasFather(alice, bob) is not entailed, because some instance
        // program makes bob the father of alice.
        let database = parse_database("person(alice).").unwrap();
        let program = parse_program(EXAMPLE1).unwrap();
        let query = parse_query("?- not hasFather(alice, bob).").unwrap();
        let outcome = efwfs_entails_cautious(&database, &program, &query, &small_config());
        assert!(!outcome.entailed);
    }

    #[test]
    fn example3_efwfs_fails_to_entail_that_alice_is_normal() {
        // The paper: one expects ¬abnormal(alice) to be entailed, but EFWFS
        // does not entail it — some instance program gives alice two distinct
        // fathers, making her abnormal.  This is the shortcoming that
        // motivates the paper's new semantics.
        let database = parse_database("person(alice).").unwrap();
        let program = parse_program(EXAMPLE1).unwrap();
        let query = parse_query("?- not abnormal(alice).").unwrap();
        let outcome = efwfs_entails_cautious(&database, &program, &query, &small_config());
        assert!(!outcome.entailed);
    }

    #[test]
    fn positive_consequences_of_every_instance_are_entailed() {
        let database = parse_database("person(alice).").unwrap();
        let program = parse_program(EXAMPLE1).unwrap();
        // Every instance program derives *some* father for alice, and then a
        // reflexive sameAs fact for that father; the existential query holds
        // in every model.
        let query = parse_query("?- hasFather(alice, Y), sameAs(Y, Y).").unwrap();
        let outcome = efwfs_entails_cautious(&database, &program, &query, &small_config());
        assert!(outcome.entailed);
        assert!(outcome.exhaustive);
    }

    #[test]
    fn existential_free_programs_have_a_single_efwfs_model() {
        let database = parse_database("course(db). hard(db).").unwrap();
        let program = parse_program("course(X), not hard(X) -> easy(X).").unwrap();
        let config = EfwfsConfig {
            unify_database_constants: false,
            ..small_config()
        };
        let result = efwfs_models(&database, &program, None, &config);
        assert_eq!(result.models.len(), 1);
        assert!(!result.truncated);
        let model = &result.models[0];
        assert!(model
            .false_atoms
            .contains(&ntgd_core::atom("easy", vec![ntgd_core::cst("db")])));
    }

    #[test]
    fn constant_unification_produces_models_where_distinct_constants_coincide() {
        // Without the unique name assumption, a ≈ b is a legitimate reading:
        // in the unified program the fact p(b) becomes p(a), so q(a) is
        // derived while q(b) is underivable in the non-unified reading — the
        // query ?- q(b). is therefore not entailed, but ?- q(X). is.
        let database = parse_database("p(a). r(b).").unwrap();
        let program = parse_program("p(X) -> q(X).").unwrap();
        let entailed_everywhere = parse_query("?- q(X).").unwrap();
        let only_sometimes = parse_query("?- q(b).").unwrap();
        let config = small_config();
        assert!(
            efwfs_entails_cautious(&database, &program, &entailed_everywhere, &config).entailed
        );
        assert!(!efwfs_entails_cautious(&database, &program, &only_sometimes, &config).entailed);
    }

    #[test]
    fn truncation_is_reported() {
        let database = parse_database("person(alice). person(bo).").unwrap();
        let program = parse_program(EXAMPLE1).unwrap();
        let config = EfwfsConfig {
            max_programs: 3,
            ..small_config()
        };
        let result = efwfs_models(&database, &program, None, &config);
        assert!(result.truncated);
        assert_eq!(result.programs_explored, 3);
    }

    #[test]
    fn bounded_subsets_enumerates_singletons_and_pairs() {
        let subsets = bounded_subsets(3, 2);
        assert_eq!(subsets.len(), 6);
        assert!(subsets.contains(&vec![0]));
        assert!(subsets.contains(&vec![1, 2]));
        assert!(!subsets.iter().any(std::vec::Vec::is_empty));
    }

    #[test]
    fn set_partitions_of_three_elements_number_five() {
        let partitions = set_partitions(&[1, 2, 3]);
        assert_eq!(partitions.len(), 5);
    }
}
