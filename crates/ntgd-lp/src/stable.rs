//! Stable models of ground normal programs (Gelfond–Lifschitz).
//!
//! An interpretation `M` is a stable model of a ground normal program `P` if
//! `M` is the least model of the reduct `P^M` (remove every rule with a
//! negated atom in `M`, drop the remaining negative literals).
//!
//! The enumeration below first computes the well-founded model (a sound
//! approximation: WF-true atoms belong to every stable model, WF-false atoms
//! to none), then branches over the remaining *undefined* atoms that occur
//! under negation.  For normal programs the reduct depends only on the
//! negated atoms, so a guess over those atoms determines a unique candidate,
//! which is then verified.

use std::collections::BTreeSet;

use ntgd_core::Atom;

use crate::program::GroundProgram;
use crate::wellfounded::well_founded_model;

/// Limits for stable model enumeration.
#[derive(Clone, Debug)]
pub struct StableEnumerationLimits {
    /// Maximum number of undefined negated atoms to branch over (the search
    /// is exponential in this number).
    pub max_choice_atoms: usize,
    /// Maximum number of stable models to return.
    pub max_models: usize,
}

impl Default for StableEnumerationLimits {
    fn default() -> Self {
        StableEnumerationLimits {
            max_choice_atoms: 24,
            max_models: 1_024,
        }
    }
}

/// Least model of the reduct of `program` w.r.t. the guessed set of negated
/// atoms `assumed_true`.
fn reduct_least_model(program: &GroundProgram, assumed_true: &BTreeSet<Atom>) -> BTreeSet<Atom> {
    let mut model: BTreeSet<Atom> = BTreeSet::new();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if model.contains(&rule.head) {
                continue;
            }
            if rule.body_neg.iter().any(|a| assumed_true.contains(a)) {
                continue;
            }
            if rule.body_pos.iter().all(|a| model.contains(a)) {
                model.insert(rule.head.clone());
                changed = true;
            }
        }
        if !changed {
            return model;
        }
    }
}

/// Enumerates the stable models of a ground normal program.
///
/// Returns `Err(actual)` if the number of undefined negated atoms exceeds the
/// configured branching limit (`actual` is that number).
pub fn stable_models(
    program: &GroundProgram,
    limits: &StableEnumerationLimits,
) -> Result<Vec<BTreeSet<Atom>>, usize> {
    let wfm = well_founded_model(program);
    let negated = program.negated_atoms();

    // Negated atoms whose value is already fixed by the well-founded model.
    let forced_true: BTreeSet<Atom> = negated
        .iter()
        .filter(|a| wfm.true_atoms.contains(*a))
        .cloned()
        .collect();
    let choice_atoms: Vec<Atom> = negated
        .iter()
        .filter(|a| wfm.undefined_atoms.contains(*a))
        .cloned()
        .collect();
    if choice_atoms.len() > limits.max_choice_atoms {
        return Err(choice_atoms.len());
    }

    let mut models = Vec::new();
    let combinations: u64 = 1u64 << choice_atoms.len();
    for mask in 0..combinations {
        if models.len() >= limits.max_models {
            break;
        }
        let mut assumed = forced_true.clone();
        for (i, a) in choice_atoms.iter().enumerate() {
            if mask & (1 << i) != 0 {
                assumed.insert(a.clone());
            }
        }
        let candidate = reduct_least_model(program, &assumed);
        // The guess must be reproduced exactly on the negated atoms.
        let consistent = negated
            .iter()
            .all(|a| candidate.contains(a) == assumed.contains(a));
        if consistent {
            models.push(candidate);
        }
    }
    Ok(models)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::{ground_program, GroundingLimits};
    use crate::skolem::skolemize;
    use ntgd_core::{atom, cst};
    use ntgd_parser::{parse_database, parse_program};

    fn ground(db: &str, rules: &str) -> GroundProgram {
        let db = parse_database(db).unwrap();
        let p = parse_program(rules).unwrap();
        ground_program(&db, &skolemize(&p), &GroundingLimits::default()).0
    }

    fn models(db: &str, rules: &str) -> Vec<BTreeSet<Atom>> {
        stable_models(&ground(db, rules), &StableEnumerationLimits::default()).unwrap()
    }

    #[test]
    fn positive_programs_have_a_unique_stable_model() {
        let ms = models("p(a).", "p(X) -> q(X). q(X) -> r(X).");
        assert_eq!(ms.len(), 1);
        assert!(ms[0].contains(&atom("r", vec![cst("a")])));
        assert_eq!(ms[0].len(), 3);
    }

    #[test]
    fn even_negative_loop_has_two_stable_models() {
        let ms = models("seed(x).", "seed(X), not b -> a. seed(X), not a -> b.");
        assert_eq!(ms.len(), 2);
        assert!(ms
            .iter()
            .any(|m| m.contains(&atom("a", vec![])) && !m.contains(&atom("b", vec![]))));
        assert!(ms
            .iter()
            .any(|m| m.contains(&atom("b", vec![])) && !m.contains(&atom("a", vec![]))));
    }

    #[test]
    fn odd_negative_loop_has_no_stable_model() {
        let ms = models("seed(x).", "seed(X), not a -> a.");
        assert!(ms.is_empty());
    }

    #[test]
    fn the_running_example_of_section_3_2_has_no_stable_model() {
        // D = {p(0)},  p(X), not t(X) -> r(X).   r(X) -> t(X).
        let ms = models("p(0).", "p(X), not t(X) -> r(X). r(X) -> t(X).");
        assert!(ms.is_empty());
    }

    #[test]
    fn example_1_unique_lp_stable_model() {
        // Example 1 + D = {person(alice)}: the unique LP stable model makes
        // alice's father the Skolem term and alice not abnormal.
        let ms = models(
            "person(alice).",
            "person(X) -> hasFather(X, Y).\
             hasFather(X, Y) -> sameAs(Y, Y).\
             hasFather(X, Y), hasFather(X, Z), not sameAs(Y, Z) -> abnormal(X).",
        );
        assert_eq!(ms.len(), 1);
        let m = &ms[0];
        assert_eq!(m.len(), 3);
        assert!(m.iter().any(|a| a.predicate().as_str() == "hasFather"
            && a.args()[1].to_string().contains("f0_Y(alice)")));
        assert!(!m.iter().any(|a| a.predicate().as_str() == "abnormal"));
    }

    #[test]
    fn stratified_programs_have_the_perfect_model() {
        let ms = models("p(a). p(b). q(a).", "p(X), not q(X) -> r(X).");
        assert_eq!(ms.len(), 1);
        assert!(ms[0].contains(&atom("r", vec![cst("b")])));
        assert!(!ms[0].contains(&atom("r", vec![cst("a")])));
    }

    #[test]
    fn branching_limit_is_reported() {
        // 30 independent even loops exceed the default branching limit of 24.
        let mut rules = String::new();
        let mut facts = String::new();
        for i in 0..30 {
            facts.push_str(&format!("s{i}(x). "));
            rules.push_str(&format!(
                "s{i}(X), not b{i} -> a{i}. s{i}(X), not a{i} -> b{i}. "
            ));
        }
        let gp = ground(&facts, &rules);
        let err = stable_models(&gp, &StableEnumerationLimits::default()).unwrap_err();
        assert_eq!(err, 60);
    }

    #[test]
    fn model_limit_truncates_enumeration() {
        let gp = ground("seed(x).", "seed(X), not b -> a. seed(X), not a -> b.");
        let limits = StableEnumerationLimits {
            max_models: 1,
            ..Default::default()
        };
        assert_eq!(stable_models(&gp, &limits).unwrap().len(), 1);
    }
}
