//! Graph colourability via disjunctive rules, and a robust (CERT3COL-style)
//! variation.
//!
//! Section 7.1 of the paper lists, among the applications of the new query
//! languages, "an interesting variation of graph k-colorability, which
//! generalizes the well-known problem CERT3COL".  We reproduce that spirit
//! with two layers:
//!
//! * [`ColoringInstance`] — plain k-colourability of a graph, encoded with a
//!   single disjunctive guess rule plus clash rules and answered by the
//!   brave/cautious semantics (the NP layer);
//! * [`RobustColoringInstance`] — a set of *uncertain* edges controlled by an
//!   adversary; the graph is robustly colourable if **every** subset of the
//!   uncertain edges keeps it k-colourable (the ∀∃ / second-level layer).
//!   The adversarial quantifier is enumerated explicitly, each inner check
//!   going through the declarative encoding; a brute-force reference solver
//!   validates both layers.

use rand::Rng;

use ntgd_core::{atom, cst, Atom, Database, DisjunctiveProgram, Ndtgd, Query};
use ntgd_sms::{NullBudget, SmsEngine, SmsError, SmsOptions};

/// Colour names used by the encoding (k ≤ 4 keeps groundings small).
const COLOURS: [&str; 4] = ["col_red", "col_green", "col_blue", "col_yellow"];

/// A plain k-colourability instance.
#[derive(Clone, Debug)]
pub struct ColoringInstance {
    /// Number of vertices (named `v0`, `v1`, ...).
    pub vertices: usize,
    /// Undirected edges as pairs of vertex indices.
    pub edges: Vec<(usize, usize)>,
    /// Number of colours (2..=4).
    pub colours: usize,
}

impl ColoringInstance {
    /// Creates an instance, clamping the colour count to the supported range.
    pub fn new(vertices: usize, edges: Vec<(usize, usize)>, colours: usize) -> ColoringInstance {
        ColoringInstance {
            vertices,
            edges,
            colours: colours.clamp(1, COLOURS.len()),
        }
    }

    /// A random graph with the given edge probability.
    pub fn random<R: Rng>(
        rng: &mut R,
        vertices: usize,
        edge_probability: f64,
        colours: usize,
    ) -> ColoringInstance {
        let mut edges = Vec::new();
        for u in 0..vertices {
            for v in (u + 1)..vertices {
                if rng.gen_bool(edge_probability) {
                    edges.push((u, v));
                }
            }
        }
        ColoringInstance::new(vertices, edges, colours)
    }

    fn vertex(&self, i: usize) -> Atom {
        atom("vertex", vec![cst(&format!("v{i}"))])
    }

    /// The database: `vertex/1` and `edge/2` facts.
    pub fn database(&self) -> Database {
        let mut facts: Vec<Atom> = (0..self.vertices).map(|i| self.vertex(i)).collect();
        for &(u, v) in &self.edges {
            facts.push(atom(
                "edge",
                vec![cst(&format!("v{u}")), cst(&format!("v{v}"))],
            ));
        }
        Database::from_facts(facts).expect("colouring facts are ground")
    }

    /// The disjunctive guess-and-check program: one disjunct per colour plus
    /// one clash rule per colour.
    pub fn program(&self) -> DisjunctiveProgram {
        let mut rules = Vec::new();
        let x = ntgd_core::var("X");
        let y = ntgd_core::var("Y");
        let disjuncts: Vec<Vec<Atom>> = COLOURS[..self.colours]
            .iter()
            .map(|c| vec![atom(c, vec![x])])
            .collect();
        rules.push(
            Ndtgd::new(vec![ntgd_core::pos("vertex", vec![x])], disjuncts)
                .expect("guess rule is safe"),
        );
        for c in &COLOURS[..self.colours] {
            rules.push(
                Ndtgd::new(
                    vec![
                        ntgd_core::pos("edge", vec![x, y]),
                        ntgd_core::pos(c, vec![x]),
                        ntgd_core::pos(c, vec![y]),
                    ],
                    vec![vec![atom("clash", vec![])]],
                )
                .expect("clash rule is safe"),
            );
        }
        DisjunctiveProgram::from_rules(rules).expect("consistent schema")
    }

    fn engine(&self) -> SmsEngine {
        SmsEngine::new_disjunctive(self.program()).with_options(SmsOptions {
            null_budget: NullBudget::None,
            ..Default::default()
        })
    }

    /// Decides k-colourability through the stable-model engine: the graph is
    /// colourable iff some stable model avoids `clash` (a brave query).
    pub fn colourable_via_sms(&self) -> Result<bool, SmsError> {
        let q = Query::boolean(vec![ntgd_core::neg("clash", vec![])]).expect("valid query");
        self.engine().entails_brave(&self.database(), &q)
    }

    /// Brute-force k-colourability.
    pub fn colourable_brute_force(&self) -> bool {
        fn assign(instance: &ColoringInstance, colours: &mut Vec<usize>) -> bool {
            let v = colours.len();
            if v == instance.vertices {
                return true;
            }
            for c in 0..instance.colours {
                let conflict = instance.edges.iter().any(|&(a, b)| {
                    (a == v && b < v && colours[b] == c) || (b == v && a < v && colours[a] == c)
                });
                if !conflict {
                    colours.push(c);
                    if assign(instance, colours) {
                        return true;
                    }
                    colours.pop();
                }
            }
            false
        }
        assign(self, &mut Vec::new())
    }
}

/// A robust colourability instance: `certain_edges` are always present, each
/// subset of `uncertain_edges` may be added by an adversary.
#[derive(Clone, Debug)]
pub struct RobustColoringInstance {
    /// Number of vertices.
    pub vertices: usize,
    /// Edges that are always present.
    pub certain_edges: Vec<(usize, usize)>,
    /// Edges the adversary may add.
    pub uncertain_edges: Vec<(usize, usize)>,
    /// Number of colours.
    pub colours: usize,
}

impl RobustColoringInstance {
    fn instance_for(&self, mask: u64) -> ColoringInstance {
        let mut edges = self.certain_edges.clone();
        for (i, e) in self.uncertain_edges.iter().enumerate() {
            if mask & (1 << i) != 0 {
                edges.push(*e);
            }
        }
        ColoringInstance::new(self.vertices, edges, self.colours)
    }

    /// Robust colourability decided with the declarative encoding for the
    /// inner (NP) check and explicit enumeration of the adversary's choices.
    pub fn robustly_colourable_via_sms(&self) -> Result<bool, SmsError> {
        for mask in 0..(1u64 << self.uncertain_edges.len()) {
            if !self.instance_for(mask).colourable_via_sms()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Brute-force reference for robust colourability.
    pub fn robustly_colourable_brute_force(&self) -> bool {
        (0..(1u64 << self.uncertain_edges.len()))
            .all(|mask| self.instance_for(mask).colourable_brute_force())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn triangle() -> Vec<(usize, usize)> {
        vec![(0, 1), (1, 2), (2, 0)]
    }

    #[test]
    fn triangle_is_3_but_not_2_colourable() {
        let two = ColoringInstance::new(3, triangle(), 2);
        assert!(!two.colourable_brute_force());
        assert!(!two.colourable_via_sms().unwrap());
        let three = ColoringInstance::new(3, triangle(), 3);
        assert!(three.colourable_brute_force());
        assert!(three.colourable_via_sms().unwrap());
    }

    #[test]
    fn even_cycle_is_2_colourable() {
        let square = ColoringInstance::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)], 2);
        assert!(square.colourable_brute_force());
        assert!(square.colourable_via_sms().unwrap());
    }

    #[test]
    fn random_instances_agree_with_brute_force() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..3 {
            let g = ColoringInstance::random(&mut rng, 4, 0.5, 2);
            assert_eq!(
                g.colourable_via_sms().unwrap(),
                g.colourable_brute_force(),
                "disagreement on {g:?}"
            );
        }
    }

    #[test]
    fn robust_colourability_quantifies_over_uncertain_edges() {
        // A path 0-1-2 is always 2-colourable, but adding the closing edge
        // 2-0 creates an odd cycle: not robustly 2-colourable.
        let r = RobustColoringInstance {
            vertices: 3,
            certain_edges: vec![(0, 1), (1, 2)],
            uncertain_edges: vec![(2, 0)],
            colours: 2,
        };
        assert!(!r.robustly_colourable_brute_force());
        assert!(!r.robustly_colourable_via_sms().unwrap());
        // With three colours the same instance is robust.
        let r3 = RobustColoringInstance { colours: 3, ..r };
        assert!(r3.robustly_colourable_brute_force());
        assert!(r3.robustly_colourable_via_sms().unwrap());
    }
}
