//! # ntgd-encodings
//!
//! Declarative applications of the `WATGD¬` query languages (paper,
//! Sections 5.3 and 7.1): problems in the second level of the polynomial
//! hierarchy solved by encoding them as NTGD programs and letting the
//! stable-model engine do the work.  Each module ships a brute-force
//! reference solver used to validate the encodings in tests and experiments.
//!
//! * [`qbf`] — satisfiability of `∃∀` quantified Boolean formulas (2-QBF∃)
//!   via the exact reduction of Section 5.3, answered with the brave
//!   semantics as in Section 7.1;
//! * [`coloring`] — graph colourability via disjunctive rules, plus the
//!   "robust colourability under adversarial edge subsets" variation the
//!   paper mentions as a CERT3COL generalisation;
//! * [`cqa`] — consistent query answering over subset repairs: repairs are
//!   the stable models of a choice-and-saturate NTGD program, certain answers
//!   are cautious answers.

pub mod coloring;
pub mod cqa;
pub mod qbf;

pub use coloring::{ColoringInstance, RobustColoringInstance};
pub use cqa::CqaInstance;
pub use qbf::TwoQbf;
