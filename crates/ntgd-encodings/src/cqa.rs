//! Consistent query answering (CQA) over subset repairs.
//!
//! Section 7.1 lists consistent query answering relative to set-based repairs
//! \[30\] as a flagship application of the new query languages.  We reproduce
//! the classical setting where the constraints are *conflicts* between facts
//! (as produced, e.g., by key or denial constraints): a **repair** is a
//! ⊆-maximal subset of the database containing no conflicting pair, and a
//! tuple is a *consistent answer* if it is an answer over every repair.
//!
//! The declarative encoding reifies each database fact with an identifier and
//! uses stable negation for the repair choice:
//!
//! ```text
//! fact(F), not out(F) -> in(F).          % choose
//! fact(F), not in(F)  -> out(F).
//! in(F), in(G), conflict(F, G) -> bad.   % consistency
//! conflict(F, G), in(G) -> blocked(F).   % maximality: an excluded fact must
//! conflict(G, F), in(G) -> blocked(F).   %   be blocked by an included one
//! out(F), not blocked(F) -> bad.
//! bad, not aux -> aux.                   % kill models containing bad
//! holds_<p>(...) reconstructed from in/1 for querying.
//! ```
//!
//! The stable models of this program are exactly the repairs, and certain
//! answers are cautious answers — all computed by `ntgd-sms`.  A brute-force
//! reference solver validates the encoding.

use std::collections::BTreeSet;

use ntgd_core::{atom, cst, Atom, Database, Literal, Ntgd, Program, Query, Symbol, Term};
use ntgd_sms::{NullBudget, SmsAnswer, SmsEngine, SmsError, SmsOptions};

/// A CQA instance: a database, a conflict relation between its facts, and a
/// query over the repaired database.
#[derive(Clone, Debug)]
pub struct CqaInstance {
    /// The (possibly inconsistent) facts.
    pub facts: Vec<Atom>,
    /// Conflicting pairs, as indices into `facts`.
    pub conflicts: Vec<(usize, usize)>,
}

impl CqaInstance {
    /// Creates an instance.
    pub fn new(facts: Vec<Atom>, conflicts: Vec<(usize, usize)>) -> CqaInstance {
        CqaInstance { facts, conflicts }
    }

    fn fact_id(&self, i: usize) -> Term {
        cst(&format!("f{i}"))
    }

    /// The reified database: `fact/1`, `conflict/2` and one
    /// `claims_<p>(id, args…)` atom per original fact.
    pub fn reified_database(&self) -> Database {
        let mut out: Vec<Atom> = Vec::new();
        for (i, f) in self.facts.iter().enumerate() {
            out.push(atom("fact", vec![self.fact_id(i)]));
            let mut args = vec![self.fact_id(i)];
            args.extend(f.args().iter().copied());
            out.push(Atom::new(
                Symbol::intern(&format!("claims_{}", f.predicate())),
                args,
            ));
        }
        for &(a, b) in &self.conflicts {
            out.push(atom("conflict", vec![self.fact_id(a), self.fact_id(b)]));
        }
        Database::from_facts(out).expect("reified facts are ground")
    }

    /// The repair program described in the module documentation.
    pub fn repair_program(&self) -> Program {
        let f = ntgd_core::var("F");
        let g = ntgd_core::var("G");
        let mut rules = vec![
            Ntgd::new(
                vec![
                    ntgd_core::pos("fact", vec![f]),
                    ntgd_core::neg("out", vec![f]),
                ],
                vec![atom("in", vec![f])],
            )
            .expect("choice rule"),
            Ntgd::new(
                vec![
                    ntgd_core::pos("fact", vec![f]),
                    ntgd_core::neg("in", vec![f]),
                ],
                vec![atom("out", vec![f])],
            )
            .expect("choice rule"),
            Ntgd::new(
                vec![
                    ntgd_core::pos("in", vec![f]),
                    ntgd_core::pos("in", vec![g]),
                    ntgd_core::pos("conflict", vec![f, g]),
                ],
                vec![atom("bad", vec![])],
            )
            .expect("consistency rule"),
            Ntgd::new(
                vec![
                    ntgd_core::pos("conflict", vec![f, g]),
                    ntgd_core::pos("in", vec![g]),
                ],
                vec![atom("blocked", vec![f])],
            )
            .expect("maximality rule"),
            Ntgd::new(
                vec![
                    ntgd_core::pos("conflict", vec![g, f]),
                    ntgd_core::pos("in", vec![g]),
                ],
                vec![atom("blocked", vec![f])],
            )
            .expect("maximality rule"),
            Ntgd::new(
                vec![
                    ntgd_core::pos("out", vec![f]),
                    ntgd_core::neg("blocked", vec![f]),
                ],
                vec![atom("bad", vec![])],
            )
            .expect("maximality rule"),
            Ntgd::new(
                vec![ntgd_core::pos("bad", vec![]), ntgd_core::neg("aux", vec![])],
                vec![atom("aux", vec![])],
            )
            .expect("constraint rule"),
        ];
        // Reconstruct the original relations from the chosen facts:
        // claims_p(F, X…), in(F) → holds_p(X…).
        let mut predicates: BTreeSet<(Symbol, usize)> = BTreeSet::new();
        for fct in &self.facts {
            predicates.insert((fct.predicate(), fct.arity()));
        }
        for (p, arity) in predicates {
            let vars: Vec<Term> = (0..arity)
                .map(|i| Term::variable(&format!("A{i}")))
                .collect();
            let mut claim_args = vec![f];
            claim_args.extend(vars.iter().copied());
            rules.push(
                Ntgd::new(
                    vec![
                        Literal::positive(Atom::new(
                            Symbol::intern(&format!("claims_{p}")),
                            claim_args,
                        )),
                        ntgd_core::pos("in", vec![f]),
                    ],
                    vec![Atom::new(Symbol::intern(&format!("holds_{p}")), vars)],
                )
                .expect("reconstruction rule"),
            );
        }
        Program::from_rules(rules).expect("consistent schema")
    }

    fn engine(&self) -> SmsEngine {
        SmsEngine::new(&self.repair_program()).with_options(SmsOptions {
            null_budget: NullBudget::None,
            ..Default::default()
        })
    }

    /// The repairs computed declaratively: one stable model per repair,
    /// projected back to the original facts.
    pub fn repairs_via_sms(&self) -> Result<Vec<BTreeSet<Atom>>, SmsError> {
        let models = self.engine().stable_models(&self.reified_database())?;
        let mut repairs: Vec<BTreeSet<Atom>> = models
            .iter()
            .map(|m| {
                self.facts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| m.contains(&atom("in", vec![self.fact_id(*i)])))
                    .map(|(_, f)| f.clone())
                    .collect()
            })
            .collect();
        repairs.sort();
        repairs.dedup();
        Ok(repairs)
    }

    /// Brute-force repairs: maximal conflict-free subsets.
    pub fn repairs_brute_force(&self) -> Vec<BTreeSet<Atom>> {
        let n = self.facts.len();
        let conflict_free = |mask: u64| {
            self.conflicts
                .iter()
                .all(|&(a, b)| mask & (1 << a) == 0 || mask & (1 << b) == 0)
        };
        let mut repairs = Vec::new();
        for mask in 0..(1u64 << n) {
            if !conflict_free(mask) {
                continue;
            }
            let maximal = (0..n).all(|i| mask & (1 << i) != 0 || !conflict_free(mask | (1 << i)));
            if maximal {
                repairs.push(
                    (0..n)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| self.facts[i].clone())
                        .collect::<BTreeSet<Atom>>(),
                );
            }
        }
        repairs.sort();
        repairs
    }

    /// Rewrites a query over the original schema (`p(...)`) into one over the
    /// reconstructed schema (`holds_p(...)`).
    pub fn rewrite_query(&self, query: &Query) -> Query {
        let literals = query
            .literals()
            .iter()
            .map(|l| {
                let a = l.atom();
                let renamed = Atom::new(
                    Symbol::intern(&format!("holds_{}", a.predicate())),
                    a.args().to_vec(),
                );
                if l.is_positive() {
                    Literal::positive(renamed)
                } else {
                    Literal::negative(renamed)
                }
            })
            .collect();
        Query::new(query.answer_variables().to_vec(), literals).expect("rewriting preserves safety")
    }

    /// Consistent (certain) entailment of a Boolean query: true in every
    /// repair.
    pub fn certain_via_sms(&self, query: &Query) -> Result<bool, SmsError> {
        let q = self.rewrite_query(query);
        Ok(matches!(
            self.engine()
                .entails_cautious(&self.reified_database(), &q)?,
            SmsAnswer::Entailed
        ))
    }

    /// Brute-force certain entailment over all repairs.
    pub fn certain_brute_force(&self, query: &Query) -> bool {
        self.repairs_brute_force().iter().all(|repair| {
            let i = ntgd_core::Interpretation::from_atoms(repair.iter().cloned());
            query.holds(&i)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_parser::parse_query;

    /// A classic key-violation example: two salaries for bob, one for alice.
    fn payroll() -> CqaInstance {
        CqaInstance::new(
            vec![
                atom("salary", vec![cst("alice"), cst("50")]),
                atom("salary", vec![cst("bob"), cst("60")]),
                atom("salary", vec![cst("bob"), cst("70")]),
            ],
            vec![(1, 2)],
        )
    }

    #[test]
    fn repairs_match_brute_force() {
        let inst = payroll();
        let declarative = inst.repairs_via_sms().unwrap();
        let reference = inst.repairs_brute_force();
        assert_eq!(declarative, reference);
        assert_eq!(declarative.len(), 2);
        for r in &declarative {
            assert!(r.contains(&atom("salary", vec![cst("alice"), cst("50")])));
            assert_eq!(r.len(), 2);
        }
    }

    #[test]
    fn certain_answers_agree_with_brute_force() {
        let inst = payroll();
        // Alice's salary is certain.
        let q_alice = parse_query("?- salary(alice, 50).").unwrap();
        assert!(inst.certain_brute_force(&q_alice));
        assert!(inst.certain_via_sms(&q_alice).unwrap());
        // Bob's specific salary is not certain, but his having *some* salary is.
        let q_bob60 = parse_query("?- salary(bob, 60).").unwrap();
        assert!(!inst.certain_brute_force(&q_bob60));
        assert!(!inst.certain_via_sms(&q_bob60).unwrap());
        let q_bob_some = parse_query("?- salary(bob, X).").unwrap();
        assert!(inst.certain_brute_force(&q_bob_some));
        assert!(inst.certain_via_sms(&q_bob_some).unwrap());
    }

    #[test]
    fn consistent_databases_have_a_single_repair() {
        let inst = CqaInstance::new(
            vec![atom("p", vec![cst("a")]), atom("q", vec![cst("b")])],
            vec![],
        );
        let repairs = inst.repairs_via_sms().unwrap();
        assert_eq!(repairs, inst.repairs_brute_force());
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].len(), 2);
    }

    #[test]
    fn conflict_chains_produce_alternating_repairs() {
        // f0 - f1 - f2 conflicts: repairs are {f0, f2} and {f1}.
        let inst = CqaInstance::new(
            vec![
                atom("r", vec![cst("a")]),
                atom("r", vec![cst("b")]),
                atom("r", vec![cst("c")]),
            ],
            vec![(0, 1), (1, 2)],
        );
        let repairs = inst.repairs_via_sms().unwrap();
        assert_eq!(repairs, inst.repairs_brute_force());
        assert_eq!(repairs.len(), 2);
    }
}
