//! 2-QBF∃ satisfiability via the Section 5.3 reduction.
//!
//! A formula `ϕ = ∃X ∀Y ψ(X,Y)` with `ψ` in 3-DNF is encoded as a database
//! `D_ϕ` plus the *fixed* weakly-acyclic set of NTGDs given in the paper's
//! ΠᴾP₂-hardness proof; `ϕ` is satisfiable iff `(D_ϕ, Σ) ⊭_SMS error`,
//! equivalently (Section 7.1) iff the 0-ary atom `ans` of the brave query
//! `(Σ ∪ {¬error → ans}, ans)` is bravely entailed.
//!
//! The module also contains a brute-force evaluator and a random instance
//! generator used for validation and for the E5 experiment.

use rand::Rng;

use ntgd_core::{atom, cst, Atom, Database, Program, Query};
use ntgd_parser::parse_program;
use ntgd_sms::{NullBudget, SmsAnswer, SmsEngine, SmsError, SmsOptions};

/// A literal over Boolean variables: the variable index and its polarity.
pub type QbfLiteral = (usize, bool);

/// A 2-QBF∃ formula `∃X ∀Y ⋁ᵢ (ℓ¹ᵢ ∧ ℓ²ᵢ ∧ ℓ³ᵢ)`.
///
/// Variables `0..num_exists` are existential, `num_exists..num_exists +
/// num_foralls` are universal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwoQbf {
    /// Number of existentially quantified variables.
    pub num_exists: usize,
    /// Number of universally quantified variables.
    pub num_foralls: usize,
    /// The 3-DNF matrix: each term is a conjunction of three literals.
    pub terms: Vec<[QbfLiteral; 3]>,
}

impl TwoQbf {
    /// Total number of Boolean variables.
    pub fn num_variables(&self) -> usize {
        self.num_exists + self.num_foralls
    }

    /// Evaluates the 3-DNF matrix under a full assignment.
    fn matrix_holds(&self, assignment: &[bool]) -> bool {
        self.terms.iter().any(|term| {
            term.iter()
                .all(|&(var, positive)| assignment[var] == positive)
        })
    }

    /// Brute-force satisfiability: exists an assignment of the existential
    /// variables such that for all assignments of the universal variables the
    /// matrix holds.
    pub fn brute_force_satisfiable(&self) -> bool {
        let e = self.num_exists;
        let a = self.num_foralls;
        (0..(1u64 << e)).any(|emask| {
            (0..(1u64 << a)).all(|amask| {
                let mut assignment = vec![false; self.num_variables()];
                for (i, slot) in assignment.iter_mut().take(e).enumerate() {
                    *slot = emask & (1 << i) != 0;
                }
                for i in 0..a {
                    assignment[e + i] = amask & (1 << i) != 0;
                }
                self.matrix_holds(&assignment)
            })
        })
    }

    /// Generates a random instance.
    pub fn random<R: Rng>(
        rng: &mut R,
        num_exists: usize,
        num_foralls: usize,
        num_terms: usize,
    ) -> TwoQbf {
        let total = num_exists + num_foralls;
        assert!(total > 0, "at least one variable is required");
        let terms = (0..num_terms)
            .map(|_| {
                [
                    (rng.gen_range(0..total), rng.gen_bool(0.5)),
                    (rng.gen_range(0..total), rng.gen_bool(0.5)),
                    (rng.gen_range(0..total), rng.gen_bool(0.5)),
                ]
            })
            .collect();
        TwoQbf {
            num_exists,
            num_foralls,
            terms,
        }
    }

    fn variable_constant(&self, var: usize) -> String {
        if var < self.num_exists {
            format!("x{var}")
        } else {
            format!("y{}", var - self.num_exists)
        }
    }

    /// The database `D_ϕ` of the Section 5.3 reduction.
    pub fn database(&self) -> Database {
        let star = cst("star");
        let mut facts: Vec<Atom> = Vec::new();
        for v in 0..self.num_exists {
            facts.push(atom("exists", vec![cst(&self.variable_constant(v))]));
        }
        for v in self.num_exists..self.num_variables() {
            facts.push(atom("forall", vec![cst(&self.variable_constant(v))]));
        }
        for term in &self.terms {
            // π(ℓ) = the variable for positive literals, ⋆ otherwise;
            // ν(ℓ) = the variable for negative literals, ⋆ otherwise.
            let pi = |&(var, positive): &QbfLiteral| {
                if positive {
                    cst(&self.variable_constant(var))
                } else {
                    star
                }
            };
            let nu = |&(var, positive): &QbfLiteral| {
                if positive {
                    star
                } else {
                    cst(&self.variable_constant(var))
                }
            };
            facts.push(atom(
                "cl",
                vec![
                    pi(&term[0]),
                    pi(&term[1]),
                    pi(&term[2]),
                    nu(&term[0]),
                    nu(&term[1]),
                    nu(&term[2]),
                ],
            ));
        }
        facts.push(atom("nil", vec![star]));
        Database::from_facts(facts).expect("QBF facts are ground")
    }

    /// The fixed program `Σ` of the Section 5.3 reduction (independent of the
    /// formula).
    pub fn program() -> Program {
        parse_program(
            "-> zero(X).\
             -> one(X).\
             zero(X), one(X) -> error.\
             zero(X) -> truthVal(X).\
             one(X) -> truthVal(X).\
             exists(X) -> assign(X, Y).\
             forall(X) -> assign(X, Y).\
             assign(X, Y), not truthVal(Y) -> error.\
             not saturate -> saturate.\
             forall(X), truthVal(Y), saturate -> assign(X, Y).\
             nil(X), truthVal(Y) -> assign(X, Y).\
             cl(P1, P2, P3, N1, N2, N3), assign(P1, O), assign(P2, O), assign(P3, O), one(O), assign(N1, Z), assign(N2, Z), assign(N3, Z), zero(Z) -> saturate.",
        )
        .expect("the fixed QBF program parses")
    }

    /// Solver options tuned for the reduction: the chase-derived null budget
    /// would add one null per variable, but two fresh values (for `zero` and
    /// `one`) suffice and keep the grounding small.
    pub fn engine() -> SmsEngine {
        SmsEngine::new(&Self::program()).with_options(SmsOptions {
            null_budget: NullBudget::Exact(2),
            ..Default::default()
        })
    }

    /// Decides satisfiability through the stable-model engine:
    /// `ϕ` is satisfiable iff `(D_ϕ, Σ) ⊭_SMS error`.
    pub fn solve_via_sms(&self) -> Result<bool, SmsError> {
        let engine = Self::engine();
        let query = Query::boolean(vec![ntgd_core::pos("error", vec![])]).expect("valid query");
        Ok(matches!(
            engine.entails_cautious(&self.database(), &query)?,
            SmsAnswer::NotEntailed
        ))
    }

    /// Decides satisfiability through the brave query of Section 7.1:
    /// `Q = (Σ ∪ {¬error → ans}, ans)` and `ϕ` is satisfiable iff the empty
    /// tuple is a brave answer of `Q` over `D_ϕ`.
    pub fn solve_via_brave_query(&self) -> Result<bool, SmsError> {
        let mut program = Self::program();
        program.push(
            ntgd_core::Ntgd::new(
                vec![ntgd_core::neg("error", vec![])],
                vec![atom("ans", vec![])],
            )
            .expect("¬error → ans is safe"),
        );
        let engine = SmsEngine::new(&program).with_options(SmsOptions {
            null_budget: NullBudget::Exact(2),
            ..Default::default()
        });
        let query = Query::boolean(vec![ntgd_core::pos("ans", vec![])]).expect("valid query");
        engine.entails_brave(&self.database(), &query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_classes::is_weakly_acyclic;
    use rand::SeedableRng;

    /// ∃x ∀y (x ∧ y ∧ y) ∨ (x ∧ ¬y ∧ ¬y): satisfiable with x = true.
    fn satisfiable_formula() -> TwoQbf {
        TwoQbf {
            num_exists: 1,
            num_foralls: 1,
            terms: vec![
                [(0, true), (1, true), (1, true)],
                [(0, true), (1, false), (1, false)],
            ],
        }
    }

    /// ∃x ∀y (x ∧ y ∧ y): unsatisfiable (fails for y = false).
    fn unsatisfiable_formula() -> TwoQbf {
        TwoQbf {
            num_exists: 1,
            num_foralls: 1,
            terms: vec![[(0, true), (1, true), (1, true)]],
        }
    }

    #[test]
    fn the_fixed_program_is_weakly_acyclic() {
        assert!(is_weakly_acyclic(&TwoQbf::program()));
    }

    #[test]
    fn brute_force_agrees_with_hand_analysis() {
        assert!(satisfiable_formula().brute_force_satisfiable());
        assert!(!unsatisfiable_formula().brute_force_satisfiable());
    }

    #[test]
    fn the_database_encodes_literals_with_star_padding() {
        let db = satisfiable_formula().database();
        assert!(db.contains(&atom("exists", vec![cst("x0")])));
        assert!(db.contains(&atom("forall", vec![cst("y0")])));
        assert!(db.contains(&atom("nil", vec![cst("star")])));
        assert!(db.contains(&atom(
            "cl",
            vec![
                cst("x0"),
                cst("y0"),
                cst("y0"),
                cst("star"),
                cst("star"),
                cst("star")
            ]
        )));
        assert!(db.contains(&atom(
            "cl",
            vec![
                cst("x0"),
                cst("star"),
                cst("star"),
                cst("star"),
                cst("y0"),
                cst("y0")
            ]
        )));
    }

    #[test]
    fn sms_answers_match_brute_force_on_hand_built_formulas() {
        let sat = satisfiable_formula();
        assert!(sat.solve_via_sms().unwrap());
        let unsat = unsatisfiable_formula();
        assert!(!unsat.solve_via_sms().unwrap());
    }

    #[test]
    #[ignore = "expensive: exercised by the experiments binary / benchmarks instead"]
    fn the_brave_query_formulation_agrees() {
        assert!(satisfiable_formula().solve_via_brave_query().unwrap());
        assert!(!unsatisfiable_formula().solve_via_brave_query().unwrap());
    }

    #[test]
    #[ignore = "expensive: exercised by the experiments binary / benchmarks instead"]
    fn random_small_instances_agree_with_brute_force() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..4 {
            let formula = TwoQbf::random(&mut rng, 1, 1, 2);
            assert_eq!(
                formula.solve_via_sms().unwrap(),
                formula.brute_force_satisfiable(),
                "disagreement on {formula:?}"
            );
        }
    }
}
