//! # ntgd-server
//!
//! A **persistent reasoning service** over the `stable-tgd` engine: instead
//! of the batch pipeline (build a database, chase to fixpoint, answer, throw
//! everything away), a *session* keeps a loaded program — with its compiled
//! rule plans — and a chased arena instance alive, and lets clients grow,
//! query and roll back that state incrementally over a line protocol.  All
//! sessions of a process share the persistent worker pool of
//! `ntgd_core::parallel`, so even the small per-assert delta rounds of a
//! busy server fan out to already-running workers.
//!
//! The `ntgd-serve` binary exposes sessions in two std-only transports:
//!
//! * **TCP** (`ntgd-serve --listen 127.0.0.1:7171`): one session per
//!   connection.  The connection layer is **event-driven** by default —
//!   sessions are `Send`-able state machines owned by non-blocking
//!   [`Conn`]s on sharded poller threads, with ready batches executing on
//!   the persistent `ntgd_core::parallel` pool (per-session serial,
//!   cross-session parallel), so one process holds thousands of live
//!   sessions without one OS thread each.  `NTGD_TRANSPORT=threaded`
//!   selects the historical thread-per-connection path, kept for
//!   differential testing; transcripts are byte-identical across both.
//!   `NTGD_MAX_SESSIONS` caps live sessions (over the cap: one
//!   `ERR server at capacity` line, no banner).  [`serve`] returns a
//!   [`ServeHandle`] for graceful shutdown; [`serve_tcp`] blocks.
//! * **REPL** (`ntgd-serve` or `--repl`): a single session on
//!   stdin/stdout ([`serve_repl`]) — also what the CI smoke test scripts.
//!
//! # Protocol grammar
//!
//! (The complete user-facing reference — every verb's argument grammar,
//! response shape, and the meaning of every `STATS` counter — lives in
//! `docs/PROTOCOL.md` at the repository root; `tests/help_sync.rs` keeps it
//! and the served `HELP` output in lockstep via [`protocol::HELP_LINES`].)
//!
//! The protocol is line-based and textual; programs, facts and queries use
//! the [`ntgd_parser`] syntax.  Each request is one line; the response is
//! zero or more data lines followed by **exactly one** terminator line
//! starting with `OK` or `ERR` (clients read until they see one).  On
//! session start the server sends a single `READY …` banner line.
//!
//! ```text
//! request   = load | assert | query | models | retract | stats | metrics
//!           | ping | help | quit
//! load      = "LOAD" rules-and-facts        ; (re)initialises the session
//! assert    = "ASSERT" facts                ; incremental re-chase, returns a mark
//! query     = "QUERY" query-text            ; "?- lits." or "?(X) :- lits."
//! models    = "MODELS" ["sms" | "lp"] ["max=" n]
//! retract   = "RETRACT-TO" mark             ; roll back to an earlier mark
//! stats     = "STATS" ["sms" | "base" | "conn" | "metrics"]
//!                                           ; "sms": only the deterministic
//!                                           ;   incremental-MODELS counters;
//!                                           ; "base": only the shared-base
//!                                           ;   counters;
//!                                           ; "conn": only the connection-
//!                                           ;   layer counters;
//!                                           ; "metrics": only the session's
//!                                           ;   per-verb request counters
//! metrics   = "METRICS"                     ; process-wide Prometheus-style
//!                                           ;   exposition (timings included;
//!                                           ;   nondeterministic by nature)
//! ping      = "PING"
//! help      = "HELP"
//! quit      = "QUIT"                        ; closes the session
//! ```
//!
//! Blank lines and lines starting with `%` or `#` are ignored (no response),
//! so REPL scripts can be commented.  Response shapes:
//!
//! ```text
//! LOAD …        →  OK rules=<r> facts=<f> atoms=<n> mark=0
//! ASSERT …      →  OK mark=<k> added=<a> derived=<d> atoms=<n>
//! QUERY …       →  ANSWER <t1>, <t2>, …   (one line per certain answer)
//!                  OK answers=<n> dropped=<d>      ; d = null-bound tuples
//! MODELS …      →  MODEL <interpretation>  (one line per model, sorted)
//!                  OK models=<m> mode=<sms|lp>
//! RETRACT-TO k  →  OK mark=<k> atoms=<n>
//! STATS         →  STAT <key>=<value> …  then  OK
//! METRICS       →  Prometheus-style text lines, then OK metrics lines=<n>
//! anything else →  ERR <one-line message>
//! ```
//!
//! # Observability
//!
//! The server instruments itself through [`ntgd_core::obs`]: per-verb
//! request counters and wall-time histograms, event-loop and pool phase
//! timers, and chase/grounding counters from the engine crates.  `METRICS`
//! serves the whole registry as Prometheus-style text; `STATS metrics`
//! prints only the session-local per-verb request tallies, which are a
//! pure function of the request history and therefore byte-stable across
//! thread counts and pool modes (asserted like the other scopes).
//! `NTGD_OBS=0` disables the registry; `NTGD_LOG`/`NTGD_LOG_LEVEL` enable
//! the structured JSON-lines event log; `NTGD_SLOW_MS` logs slow requests;
//! `NTGD_SESSION_BUDGET` caps per-session cumulative execution time
//! ([`session::SessionBudget`]).  Hard contract: apart from an explicitly
//! configured budget, timing data never influences execution decisions —
//! transcripts are bit-identical with observability on or off
//! (`tests/differential_oracle.rs`).
//!
//! # Session lifecycle
//!
//! A session is created empty.  `LOAD` parses a program (rules, optionally
//! initial facts), compiles its rule plans once, runs the initial chase and
//! establishes **mark 0**; re-`LOAD`ing discards the previous state.  Every
//! successful `ASSERT` performs an *incremental re-chase* — the new facts
//! seed the existing semi-naive delta worklists
//! ([`ntgd_chase::IncrementalChase`]), so a session never re-chases from
//! scratch — and returns a fresh epoch mark `k`.  `RETRACT-TO k` rolls the
//! arena back to mark `k` by truncation (O(atoms retracted)), invalidating
//! the later marks.  `QUERY` answers over the chased instance (a universal
//! model of the positive program): per the paper's certain-answer semantics
//! only constant tuples are answers — a tuple binding an answer variable to
//! a labelled null is never reported.
//! `MODELS` enumerates stable models of the *accumulated fact set* under the
//! paper's SMS semantics (`sms`, default, any program) or the LP
//! approach (`lp`, normal programs); results are cached per session state.
//! The chase uses Skolem semantics with canonically named witnesses, so the
//! session state — null names included — depends only on the set of facts
//! asserted and live, never on how assertions were batched (see
//! [`ntgd_chase::incremental`]).
//!
//! A session whose program is disjunctive, or contains negative literals,
//! still supports `ASSERT`/`MODELS`/`RETRACT-TO`: the chase (and hence
//! `QUERY`) is available for normal programs and chases the positive part,
//! exactly like the batch pipeline.
//!
//! # MODELS caching contract
//!
//! `MODELS sms` does **not** re-ground from scratch: each session holds an
//! [`ntgd_sms::IncrementalSmsState`] whose possibly-true closure and
//! grounding survive across `ASSERT`/`RETRACT-TO` and are advanced
//! semi-naively from the fact delta.  The cached state is *exact*: whenever
//! the `max` cap does not truncate the enumeration, the rendered answer is
//! bit-identical to a from-scratch [`ntgd_sms::SmsEngine`] on the same live
//! fact set (`tests/differential_oracle.rs` at the workspace root asserts
//! this over randomised command streams, thread counts and pool modes).
//! When the cap *does* truncate, both paths return `max` true stable models
//! but may pick different ones — enumeration order follows the SAT search
//! over the grounding, and the cached grounding orders its atoms by arrival
//! (delta atoms appended) rather than by the fresh build's sorted intern —
//! so capped listings are samples, not a canonical prefix, on either path.
//! What invalidates what:
//!
//! * **`ASSERT` of facts over already-known constants** — the closure
//!   advances from the delta and the grounding appends only rule instances
//!   whose bodies touch closure-new atoms (a *reuse*);
//! * **`ASSERT` that changes the candidate domain** — a new constant, or a
//!   moved `Auto` null budget (any program with existential rules) — forces
//!   a full rebuild: a grown domain retroactively adds existential
//!   instantiations to old rule instances (a *rebuild*);
//! * **`RETRACT-TO`** — the cached state truncates to its newest snapshot
//!   at or below the target mark in `O(retracted)` (a *rollback*);
//!   retracting below the oldest snapshot drops the state (an
//!   *invalidation*);
//! * **repeated `MODELS` on an unchanged session** — served from the cache
//!   (a *hit*; the rendered-line cache may answer even earlier).
//!
//! `STATS` reports these counters as `sms_rebuilds`, `sms_reuses`,
//! `sms_hits`, `sms_rollbacks` and `sms_invalidations`, plus the current
//! `sms_closure_atoms`/`sms_ground_rules` sizes; `STATS sms` prints *only*
//! those lines, which are a pure function of the request history — never of
//! thread count, pool mode or machine — so scripted transcripts (CI's
//! `server-smoke`) can assert them verbatim.
//!
//! To disable the cache for debugging set `NTGD_SMS_INCREMENTAL=0` (or
//! construct the session with [`SessionConfig::incremental_models`] off):
//! every `MODELS sms` then grounds from scratch — the oracle path of the
//! differential tests — and `STATS` reports `sms_incremental=false`.
//!
//! # Shared-base caching contract
//!
//! With a [`BaseRegistry`] attached ([`SessionConfig::base_registry`]; the
//! `ntgd-serve` binary installs one per process unless `NTGD_SHARED_BASE=0`),
//! sessions that `LOAD` the same program share one chased base instead of
//! each re-chasing it:
//!
//! * **Identity.**  A base is keyed by the *canonical program text* — the
//!   trimmed `LOAD` payload, initial facts included — plus the session's
//!   step policy: the `max_steps` budget *and* the classification switch.
//!   Textually different spellings of one program miss the cache
//!   (conservative: two distinct programs can never alias); a changed step
//!   budget is a different key, since it could freeze a different fixpoint
//!   attempt — and so is a flipped `NTGD_CLASSIFY`, since a classified
//!   session may chase a terminating program unbounded where a blind one
//!   must stop at the budget, and sharing across that line would make
//!   `LOAD` outcomes depend on registry arrival order.
//! * **First `LOAD` (miss).**  The session parses, compiles, chases the
//!   initial facts to a fixpoint, eagerly grounds the `MODELS sms` closure
//!   of those facts, then freezes everything — arena, compiled plans,
//!   witness memo, grounding snapshot — behind `Arc`s and registers the
//!   entry.  Registration is first-wins under races; losing builds are
//!   discarded.
//! * **Every `LOAD` of a registered key (hit — and the registering `LOAD`
//!   itself).**  The session *forks* the entry in O(1): its arena is a
//!   mutable overlay over the shared immutable base
//!   (`ntgd_core::Interpretation`), `ASSERT` chases only the private fact
//!   delta, `RETRACT-TO` can roll back to mark 0 (the fork watermark) but
//!   never into the base, and `MODELS sms` answers over the unextended base
//!   prefix zero-copy, adopting the snapshot on the first extension.
//!   Forking is symmetric — the first session forks its own frozen base —
//!   so a forked session's transcript is bit-identical to a private
//!   from-scratch session at every thread count and pool mode
//!   (`tests/differential_oracle.rs` asserts this over randomised streams).
//! * **Invalidation.**  Entries are immutable and never invalidated:
//!   sessions only ever layer private overlays on top, and `LOAD` always
//!   replaces the whole session state, so a stale base cannot exist.  The
//!   registry lives as long as the process; its memory is bounded by the
//!   number of distinct programs loaded.
//!
//! `STATS base` reports the deterministic counters: `base_shared`, the
//! `base_atoms`/`base_overlay_atoms` split of the session arena at the fork
//! watermark, and the per-key registry counters `base_registry_hits`,
//! `base_registry_misses`, `base_rebuilds` and `base_forks`.

pub mod protocol;
pub mod registry;
pub mod server;
pub mod session;

pub use protocol::{parse_command, Command, ModelsMode, Response, StatsScope, HELP_LINES};
pub use registry::{BaseEntry, BaseKey, BaseRegistry, BaseStats};
pub use server::{
    handle_session, serve, serve_repl, serve_tcp, Conn, ConnSnapshot, ConnStats, LineBuffer,
    ServeHandle, Transport,
};
pub use session::{server_requests, Session, SessionBudget, SessionConfig};
