//! One reasoning session: a loaded program, its incrementally chased arena
//! instance, the epoch-mark history, and session-scoped model enumeration.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ntgd_chase::{ChaseConfig, EpochMark, IncrementalChase};
use ntgd_classes::ClassVerdict;
use ntgd_core::obs::{self, log::FieldValue, log::Level};
use ntgd_core::{parallel, Atom, Database, DisjunctiveProgram, Program, Query, Term};
use ntgd_lp::{LpEngine, LpLimits};
use ntgd_parser::{parse_database, parse_query, parse_unit};
use ntgd_sms::{GroundingLimits, IncrementalSmsState, NullBudget, SmsEngine, SmsError, SmsOptions};

use crate::protocol::{parse_command, Command, ModelsMode, Response, StatsScope};
use crate::registry::{BaseEntry, BaseKey, BaseRegistry, ProgramClass};
use crate::server::{ConnStats, Transport};

/// Process-wide count of protocol requests executed across every session
/// (blank/comment lines excluded; malformed requests included — they
/// produced an `ERR` response).  `STATS` reports it as `server_requests`,
/// which is what the `ntgd-load` harness reads back after a run to confirm
/// the server saw every request the clients sent.
static SERVER_REQUESTS: AtomicU64 = AtomicU64::new(0);

/// The current process-wide request count (see `SERVER_REQUESTS` above).
pub fn server_requests() -> u64 {
    SERVER_REQUESTS.load(Ordering::Relaxed)
}

/// Process-wide cumulative request execution wall time (nanoseconds) across
/// every session, dead or alive.  The admission-control fleet budget (see
/// `crate::server`) reads it to shed new connections when the whole fleet is
/// over its aggregate [`SessionBudget`] allowance.
static SERVER_EXEC_NS: AtomicU64 = AtomicU64::new(0);

/// The cumulative execution wall time above, in nanoseconds.
pub fn server_exec_ns() -> u64 {
    SERVER_EXEC_NS.load(Ordering::Relaxed)
}

/// Monotonic session ids (the structured log correlates events by them).
static SESSION_IDS: AtomicU64 = AtomicU64::new(1);

/// Process-wide per-verb request counters and the error tally, served by
/// `METRICS`.  Distinct from the *session-local* [`RequestCounters`] that
/// `STATS metrics` prints: these aggregate every session in the process.
static REQ_LOAD: obs::Counter = obs::Counter::new("server.requests.load");
static REQ_ASSERT: obs::Counter = obs::Counter::new("server.requests.assert");
static REQ_QUERY: obs::Counter = obs::Counter::new("server.requests.query");
static REQ_MODELS: obs::Counter = obs::Counter::new("server.requests.models");
static REQ_RETRACT: obs::Counter = obs::Counter::new("server.requests.retract");
static REQ_STATS: obs::Counter = obs::Counter::new("server.requests.stats");
static REQ_METRICS: obs::Counter = obs::Counter::new("server.requests.metrics");
static REQ_PING: obs::Counter = obs::Counter::new("server.requests.ping");
static REQ_HELP: obs::Counter = obs::Counter::new("server.requests.help");
static REQ_QUIT: obs::Counter = obs::Counter::new("server.requests.quit");
static REQ_ERRORS: obs::Counter = obs::Counter::new("server.requests.errors");
static BUDGET_REJECTIONS: obs::Counter = obs::Counter::new("server.budget_rejections");

/// Per-`LOAD` classification-verdict counters (tentpole of the
/// decidability-aware front door): every installed program bumps the counter
/// of its verdict, so `METRICS` shows how much of the fleet's traffic runs
/// on the budget-free fast path.
static CLASS_TERMINATING: obs::Counter = obs::Counter::new("server.class.terminating");
static CLASS_DECIDABLE: obs::Counter = obs::Counter::new("server.class.decidable");
static CLASS_OUT_OF_FRAGMENT: obs::Counter = obs::Counter::new("server.class.out_of_fragment");

/// The process-wide counter for a classification verdict.
fn class_counter(verdict: ClassVerdict) -> &'static obs::Counter {
    match verdict {
        ClassVerdict::Terminating => &CLASS_TERMINATING,
        ClassVerdict::Decidable => &CLASS_DECIDABLE,
        ClassVerdict::OutOfFragment => &CLASS_OUT_OF_FRAGMENT,
    }
}

/// The protocol verb of a parsed command, as a metric label (`None` for
/// blank/comment lines, which are not requests).
fn verb_label(command: &Command) -> Option<&'static str> {
    match command {
        Command::Load(_) => Some("load"),
        Command::Assert(_) => Some("assert"),
        Command::Query(_) => Some("query"),
        Command::Models { .. } => Some("models"),
        Command::RetractTo(_) => Some("retract"),
        Command::Stats { .. } => Some("stats"),
        Command::Metrics => Some("metrics"),
        Command::Ping => Some("ping"),
        Command::Help => Some("help"),
        Command::Quit => Some("quit"),
        Command::Nop => None,
    }
}

/// The process-wide counter for a verb label.
fn verb_counter(verb: &'static str) -> &'static obs::Counter {
    match verb {
        "load" => &REQ_LOAD,
        "assert" => &REQ_ASSERT,
        "query" => &REQ_QUERY,
        "models" => &REQ_MODELS,
        "retract" => &REQ_RETRACT,
        "stats" => &REQ_STATS,
        "metrics" => &REQ_METRICS,
        "ping" => &REQ_PING,
        "help" => &REQ_HELP,
        _ => &REQ_QUIT,
    }
}

/// The per-verb wall-time histogram name for a verb label.
fn verb_histogram(verb: &'static str) -> &'static str {
    match verb {
        "load" => "server.request.load",
        "assert" => "server.request.assert",
        "query" => "server.request.query",
        "models" => "server.request.models",
        "retract" => "server.request.retract",
        "stats" => "server.request.stats",
        "metrics" => "server.request.metrics",
        "ping" => "server.request.ping",
        "help" => "server.request.help",
        _ => "server.request.quit",
    }
}

/// The session-local per-verb request tallies behind `STATS metrics`.
/// Every field is a pure function of the session's request history —
/// never of wall time, thread count or pool mode — so transcripts assert
/// the scope verbatim like `STATS sms`/`base`/`conn`.
#[derive(Clone, Copy, Debug, Default)]
struct RequestCounters {
    total: u64,
    load: u64,
    assert: u64,
    query: u64,
    models: u64,
    retract: u64,
    stats: u64,
    metrics: u64,
    ping: u64,
    help: u64,
    quit: u64,
    /// Requests answered with `ERR` (parse failures included).
    errors: u64,
}

impl RequestCounters {
    fn bump(&mut self, verb: &str) {
        match verb {
            "load" => self.load += 1,
            "assert" => self.assert += 1,
            "query" => self.query += 1,
            "models" => self.models += 1,
            "retract" => self.retract += 1,
            "stats" => self.stats += 1,
            "metrics" => self.metrics += 1,
            "ping" => self.ping += 1,
            "help" => self.help += 1,
            "quit" => self.quit += 1,
            _ => {}
        }
    }

    fn stat_lines(&self) -> Vec<String> {
        vec![
            format!("STAT requests_total={}", self.total),
            format!("STAT requests_load={}", self.load),
            format!("STAT requests_assert={}", self.assert),
            format!("STAT requests_query={}", self.query),
            format!("STAT requests_models={}", self.models),
            format!("STAT requests_retract={}", self.retract),
            format!("STAT requests_stats={}", self.stats),
            format!("STAT requests_metrics={}", self.metrics),
            format!("STAT requests_ping={}", self.ping),
            format!("STAT requests_help={}", self.help),
            format!("STAT requests_quit={}", self.quit),
            format!("STAT requests_errors={}", self.errors),
        ]
    }
}

/// The `NTGD_SESSION_BUDGET` admission cap: a per-session ceiling on
/// cumulative execution wall time.  `"<ms>"` rejects compute requests once
/// the session has spent that many milliseconds; `"warn:<ms>"` only emits
/// one `budget_exceeded` log event per session.  The budget also feeds the
/// fleet-wide admission check (see `crate::server`): under the reject form,
/// new connections are shed with `ERR server at capacity` while the
/// process's cumulative execution time exceeds the per-session allowance ×
/// (sessions ever admitted + 1); the warn form never sheds — a breach only
/// emits a rate-limited `fleet_budget_exceeded` event.  Off by default —
/// enabling it makes responses depend on wall time, trading away the
/// determinism contract for the protected verbs (inspection verbs are
/// always allowed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionBudget {
    /// Reject compute requests past the cap (milliseconds).
    Reject(u64),
    /// Log once past the cap (milliseconds), keep serving.
    Warn(u64),
}

impl SessionBudget {
    /// Parses a `NTGD_SESSION_BUDGET` value; `None` for anything malformed.
    pub fn parse(text: &str) -> Option<SessionBudget> {
        let text = text.trim();
        if let Some(ms) = text.strip_prefix("warn:") {
            return ms.trim().parse::<u64>().ok().map(SessionBudget::Warn);
        }
        text.parse::<u64>().ok().map(SessionBudget::Reject)
    }

    /// The configured cap from the environment, if any.
    pub fn from_env() -> Option<SessionBudget> {
        std::env::var("NTGD_SESSION_BUDGET")
            .ok()
            .as_deref()
            .and_then(SessionBudget::parse)
    }
}

/// Per-session limits.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Step budget of one incremental re-chase (one `ASSERT`); exceeding it
    /// rolls the assertion back.
    pub max_steps: usize,
    /// Default cap on the number of models returned by `MODELS`.
    pub max_models: usize,
    /// Whether `MODELS sms` reuses the session's incremental grounding state
    /// ([`ntgd_sms::IncrementalSmsState`]).  Disabled, every request grounds
    /// from scratch — the oracle path the differential tests compare
    /// against, and a debugging escape hatch (`NTGD_SMS_INCREMENTAL=0`).
    pub incremental_models: bool,
    /// The process-wide shared-base registry, if base sharing is on: the
    /// first `LOAD` of a program chases and freezes its base there, and
    /// every later `LOAD` of the same payload forks it copy-on-write
    /// instead of re-chasing (see the crate documentation's *shared-base
    /// caching contract*).  `None` (the default) builds every session
    /// privately; `ntgd-serve` installs one registry per process unless
    /// `NTGD_SHARED_BASE=0`.
    pub base_registry: Option<Arc<BaseRegistry>>,
    /// Which connection transport `serve`/`serve_tcp` run sessions on
    /// (evented readiness loop vs one thread per connection).  Protocol
    /// semantics and transcripts are byte-identical across both; the
    /// threaded path is kept for differential testing.  Defaults from
    /// `NTGD_TRANSPORT`.
    pub transport: Transport,
    /// Admission cap on concurrently live TCP sessions; a connection over
    /// the cap is answered with a single `ERR server at capacity` line and
    /// closed (no banner).  `None` (the default) accepts without limit.
    /// Defaults from `NTGD_MAX_SESSIONS`.
    pub max_sessions: Option<usize>,
    /// The serving transport's connection counters, installed by
    /// `serve`/`serve_repl` so `STATS conn` can report them.  `None` for
    /// embedded sessions (the scope then prints `conn_transport=embedded`
    /// and zeros).
    pub conn_stats: Option<Arc<ConnStats>>,
    /// Optional per-session cumulative execution-time cap (see
    /// [`SessionBudget`]).  Defaults from `NTGD_SESSION_BUDGET`; `None`
    /// (the default) never consults timing for any decision.
    pub session_budget: Option<SessionBudget>,
    /// Slow-request log threshold in milliseconds: a request whose wall
    /// time reaches it emits a `slow_request` event to the structured log
    /// (`NTGD_LOG`).  Defaults from `NTGD_SLOW_MS`; `None` disables.
    pub slow_ms: Option<u64>,
    /// Whether `LOAD` classifies the program against the decidability
    /// landscape (`ntgd_classes::classify`) and exploits the verdict:
    /// chase-terminating programs run with no chase step budget and an
    /// exact `Auto` null budget; out-of-fragment programs keep the budget
    /// and get a one-line `WARN` on `LOAD`.  Classification is purely
    /// syntactic (timing-independent), so transcripts stay deterministic.
    /// On by default; `NTGD_CLASSIFY=0` restores the blind-budget
    /// behaviour.
    pub classify: bool,
    /// Idle-session timeout for the evented transport: a connection with no
    /// read activity for this long is closed and its admission slot
    /// released (counted as `conn_idle_closed` in `STATS conn`).  Defaults
    /// from `NTGD_IDLE_TIMEOUT` (milliseconds); `None` (the default) never
    /// reaps.
    pub idle_timeout: Option<Duration>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_steps: 100_000,
            max_models: 64,
            incremental_models: std::env::var("NTGD_SMS_INCREMENTAL")
                .map_or(true, |value| value != "0"),
            base_registry: None,
            transport: Transport::from_env(),
            max_sessions: std::env::var("NTGD_MAX_SESSIONS")
                .ok()
                .and_then(|value| value.trim().parse::<usize>().ok())
                .filter(|&cap| cap > 0),
            conn_stats: None,
            session_budget: SessionBudget::from_env(),
            slow_ms: std::env::var("NTGD_SLOW_MS")
                .ok()
                .and_then(|value| value.trim().parse::<u64>().ok()),
            classify: std::env::var("NTGD_CLASSIFY").map_or(true, |value| value != "0"),
            idle_timeout: std::env::var("NTGD_IDLE_TIMEOUT")
                .ok()
                .and_then(|value| value.trim().parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis),
        }
    }
}

/// The state reachable from one epoch mark: how to roll the chase and the
/// fact log back to it.
#[derive(Clone, Copy, Debug)]
struct SessionMark {
    chase: Option<EpochMark>,
    facts: usize,
}

/// The program-dependent part of a session, replaced wholesale by `LOAD`.
struct Loaded {
    /// The rules, as parsed (possibly disjunctive), shared with the SMS
    /// engines minted per `MODELS` request.
    disjunctive: Arc<DisjunctiveProgram>,
    /// The rules as a normal program, when no rule uses `|`.
    normal: Option<Program>,
    /// The resumable chase (normal programs; chases the positive part).
    chase: Option<IncrementalChase>,
    /// The reusable `MODELS sms` grounding state (closure + grounding kept
    /// across asserts/retracts); `None` when the session runs from scratch.
    sms: Option<IncrementalSmsState>,
    /// Asserted facts in assertion order, deduplicated.
    facts: Vec<Atom>,
    /// Dedup mirror of `facts` (rebuilt on retract).
    fact_set: HashSet<Atom>,
    /// `marks[k]` = state after assert `k` (`marks[0]` = post-`LOAD`).
    marks: Vec<SessionMark>,
    /// Bumped on every mutation; keys the model cache.
    generation: u64,
    /// Session-scoped `MODELS` cache for the current generation.
    models_cache: Option<(u64, ModelsMode, usize, Vec<String>)>,
    /// The registry key this state was forked from, when it shares a base.
    shared: Option<BaseKey>,
    /// Facts covered by the shared base (0 when built privately); the
    /// `STATS base` overlay count for chase-less (disjunctive) sessions.
    base_facts: usize,
    /// The program's decidability classification (`None` when
    /// [`SessionConfig::classify`] is off).
    class: Option<ProgramClass>,
    /// Whether the classification was inherited from a registered base
    /// (`STATS classes` provenance) rather than computed by this session.
    class_inherited: bool,
}

/// The chase step budget the classification verdict supports: unbounded for
/// provably chase-terminating programs, the configured cap otherwise.  A
/// pure function of (verdict, config), shared by the private-build and fork
/// paths so both install identical budgets.
fn chase_config_for(class: Option<&ProgramClass>, config: &SessionConfig) -> ChaseConfig {
    match class {
        Some(class) if class.verdict == ClassVerdict::Terminating => ChaseConfig::unbounded(),
        _ => ChaseConfig::with_max_steps(config.max_steps),
    }
}

/// The `MODELS` null budget the verdict supports: the exact (unbounded
/// probe) `Auto` budget for chase-terminating programs, the clamped default
/// otherwise.
fn null_budget_for(class: Option<&ProgramClass>) -> NullBudget {
    match class {
        Some(class) if class.verdict == ClassVerdict::Terminating => NullBudget::AutoExact,
        _ => NullBudget::Auto,
    }
}

/// A reasoning session.  [`Session::execute`] drives it with protocol lines;
/// the typed methods ([`Session::load`], [`Session::assert_facts`], …) serve
/// in-process embedders (benchmarks, the example, tests).
pub struct Session {
    config: SessionConfig,
    loaded: Option<Loaded>,
    /// Process-unique id, correlating this session's log events.
    id: u64,
    /// Cumulative wall time spent executing this session's requests.
    exec_ns: u64,
    /// Whether a `Warn` budget has already logged for this session.
    budget_warned: bool,
    /// The session-local request tallies behind `STATS metrics`.
    requests: RequestCounters,
}

impl Session {
    /// Creates an empty session.
    pub fn new(config: SessionConfig) -> Session {
        Session {
            config,
            loaded: None,
            id: SESSION_IDS.fetch_add(1, Ordering::Relaxed),
            exec_ns: 0,
            budget_warned: false,
            requests: RequestCounters::default(),
        }
    }

    /// Parses and executes one protocol line.
    ///
    /// Request accounting wraps the dispatch: the session-local
    /// [`RequestCounters`] count the request *before* it runs (so a `STATS
    /// metrics` request counts itself), and wall time is recorded into the
    /// per-verb `server.request.<verb>` histogram afterwards.  Timing is
    /// observed, never consulted — except under an explicit
    /// [`SessionBudget`], which is off by default.
    pub fn execute(&mut self, line: &str) -> Response {
        let parsed = parse_command(line);
        if matches!(parsed, Ok(Command::Nop)) {
            return Response::none();
        }
        SERVER_REQUESTS.fetch_add(1, Ordering::Relaxed);
        self.requests.total += 1;
        let verb = parsed.as_ref().ok().and_then(verb_label);
        if let Some(verb) = verb {
            self.requests.bump(verb);
        }
        let started = Instant::now();
        let response = match self.over_budget(&parsed) {
            Some(rejection) => rejection,
            None => match parsed {
                Err(message) => Response::err(message),
                Ok(Command::Nop) => Response::none(),
                Ok(Command::Ping) => Response::ok("pong"),
                Ok(Command::Help) => Response::ok_with(
                    crate::protocol::HELP_LINES
                        .iter()
                        .map(|s| format!("INFO {s}"))
                        .collect(),
                    "help",
                ),
                Ok(Command::Quit) => Response {
                    lines: vec!["OK bye".to_owned()],
                    close: true,
                },
                Ok(Command::Load(text)) => self.load(&text),
                Ok(Command::Assert(text)) => self.assert_text(&text),
                Ok(Command::Query(text)) => self.query_text(&text),
                Ok(Command::Models { mode, max }) => self.models(mode, max),
                Ok(Command::RetractTo(mark)) => self.retract_to(mark),
                Ok(Command::Stats { scope }) => self.stats(scope),
                Ok(Command::Metrics) => Self::metrics(),
            },
        };
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.exec_ns = self.exec_ns.saturating_add(elapsed_ns);
        SERVER_EXEC_NS.fetch_add(elapsed_ns, Ordering::Relaxed);
        if !response.is_ok() {
            self.requests.errors += 1;
            REQ_ERRORS.incr();
        }
        if let Some(verb) = verb {
            verb_counter(verb).incr();
            obs::record_duration(verb_histogram(verb), elapsed_ns);
        }
        self.log_slow(verb, line, &response, elapsed_ns);
        response
    }

    /// The `METRICS` verb: the process-wide registry as Prometheus-style
    /// text lines (see [`obs::prometheus_lines`]).  Timing-laden and
    /// process-global, so transcript-parity tests exclude it.
    fn metrics() -> Response {
        let lines = obs::prometheus_lines();
        let count = lines.len();
        Response::ok_with(lines, format!("metrics lines={count}"))
    }

    /// Applies the optional [`SessionBudget`] to a compute request:
    /// `Some(ERR …)` when a `Reject` budget is exhausted.  Inspection
    /// verbs (`STATS`, `METRICS`, `PING`, `HELP`, `QUIT`) always run, so
    /// an over-budget session stays diagnosable.
    fn over_budget(&mut self, parsed: &Result<Command, String>) -> Option<Response> {
        let budget = self.config.session_budget?;
        let compute = matches!(
            parsed,
            Ok(Command::Load(_)
                | Command::Assert(_)
                | Command::Query(_)
                | Command::Models { .. }
                | Command::RetractTo(_))
        );
        if !compute {
            return None;
        }
        let spent_ms = self.exec_ns / 1_000_000;
        match budget {
            SessionBudget::Reject(cap_ms) if spent_ms >= cap_ms => {
                BUDGET_REJECTIONS.incr();
                obs::log::log_event(
                    Level::Warn,
                    "budget_rejected",
                    &[
                        ("session", FieldValue::from(self.id)),
                        ("spent_ms", FieldValue::from(spent_ms)),
                        ("budget_ms", FieldValue::from(cap_ms)),
                    ],
                );
                Some(Response::err(format!(
                    "session budget exceeded (spent {spent_ms}ms >= budget {cap_ms}ms)"
                )))
            }
            SessionBudget::Warn(cap_ms) if spent_ms >= cap_ms && !self.budget_warned => {
                self.budget_warned = true;
                obs::log::log_event(
                    Level::Warn,
                    "budget_exceeded",
                    &[
                        ("session", FieldValue::from(self.id)),
                        ("spent_ms", FieldValue::from(spent_ms)),
                        ("budget_ms", FieldValue::from(cap_ms)),
                    ],
                );
                None
            }
            _ => None,
        }
    }

    /// Emits a `slow_request` event when the request's wall time reaches
    /// the configured `NTGD_SLOW_MS` threshold.
    fn log_slow(&self, verb: Option<&'static str>, line: &str, response: &Response, ns: u64) {
        let Some(threshold_ms) = self.config.slow_ms else {
            return;
        };
        let elapsed_ms = ns / 1_000_000;
        if elapsed_ms < threshold_ms || !obs::log::log_enabled(Level::Warn) {
            return;
        }
        let response_bytes: usize = response.lines.iter().map(String::len).sum();
        obs::log::log_event(
            Level::Warn,
            "slow_request",
            &[
                ("verb", FieldValue::from(verb.unwrap_or("invalid"))),
                ("session", FieldValue::from(self.id)),
                ("duration_ms", FieldValue::from(elapsed_ms)),
                ("request_bytes", FieldValue::from(line.len())),
                ("response_lines", FieldValue::from(response.lines.len())),
                ("response_bytes", FieldValue::from(response_bytes)),
                ("ok", FieldValue::from(response.is_ok())),
            ],
        );
    }

    /// `LOAD`: parse rules (and optional initial facts), compile the rule
    /// plans, run the initial chase and establish mark 0.  Replaces any
    /// previously loaded state; on error the previous state is kept.
    ///
    /// With a [`SessionConfig::base_registry`] attached, the chased base of
    /// the first `LOAD` of a payload is frozen and registered, and every
    /// `LOAD` of the same payload — this first one included, so transcripts
    /// never depend on arrival order — *forks* that base copy-on-write
    /// instead of re-parsing, re-compiling, re-chasing and re-grounding it.
    pub fn load(&mut self, text: &str) -> Response {
        if let Some(registry) = self.config.base_registry.clone() {
            let key = BaseKey::new(text, self.config.max_steps, self.config.classify);
            let entry = match registry.lookup(&key) {
                Some(entry) => entry,
                None => {
                    let built = match self.build_loaded(text) {
                        Ok(built) => built,
                        Err(response) => return response,
                    };
                    registry.register(key.clone(), Arc::new(Self::freeze_loaded(built)))
                }
            };
            let forked = Self::fork_loaded(&entry, &self.config, key);
            return self.install(forked);
        }
        match self.build_loaded(text) {
            Ok(loaded) => self.install(loaded),
            Err(response) => response,
        }
    }

    /// Parses, compiles and chases one `LOAD` payload into a fresh private
    /// [`Loaded`] (mark 0 established).  On error the session is untouched.
    fn build_loaded(&self, text: &str) -> Result<Loaded, Response> {
        let unit = match parse_unit(text) {
            Ok(unit) => unit,
            Err(error) => return Err(Response::err(error)),
        };
        if !unit.queries.is_empty() {
            return Err(Response::err(
                "LOAD text may not contain queries; use QUERY",
            ));
        }
        let disjunctive = match unit.disjunctive_program() {
            Ok(program) => program,
            Err(error) => return Err(Response::err(error)),
        };
        let normal = unit.program();
        // Classify before building anything: the verdict decides the chase
        // and null budgets.  Disjunctive payloads are classified through
        // their positive-conjunctive transform — the program the chase and
        // the `Auto` domain probe actually run on.
        let class = self
            .config
            .classify
            .then(|| match &normal {
                Some(program) => ProgramClass::of(program),
                None => ProgramClass::of(&disjunctive.positive_conjunctive_part()),
            });
        let chase = match &normal {
            Some(program) => {
                match IncrementalChase::new(program, chase_config_for(class.as_ref(), &self.config))
                {
                    Ok(chase) => Some(chase),
                    Err(limit) => return Err(Response::err(limit)),
                }
            }
            None => None,
        };
        let disjunctive = Arc::new(disjunctive);
        let sms = self.config.incremental_models.then(|| {
            IncrementalSmsState::new(
                Arc::clone(&disjunctive),
                null_budget_for(class.as_ref()),
                GroundingLimits::default(),
            )
        });
        let mut loaded = Loaded {
            disjunctive,
            normal,
            chase,
            sms,
            facts: Vec::new(),
            fact_set: HashSet::new(),
            marks: Vec::new(),
            generation: 0,
            models_cache: None,
            shared: None,
            base_facts: 0,
            class,
            class_inherited: false,
        };
        let initial_facts: Vec<Atom> = unit.database.facts().cloned().collect();
        if let Some(chase) = loaded.chase.as_mut() {
            if let Err(limit) = chase.assert_facts(initial_facts.iter().cloned()) {
                return Err(Response::err(limit));
            }
        }
        for fact in initial_facts {
            if loaded.fact_set.insert(fact.clone()) {
                loaded.facts.push(fact);
            }
        }
        loaded.marks.push(SessionMark {
            chase: loaded.chase.as_ref().map(IncrementalChase::mark),
            facts: loaded.facts.len(),
        });
        Ok(loaded)
    }

    /// Installs a loaded state and emits the `LOAD` response.  Out-of-
    /// fragment programs get a structured `WARN` data line before the `OK`
    /// (plus a log event): the budget stays on and the client deserves to
    /// know why its chase may be cut off.
    fn install(&mut self, loaded: Loaded) -> Response {
        let rules = loaded.disjunctive.len();
        let facts = loaded.facts.len();
        let atoms = loaded.atoms();
        let class = loaded.class;
        self.loaded = Some(loaded);
        let summary = format!("rules={rules} facts={facts} atoms={atoms} mark=0");
        if let Some(class) = class {
            class_counter(class.verdict).incr();
            if class.verdict == ClassVerdict::OutOfFragment {
                obs::log::log_event(
                    Level::Warn,
                    "class_out_of_fragment",
                    &[
                        ("session", FieldValue::from(self.id)),
                        ("budget", FieldValue::from(self.config.max_steps)),
                    ],
                );
                return Response::ok_with(
                    vec![format!(
                        "WARN class=out-of-fragment budget={}",
                        self.config.max_steps
                    )],
                    summary,
                );
            }
        }
        Response::ok(summary)
    }

    /// Freezes a freshly built private state into a registrable
    /// [`BaseEntry`]: the chase moves behind an `Arc` (no arena copy), and
    /// the `MODELS sms` grounding of the initial facts is built eagerly so
    /// every fork — whenever it arrives — sees the same snapshot and the
    /// same deterministic counters.  A grounding failure (limits) leaves the
    /// snapshot out; forks then ground privately and report the error on
    /// their first `MODELS`, exactly like a private session.
    fn freeze_loaded(loaded: Loaded) -> BaseEntry {
        let Loaded {
            disjunctive,
            normal,
            chase,
            sms,
            facts,
            class,
            ..
        } = loaded;
        let chase = chase.map(IncrementalChase::freeze);
        let sms = sms.and_then(|mut state| match state.ensure_current(&facts) {
            Ok(_) => state.freeze(&facts),
            Err(_) => None,
        });
        BaseEntry::new(disjunctive, normal, chase, sms, facts, class)
    }

    /// Forks a registered base into a fresh session state in O(1): the
    /// chase shares the frozen arena and chases only this session's fact
    /// delta on an overlay; `MODELS sms` answers over the base prefix
    /// zero-copy and adopts the snapshot on the first extension.
    fn fork_loaded(entry: &Arc<BaseEntry>, config: &SessionConfig, key: BaseKey) -> Loaded {
        entry.record_fork();
        // The verdict is inherited from the registered base — never
        // recomputed — so a thousand forks of one program classify once.
        let class = if config.classify { entry.class } else { None };
        let chase = entry
            .chase
            .as_ref()
            .map(|base| IncrementalChase::fork(base, chase_config_for(class.as_ref(), config)));
        let sms = config.incremental_models.then(|| {
            let state = IncrementalSmsState::new(
                Arc::clone(&entry.disjunctive),
                null_budget_for(class.as_ref()),
                GroundingLimits::default(),
            );
            match entry.sms.as_ref() {
                Some(snapshot) => state.with_base(Arc::clone(snapshot)),
                None => state,
            }
        });
        let facts = entry.facts.clone();
        let fact_set = facts.iter().cloned().collect();
        let mut loaded = Loaded {
            disjunctive: Arc::clone(&entry.disjunctive),
            normal: entry.normal.clone(),
            chase,
            sms,
            base_facts: facts.len(),
            facts,
            fact_set,
            marks: Vec::new(),
            generation: 0,
            models_cache: None,
            shared: Some(key),
            class,
            class_inherited: true,
        };
        loaded.marks.push(SessionMark {
            chase: loaded.chase.as_ref().map(IncrementalChase::mark),
            facts: loaded.facts.len(),
        });
        loaded
    }

    /// `ASSERT`, with the facts already parsed.  Transactional: a step-limit
    /// overrun rolls the whole batch back.
    pub fn assert_facts(&mut self, facts: Vec<Atom>) -> Response {
        let Some(loaded) = self.loaded.as_mut() else {
            return Response::err("no program loaded");
        };
        // The protocol path can only produce constant facts (the parser
        // rejects anything else), but this typed entry point is public:
        // validate up front so a variable or labelled null is a protocol
        // error, never a downstream panic in the chase or the MODELS cache.
        if let Some(fact) = facts.iter().find(|fact| !fact.is_constant_only()) {
            return Response::err(format!("facts must be ground and null-free, got {fact}"));
        }
        let before_atoms = loaded.atoms();
        let mut derived = 0usize;
        if let Some(chase) = loaded.chase.as_mut() {
            match chase.assert_facts(facts.iter().cloned()) {
                Ok(summary) => derived = summary.derived,
                Err(limit) => return Response::err(limit),
            }
        }
        let mut added = 0usize;
        for fact in facts {
            if loaded.fact_set.insert(fact.clone()) {
                loaded.facts.push(fact);
                added += 1;
            }
        }
        loaded.marks.push(SessionMark {
            chase: loaded.chase.as_ref().map(IncrementalChase::mark),
            facts: loaded.facts.len(),
        });
        loaded.generation += 1;
        let mark = loaded.marks.len() - 1;
        let atoms = loaded.atoms();
        debug_assert!(atoms >= before_atoms);
        Response::ok(format!(
            "mark={mark} added={added} derived={derived} atoms={atoms}"
        ))
    }

    fn assert_text(&mut self, text: &str) -> Response {
        match parse_database(text) {
            Ok(database) => self.assert_facts(database.facts().cloned().collect()),
            Err(error) => Response::err(error),
        }
    }

    /// `QUERY`: certain answers over the chased instance.  `Query::answers`
    /// implements the paper's certain-answer semantics (`q(I) ⊆ Cⁿ`), so
    /// tuples that would bind an answer variable to a labelled null are
    /// never reported.
    pub fn query(&mut self, query: &Query) -> Response {
        let Some(loaded) = self.loaded.as_ref() else {
            return Response::err("no program loaded");
        };
        let Some(chase) = loaded.chase.as_ref() else {
            return Response::err("QUERY needs a normal (non-disjunctive) program");
        };
        let instance = chase.instance();
        if query.is_boolean() {
            let verdict = query.holds(instance);
            return Response::ok_with(vec![format!("ANSWER {verdict}")], "answers=1");
        }
        let answers = query.answers(instance);
        let mut lines: Vec<String> = answers
            .iter()
            .map(|tuple| {
                let rendered: Vec<String> = tuple.iter().map(Term::to_string).collect();
                format!("ANSWER {}", rendered.join(", "))
            })
            .collect();
        // Term order follows symbol interning (session history); sort the
        // rendered lines so transcripts are stable across histories.
        lines.sort();
        let kept = lines.len();
        Response::ok_with(lines, format!("answers={kept}"))
    }

    fn query_text(&mut self, text: &str) -> Response {
        match parse_query(text) {
            Ok(query) => self.query(&query),
            Err(error) => Response::err(error),
        }
    }

    /// `MODELS`: stable models of the accumulated fact set, rendered sorted;
    /// cached per (generation, mode, cap) so repeated calls on an unchanged
    /// session are free.
    ///
    /// In `sms` mode the session consults its [`IncrementalSmsState`] (when
    /// [`SessionConfig::incremental_models`] is on): the possibly-true
    /// closure and grounding are advanced from the fact delta instead of
    /// being rebuilt, and only the CEGAR model search runs per request.  The
    /// cached state is exact — whenever `max` does not truncate the
    /// enumeration, answers are bit-identical to the from-scratch path;
    /// capped listings are samples of the stable-model set on either path
    /// (see the crate documentation's *MODELS caching contract*).
    pub fn models(&mut self, mode: ModelsMode, max: Option<usize>) -> Response {
        let max_models = max.unwrap_or(self.config.max_models);
        let Some(loaded) = self.loaded.as_mut() else {
            return Response::err("no program loaded");
        };
        if let Some((generation, cached_mode, cached_max, lines)) = &loaded.models_cache {
            if *generation == loaded.generation && *cached_mode == mode && *cached_max == max_models
            {
                let count = lines.len();
                return Response::ok_with(
                    lines.clone(),
                    format!("models={count} mode={mode} cached=true"),
                );
            }
        }
        let rendered = match mode {
            ModelsMode::Sms => {
                let Loaded {
                    disjunctive,
                    facts,
                    sms,
                    ..
                } = loaded;
                let result = match sms.as_mut() {
                    Some(state) => match state.ensure_current(facts) {
                        Ok(ground) => SmsEngine::new_shared(Arc::clone(disjunctive))
                            .stable_models_over(ground, max_models),
                        Err(error) => Err(SmsError::from(error)),
                    },
                    None => {
                        let database = match Database::from_facts(facts.iter().cloned()) {
                            Ok(database) => database,
                            Err(error) => return Response::err(error),
                        };
                        let options = SmsOptions {
                            max_models,
                            ..SmsOptions::default()
                        };
                        SmsEngine::new_shared(Arc::clone(disjunctive))
                            .with_options(options)
                            .stable_models(&database)
                    }
                };
                match result {
                    Ok(models) => render_models(models.iter().map(ToString::to_string)),
                    Err(error) => return Response::err(error),
                }
            }
            ModelsMode::Lp => {
                let Some(normal) = loaded.normal.as_ref() else {
                    return Response::err("MODELS lp needs a normal program; use MODELS sms");
                };
                let database = match Database::from_facts(loaded.facts.iter().cloned()) {
                    Ok(database) => database,
                    Err(error) => return Response::err(error),
                };
                match LpEngine::new(&database, normal, &LpLimits::default()) {
                    Ok(engine) => render_models(
                        engine
                            .models()
                            .iter()
                            .take(max_models)
                            .map(ToString::to_string),
                    ),
                    Err(error) => return Response::err(error),
                }
            }
        };
        let count = rendered.len();
        loaded.models_cache = Some((loaded.generation, mode, max_models, rendered.clone()));
        Response::ok_with(rendered, format!("models={count} mode={mode}"))
    }

    /// `RETRACT-TO`: roll back to mark `mark`, truncating the arena and the
    /// fact log; marks taken later are discarded.
    pub fn retract_to(&mut self, mark: usize) -> Response {
        let Some(loaded) = self.loaded.as_mut() else {
            return Response::err("no program loaded");
        };
        // Every load establishes mark 0, but the guard must not assume it:
        // `marks.len() - 1` underflows on an empty history, so an
        // out-of-range mark always answers a clean `ERR`, never a panic.
        if mark >= loaded.marks.len() {
            return Response::err(match loaded.marks.len() {
                0 => format!("unknown mark {mark} (no marks)"),
                have => format!("unknown mark {mark} (have 0..={})", have - 1),
            });
        }
        let target = loaded.marks[mark];
        if let (Some(chase), Some(epoch)) = (loaded.chase.as_mut(), target.chase.as_ref()) {
            chase.retract_to(epoch);
        }
        // The cached MODELS grounding truncates to its newest snapshot at or
        // below the target — O(retracted), like the arena; a later MODELS
        // then advances from that snapshot instead of re-grounding.
        if let Some(state) = loaded.sms.as_mut() {
            state.retract_to_facts(target.facts);
        }
        // `facts` is deduplicated, so dropping exactly the truncated slice
        // from the mirror keeps rollback O(retracted), matching the arena.
        for fact in &loaded.facts[target.facts..] {
            loaded.fact_set.remove(fact);
        }
        loaded.facts.truncate(target.facts);
        loaded.marks.truncate(mark + 1);
        loaded.generation += 1;
        let atoms = loaded.atoms();
        Response::ok(format!("mark={mark} atoms={atoms}"))
    }

    /// `STATS`: session and engine counters.  The `sms`, `base`, `conn`
    /// and `metrics` scopes print only counters that are a pure function
    /// of the request/connection history, so transcripts can assert them
    /// verbatim at any thread count or pool mode.
    pub fn stats(&self, scope: StatsScope) -> Response {
        if scope == StatsScope::Base {
            return self.base_stats();
        }
        if scope == StatsScope::Conn {
            return Response::ok_with(conn_stat_lines(&self.config), "stats");
        }
        if scope == StatsScope::Metrics {
            return Response::ok_with(self.requests.stat_lines(), "stats");
        }
        if scope == StatsScope::Classes {
            return self.class_stats();
        }
        let sms_only = scope == StatsScope::Sms;
        let mut lines = Vec::new();
        match self.loaded.as_ref() {
            None => lines.push("STAT loaded=false".to_owned()),
            Some(loaded) => {
                if !sms_only {
                    lines.push("STAT loaded=true".to_owned());
                    lines.push(format!("STAT rules={}", loaded.disjunctive.len()));
                    lines.push(format!("STAT facts={}", loaded.facts.len()));
                    lines.push(format!("STAT atoms={}", loaded.atoms()));
                    lines.push(format!("STAT marks={}", loaded.marks.len()));
                    if let Some(chase) = loaded.chase.as_ref() {
                        lines.push(format!("STAT chase_steps={}", chase.steps()));
                        lines.push(format!("STAT nulls={}", chase.nulls_created()));
                    }
                }
                lines.extend(sms_stat_lines(loaded));
            }
        }
        if !sms_only {
            let pool = parallel::pool_stats();
            lines.push(format!("STAT server_requests={}", server_requests()));
            lines.push(format!("STAT threads={}", parallel::num_threads()));
            lines.push(format!("STAT pool_enabled={}", parallel::pool_enabled()));
            lines.push(format!("STAT pool_workers={}", pool.workers));
            lines.push(format!("STAT pool_jobs={}", pool.jobs));
            lines.push(format!("STAT pool_items={}", pool.items));
            lines.extend(conn_stat_lines(&self.config));
        }
        Response::ok_with(lines, "stats")
    }

    /// `STATS base`: the shared-base counters.  `base_shared` says whether
    /// the loaded state was forked from the registry; `base_atoms` /
    /// `base_overlay_atoms` split the session's arena at the fork watermark
    /// (fact counts for chase-less disjunctive sessions); the registry
    /// counters are per program key, so they count only `LOAD`s of *this*
    /// program.  Every line is a pure function of the `LOAD`/`ASSERT`
    /// history — never of thread count, pool mode or machine.
    fn base_stats(&self) -> Response {
        let mut lines = Vec::new();
        match self.loaded.as_ref() {
            None => lines.push("STAT base_shared=false".to_owned()),
            Some(loaded) => {
                lines.push(format!("STAT base_shared={}", loaded.shared.is_some()));
                let (base_atoms, overlay_atoms) = match loaded.chase.as_ref() {
                    Some(chase) => {
                        let instance = chase.instance();
                        (instance.base_len(), instance.overlay_len())
                    }
                    None => (loaded.base_facts, loaded.facts.len() - loaded.base_facts),
                };
                lines.push(format!("STAT base_atoms={base_atoms}"));
                lines.push(format!("STAT base_overlay_atoms={overlay_atoms}"));
                if let (Some(key), Some(registry)) =
                    (loaded.shared.as_ref(), self.config.base_registry.as_ref())
                {
                    if let Some(stats) = registry.stats(key) {
                        lines.push(format!("STAT base_registry_hits={}", stats.hits));
                        lines.push(format!("STAT base_registry_misses={}", stats.misses));
                        lines.push(format!("STAT base_rebuilds={}", stats.rebuilds));
                        lines.push(format!("STAT base_forks={}", stats.forks));
                    }
                }
            }
        }
        Response::ok_with(lines, "stats")
    }

    /// `STATS classes`: the decidability classification of the loaded
    /// program and what the front door did with it — member classes,
    /// verdict, the budgets the verdict bought, and whether the verdict was
    /// computed here or inherited from the shared-base registry.  Every
    /// line is a pure function of the `LOAD` payload (classification is
    /// syntactic), so transcripts assert the scope verbatim at any thread
    /// count or pool mode.
    fn class_stats(&self) -> Response {
        let Some(loaded) = self.loaded.as_ref() else {
            return Response::ok_with(vec!["STAT classes_loaded=false".to_owned()], "stats");
        };
        let Some(class) = loaded.class.as_ref() else {
            return Response::ok_with(vec!["STAT classes_enabled=false".to_owned()], "stats");
        };
        let members: Vec<&'static str> = class
            .report
            .entries()
            .iter()
            .filter(|(_, member)| *member)
            .map(|(name, _)| *name)
            .collect();
        let members = if members.is_empty() {
            "none".to_owned()
        } else {
            members.join(",")
        };
        let chase_budget = match chase_config_for(Some(class), &self.config).max_steps {
            None => "unbounded".to_owned(),
            Some(max_steps) => max_steps.to_string(),
        };
        let null_budget = match null_budget_for(Some(class)) {
            NullBudget::AutoExact => "auto-exact",
            _ => "auto",
        };
        let source = if loaded.class_inherited {
            "inherited"
        } else {
            "classified"
        };
        let lines = vec![
            format!("STAT class_members={members}"),
            format!("STAT class_verdict={}", class.verdict),
            format!("STAT class_chase_budget={chase_budget}"),
            format!("STAT class_null_budget={null_budget}"),
            format!("STAT class_source={source}"),
        ];
        Response::ok_with(lines, "stats")
    }

    /// The chased instance of a loaded normal program (for embedders and
    /// tests; protocol clients use `QUERY`).
    pub fn instance(&self) -> Option<&ntgd_core::Interpretation> {
        self.loaded
            .as_ref()
            .and_then(|loaded| loaded.chase.as_ref())
            .map(IncrementalChase::instance)
    }

    /// The accumulated (live) fact log, in assertion order.
    pub fn facts(&self) -> &[Atom] {
        self.loaded
            .as_ref()
            .map(|loaded| loaded.facts.as_slice())
            .unwrap_or(&[])
    }

    /// The current number of epoch marks (`RETRACT-TO` accepts `0..marks`).
    pub fn marks(&self) -> usize {
        self.loaded
            .as_ref()
            .map(|loaded| loaded.marks.len())
            .unwrap_or(0)
    }
}

impl Loaded {
    /// Arena size of the chased instance, or the fact count when the
    /// program is disjunctive (no chase).
    fn atoms(&self) -> usize {
        self.chase
            .as_ref()
            .map(|chase| chase.instance().len())
            .unwrap_or(self.facts.len())
    }
}

/// The connection-layer counter lines of `STATS` / `STATS conn`: which
/// transport serves this session and its accepted/active/peak/rejected
/// tallies.  Deterministic for any scripted sequence of connections — the
/// REPL always reports `conn_transport=repl` with zeros, an embedded
/// session `conn_transport=embedded` with zeros — so smoke transcripts can
/// assert the scope verbatim.
fn conn_stat_lines(config: &SessionConfig) -> Vec<String> {
    match config.conn_stats.as_ref() {
        None => vec![
            "STAT conn_transport=embedded".to_owned(),
            "STAT conn_accepted=0".to_owned(),
            "STAT conn_active=0".to_owned(),
            "STAT conn_peak=0".to_owned(),
            "STAT conn_rejected=0".to_owned(),
            "STAT conn_idle_closed=0".to_owned(),
        ],
        Some(stats) => {
            let snapshot = stats.snapshot();
            vec![
                format!("STAT conn_transport={}", snapshot.transport),
                format!("STAT conn_accepted={}", snapshot.accepted),
                format!("STAT conn_active={}", snapshot.active),
                format!("STAT conn_peak={}", snapshot.peak),
                format!("STAT conn_rejected={}", snapshot.rejected),
                format!("STAT conn_idle_closed={}", snapshot.idle_closed),
            ]
        }
    }
}

/// The incremental-`MODELS` counter lines of `STATS` (deterministic across
/// thread counts and pool modes; see the crate docs).
fn sms_stat_lines(loaded: &Loaded) -> Vec<String> {
    match loaded.sms.as_ref() {
        None => vec!["STAT sms_incremental=false".to_owned()],
        Some(state) => {
            let stats = state.stats();
            vec![
                "STAT sms_incremental=true".to_owned(),
                format!("STAT sms_rebuilds={}", stats.rebuilds),
                format!("STAT sms_reuses={}", stats.reuses),
                format!("STAT sms_hits={}", stats.hits),
                format!("STAT sms_rollbacks={}", stats.rollbacks),
                format!("STAT sms_invalidations={}", stats.invalidations),
                format!("STAT sms_closure_atoms={}", state.closure_atoms()),
                format!("STAT sms_ground_rules={}", state.ground_rules()),
            ]
        }
    }
}

/// Renders models sorted, one protocol line each (stable across engines and
/// thread counts: interpretations display their atoms sorted).
fn render_models<I: Iterator<Item = String>>(models: I) -> Vec<String> {
    let mut rendered: Vec<String> = models.map(|m| format!("MODEL {m}")).collect();
    rendered.sort();
    rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_line(response: &Response) -> &str {
        assert!(response.is_ok(), "expected OK, got {:?}", response.lines);
        response.terminator().unwrap()
    }

    #[test]
    fn load_assert_query_retract_round_trip() {
        let mut session = Session::new(SessionConfig::default());
        let loaded = session.execute("LOAD person(X) -> hasFather(X, Y). person(eve).");
        assert_eq!(ok_line(&loaded), "OK rules=1 facts=1 atoms=2 mark=0");
        let asserted = session.execute("ASSERT person(alice). person(bo).");
        assert!(ok_line(&asserted).starts_with("OK mark=1 added=2 derived=2"));
        let answers = session.execute("QUERY ?(X) :- person(X).");
        assert_eq!(
            answers.lines,
            vec![
                "ANSWER alice".to_owned(),
                "ANSWER bo".to_owned(),
                "ANSWER eve".to_owned(),
                "OK answers=3".to_owned()
            ]
        );
        // Nulls are not certain answers: the invented father is not
        // reported (certain-answer semantics of `Query::answers`).
        let fathers = session.execute("QUERY ?(Y) :- hasFather(alice, Y).");
        assert_eq!(fathers.terminator(), Some("OK answers=0"));
        assert!(session.execute("QUERY ?- hasFather(alice, Y).").lines[0] == "ANSWER true");
        let retracted = session.execute("RETRACT-TO 0");
        assert_eq!(ok_line(&retracted), "OK mark=0 atoms=2");
        let again = session.execute("QUERY ?(X) :- person(X).");
        assert_eq!(
            again.lines,
            vec!["ANSWER eve".to_owned(), "OK answers=1".to_owned()]
        );
    }

    #[test]
    fn boolean_queries_answer_true_or_false() {
        let mut session = Session::new(SessionConfig::default());
        session.execute("LOAD p(X) -> q(X).");
        session.execute("ASSERT p(a).");
        assert_eq!(
            session.execute("QUERY ?- q(a).").lines,
            vec!["ANSWER true".to_owned(), "OK answers=1".to_owned()]
        );
        assert_eq!(
            session.execute("QUERY ?- q(b).").lines[0],
            "ANSWER false".to_owned()
        );
    }

    #[test]
    fn models_are_enumerated_sorted_and_cached() {
        let mut session = Session::new(SessionConfig::default());
        session.execute("LOAD node(X) -> red(X) | green(X). node(v).");
        let first = session.execute("MODELS");
        assert_eq!(first.terminator(), Some("OK models=2 mode=sms"));
        assert!(first.lines[0] < first.lines[1], "sorted output");
        let second = session.execute("MODELS");
        assert_eq!(
            second.terminator(),
            Some("OK models=2 mode=sms cached=true")
        );
        assert_eq!(first.lines[..2], second.lines[..2]);
        // Mutation invalidates the cache.
        session.execute("ASSERT node(w).");
        let third = session.execute("MODELS");
        assert_eq!(third.terminator(), Some("OK models=4 mode=sms"));
    }

    #[test]
    fn lp_models_agree_with_sms_on_normal_programs() {
        let mut session = Session::new(SessionConfig::default());
        session.execute("LOAD p(X), not q(X) -> r(X). p(a).");
        let sms = session.execute("MODELS sms");
        let lp = session.execute("MODELS lp");
        assert_eq!(
            sms.lines[..sms.lines.len() - 1],
            lp.lines[..lp.lines.len() - 1]
        );
        assert_eq!(lp.terminator(), Some("OK models=1 mode=lp"));
    }

    #[test]
    fn disjunctive_sessions_reject_query_but_enumerate_models() {
        let mut session = Session::new(SessionConfig::default());
        session.execute("LOAD node(X) -> red(X) | green(X).");
        session.execute("ASSERT node(v).");
        assert!(!session.execute("QUERY ?- red(v).").is_ok());
        assert!(!session.execute("MODELS lp").is_ok());
        assert!(session.execute("MODELS").is_ok());
    }

    #[test]
    fn errors_keep_the_session_usable() {
        let mut session = Session::new(SessionConfig::default());
        assert!(!session.execute("ASSERT p(a).").is_ok());
        assert!(!session.execute("QUERY ?- p(a).").is_ok());
        assert!(!session.execute("RETRACT-TO 0").is_ok());
        assert!(!session.execute("LOAD p(X) ->").is_ok());
        assert!(!session.execute("BOGUS").is_ok());
        assert!(session.execute("LOAD p(X) -> q(X).").is_ok());
        assert!(!session.execute("RETRACT-TO 7").is_ok());
        assert!(session.execute("ASSERT p(a).").is_ok());
        assert!(session.execute("QUERY ?- q(a).").is_ok());
    }

    #[test]
    fn diverging_asserts_roll_back_and_report() {
        let mut session = Session::new(SessionConfig {
            max_steps: 20,
            max_models: 8,
            ..SessionConfig::default()
        });
        session.execute("LOAD person(X) -> parent(X, Y), person(Y).");
        let overrun = session.execute("ASSERT person(adam).");
        assert!(!overrun.is_ok());
        assert!(overrun.lines[0].contains("rolled back"));
        assert_eq!(session.facts().len(), 0);
        assert_eq!(session.instance().unwrap().len(), 0);
    }

    #[test]
    fn non_constant_facts_are_rejected_not_panicked() {
        use ntgd_core::{atom, cst, var, Term};
        // The typed API must behave like the protocol: reject non-ground or
        // null-carrying facts with ERR and keep the session usable — in
        // particular the incremental MODELS state must never see them.
        let mut session = Session::new(SessionConfig {
            incremental_models: true,
            ..SessionConfig::default()
        });
        session.execute("LOAD node(X) -> red(X) | green(X).");
        let with_var = session.assert_facts(vec![atom("node", vec![var("X")])]);
        assert!(!with_var.is_ok());
        let with_null = session.assert_facts(vec![atom("node", vec![Term::Null(0)])]);
        assert!(!with_null.is_ok());
        assert_eq!(session.facts().len(), 0);
        let good = session.assert_facts(vec![atom("node", vec![cst("v")])]);
        assert!(good.is_ok());
        assert_eq!(
            session.execute("MODELS").terminator(),
            Some("OK models=2 mode=sms")
        );
    }

    /// Runs one scripted command stream through a session, returning every
    /// response line in order.
    fn transcript(session: &mut Session, script: &[&str]) -> Vec<String> {
        script
            .iter()
            .flat_map(|line| session.execute(line).lines)
            .collect()
    }

    #[test]
    fn forked_sessions_transcribe_identically_to_private_ones() {
        let registry = Arc::new(BaseRegistry::new());
        let shared = SessionConfig {
            base_registry: Some(Arc::clone(&registry)),
            ..SessionConfig::default()
        };
        let script = [
            "LOAD e(X, Y) -> n(X). n(X) -> labelled(X, L). e(a, b).",
            "ASSERT e(b, c).",
            "QUERY ?(X) :- n(X).",
            "QUERY ?- labelled(b, L).",
            "MODELS lp max=4",
            "RETRACT-TO 0",
            "QUERY ?(X) :- n(X).",
            "STATS sms",
        ];
        let mut private = Session::new(SessionConfig::default());
        let oracle = transcript(&mut private, &script);
        // First shared LOAD registers and forks; second forks the hit.  The
        // sms counters differ from a private session (the fork answers the
        // base prefix zero-copy), so the script pins them via STATS sms to
        // show both shared sessions agree — and everything *but* those
        // lines must equal the private oracle.
        let mut first = Session::new(shared.clone());
        let mut second = Session::new(shared.clone());
        let first_lines = transcript(&mut first, &script);
        let second_lines = transcript(&mut second, &script);
        assert_eq!(first_lines, second_lines, "fork order leaked");
        let sans_stats = |lines: &[String]| -> Vec<String> {
            lines
                .iter()
                .filter(|l| !l.starts_with("STAT "))
                .cloned()
                .collect()
        };
        assert_eq!(sans_stats(&first_lines), sans_stats(&oracle));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn forked_sessions_share_one_base_and_count_it() {
        let registry = Arc::new(BaseRegistry::new());
        let config = SessionConfig {
            base_registry: Some(Arc::clone(&registry)),
            ..SessionConfig::default()
        };
        let program = "LOAD e(X, Y) -> n(X). e(a, b).";
        let mut first = Session::new(config.clone());
        let mut second = Session::new(config.clone());
        assert!(first.execute(program).is_ok());
        assert!(second.execute(program).is_ok());
        assert!(second.execute("ASSERT e(c, d).").is_ok());
        // Both sessions share the chased base; only the second grew an
        // overlay (its private delta).
        let base_atoms = first.instance().unwrap().base_len();
        assert_eq!(base_atoms, 2);
        assert_eq!(first.instance().unwrap().overlay_len(), 0);
        assert_eq!(second.instance().unwrap().base_len(), base_atoms);
        assert_eq!(second.instance().unwrap().overlay_len(), 2);
        let stats = second.execute("STATS base");
        assert_eq!(
            stats.lines,
            vec![
                "STAT base_shared=true",
                "STAT base_atoms=2",
                "STAT base_overlay_atoms=2",
                "STAT base_registry_hits=1",
                "STAT base_registry_misses=1",
                "STAT base_rebuilds=1",
                "STAT base_forks=2",
                "OK stats",
            ]
        );
        // A different program is a different key.
        assert!(first.execute("LOAD p(X) -> q(X). p(a).").is_ok());
        assert_eq!(registry.len(), 2);
        let fresh = first.execute("STATS base");
        assert!(fresh
            .lines
            .contains(&"STAT base_registry_hits=0".to_owned()));
    }

    #[test]
    fn private_sessions_report_an_unshared_base() {
        let mut session = Session::new(SessionConfig::default());
        let empty = session.execute("STATS base");
        assert_eq!(empty.lines, vec!["STAT base_shared=false", "OK stats"]);
        session.execute("LOAD p(X) -> q(X). p(a).");
        let loaded = session.execute("STATS base");
        assert_eq!(
            loaded.lines,
            vec![
                "STAT base_shared=false",
                "STAT base_atoms=0",
                "STAT base_overlay_atoms=2",
                "OK stats",
            ]
        );
    }

    #[test]
    fn forked_retract_to_mark_zero_is_the_fork_watermark() {
        let registry = Arc::new(BaseRegistry::new());
        let config = SessionConfig {
            base_registry: Some(registry),
            ..SessionConfig::default()
        };
        let mut session = Session::new(config);
        session.execute("LOAD e(X, Y) -> n(X). e(a, b).");
        session.execute("ASSERT e(b, c). e(c, d).");
        let rolled = session.execute("RETRACT-TO 0");
        assert_eq!(rolled.terminator(), Some("OK mark=0 atoms=2"));
        assert_eq!(session.instance().unwrap().overlay_len(), 0);
        assert!(session.execute("ASSERT e(x, y).").is_ok());
        assert_eq!(
            session.execute("QUERY ?(X) :- n(X).").terminator(),
            Some("OK answers=2")
        );
    }

    /// A normal, weakly-acyclic chain whose initial chase takes more steps
    /// than the tiny budget the tests configure — so whether `LOAD`
    /// succeeds reveals whether the classification verdict lifted the
    /// budget.
    const CHAIN: &str = "a(X) -> b(X). b(X) -> c(X). c(X) -> d(X). a(s1). a(s2).";

    /// Transitive closure plus an existential-head rule over the same
    /// predicate: the GRD has a cycle through an existential edge, no
    /// guardedness notion applies — out of every implemented fragment.
    const WILD: &str = "e(X, Y), e(Y, Z) -> e(X, Z). e(X, Y) -> e(Y, W).";

    #[test]
    fn terminating_verdicts_lift_the_chase_budget() {
        // Classified (default): weakly acyclic => terminating => the chase
        // runs unbounded and the six-step initial chase beats max_steps=3.
        let mut classified = Session::new(SessionConfig {
            max_steps: 3,
            ..SessionConfig::default()
        });
        let loaded = classified.execute(&format!("LOAD {CHAIN}"));
        assert_eq!(ok_line(&loaded), "OK rules=3 facts=2 atoms=8 mark=0");
        let stats = classified.execute("STATS classes");
        assert!(stats
            .lines
            .iter()
            .any(|l| l.starts_with("STAT class_members=") && l.contains("weakly-acyclic")));
        assert!(stats.lines.contains(&"STAT class_verdict=terminating".into()));
        assert!(stats
            .lines
            .contains(&"STAT class_chase_budget=unbounded".into()));
        assert!(stats
            .lines
            .contains(&"STAT class_null_budget=auto-exact".into()));
        assert!(stats.lines.contains(&"STAT class_source=classified".into()));
        // Unclassified: the same program trips the 3-step budget.
        let mut blind = Session::new(SessionConfig {
            max_steps: 3,
            classify: false,
            ..SessionConfig::default()
        });
        assert!(!blind.execute(&format!("LOAD {CHAIN}")).is_ok());
        assert_eq!(
            blind.execute("STATS classes").lines,
            vec!["STAT classes_loaded=false", "OK stats"]
        );
        assert!(blind.execute("LOAD a(X) -> b(X). a(s1).").is_ok());
        assert_eq!(
            blind.execute("STATS classes").lines,
            vec!["STAT classes_enabled=false", "OK stats"]
        );
    }

    #[test]
    fn out_of_fragment_loads_warn_and_keep_the_budget() {
        let mut session = Session::new(SessionConfig::default());
        assert_eq!(
            session.execute("STATS classes").lines,
            vec!["STAT classes_loaded=false", "OK stats"]
        );
        let loaded = session.execute(&format!("LOAD {WILD}"));
        assert_eq!(
            loaded.lines,
            vec![
                "WARN class=out-of-fragment budget=100000",
                "OK rules=2 facts=0 atoms=0 mark=0"
            ]
        );
        let stats = session.execute("STATS classes");
        assert_eq!(
            stats.lines,
            vec![
                // Stratification (vacuous: no negation) is orthogonal to
                // decidability — membership alone buys no verdict.
                "STAT class_members=stratified",
                "STAT class_verdict=out-of-fragment",
                "STAT class_chase_budget=100000",
                "STAT class_null_budget=auto",
                "STAT class_source=classified",
                "OK stats",
            ]
        );
    }

    #[test]
    fn decidable_verdicts_keep_the_budget() {
        // Guarded but not terminating: the existential feeds its own body
        // predicate, so the chase diverges and the budget must stay on.
        let mut session = Session::new(SessionConfig {
            max_steps: 20,
            ..SessionConfig::default()
        });
        assert!(session
            .execute("LOAD person(X) -> parent(X, Y), person(Y).")
            .is_ok());
        let stats = session.execute("STATS classes");
        assert!(stats.lines.contains(&"STAT class_verdict=decidable".into()));
        assert!(stats.lines.contains(&"STAT class_chase_budget=20".into()));
        assert!(stats.lines.contains(&"STAT class_null_budget=auto".into()));
        assert!(!session.execute("ASSERT person(adam).").is_ok());
    }

    #[test]
    fn forked_sessions_inherit_the_registered_verdict() {
        let registry = Arc::new(BaseRegistry::new());
        let config = SessionConfig {
            max_steps: 3,
            base_registry: Some(Arc::clone(&registry)),
            ..SessionConfig::default()
        };
        let mut first = Session::new(config.clone());
        let mut second = Session::new(config.clone());
        // The budget-free fast path survives the registry: the 3-step cap
        // would kill this LOAD without the inherited terminating verdict.
        assert!(first.execute(&format!("LOAD {CHAIN}")).is_ok());
        assert!(second.execute(&format!("LOAD {CHAIN}")).is_ok());
        let first_stats = first.execute("STATS classes");
        let second_stats = second.execute("STATS classes");
        // Registering and forking sessions report identical provenance —
        // transcripts cannot depend on arrival order.
        assert_eq!(first_stats.lines, second_stats.lines);
        assert!(first_stats
            .lines
            .contains(&"STAT class_source=inherited".into()));
        assert!(first_stats
            .lines
            .contains(&"STAT class_verdict=terminating".into()));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn retract_to_rejects_out_of_range_marks_cleanly() {
        let mut session = Session::new(SessionConfig::default());
        session.execute("LOAD p(X) -> q(X). p(a).");
        assert_eq!(
            session.execute("RETRACT-TO 99").lines,
            vec!["ERR unknown mark 99 (have 0..=0)"]
        );
        session.execute("ASSERT p(b).");
        assert_eq!(
            session.execute(&format!("RETRACT-TO {}", usize::MAX)).lines,
            vec![format!("ERR unknown mark {} (have 0..=1)", usize::MAX)]
        );
        // The session is still live and the marks intact.
        assert_eq!(session.marks(), 2);
        assert!(session.execute("RETRACT-TO 0").is_ok());
    }

    #[test]
    fn stats_report_session_and_pool_state() {
        let mut session = Session::new(SessionConfig::default());
        session.execute("LOAD p(X) -> q(X). p(a).");
        let stats = session.execute("STATS");
        assert!(stats.is_ok());
        assert!(stats.lines.iter().any(|l| l == "STAT loaded=true"));
        assert!(stats.lines.iter().any(|l| l.starts_with("STAT atoms=2")));
        assert!(stats.lines.iter().any(|l| l.starts_with("STAT threads=")));
        assert!(stats
            .lines
            .iter()
            .any(|l| l.starts_with("STAT pool_workers=")));
    }
}
