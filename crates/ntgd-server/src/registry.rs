//! The process-wide shared-base registry: one chased, frozen base per
//! distinct `LOAD` payload, forked copy-on-write into every session that
//! loads the same program.
//!
//! The first `LOAD` of a program parses it, compiles the rule plans, chases
//! the initial facts to a fixpoint and grounds the `MODELS sms` closure —
//! then **freezes** all of that behind `Arc`s as a [`BaseEntry`] and
//! registers it under the program's [`BaseKey`].  Every later `LOAD` of the
//! same payload (the registering session included — forking is symmetric,
//! so first and later sessions produce bit-identical transcripts) *forks*
//! the entry in O(1): the session shares the chased arena, the compiled
//! plans and the frozen grounding, and chases only its private fact delta
//! on a mutable overlay (see `ntgd_core::Interpretation`,
//! `ntgd_chase::ChaseBase` and `ntgd_sms::SmsBaseSnapshot`).
//!
//! Entries are keyed by the **canonical program text** (the trimmed `LOAD`
//! payload, rules and initial facts alike) plus the step policy they were
//! built under — the chase step budget and the classification switch
//! (classified sessions may chase terminating programs unbounded, so they
//! never share a base with blind-budget sessions).  Textually different
//! spellings of the same program miss the cache — a conservative identity
//! that can never alias two distinct programs.  Registration is first-wins: when two sessions race
//! to build the same base, the second registration is discarded and the
//! loser forks the winner's entry, so every session of a process shares one
//! arena per program.
//!
//! Per-entry counters (`hits`, `misses`, `rebuilds`, `forks`) are a pure
//! function of the `LOAD` history for that key — never of thread count,
//! pool mode or machine — so scripted transcripts can assert the `STATS
//! base` lines verbatim.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ntgd_chase::ChaseBase;
use ntgd_classes::{ClassReport, ClassVerdict};
use ntgd_core::{Atom, DisjunctiveProgram, Program};
use ntgd_sms::SmsBaseSnapshot;

/// The decidability classification of a registered program: the full
/// landscape report plus the coarse verdict derived from it.  Computed once
/// when the base is built; every fork inherits it without reclassifying
/// (`STATS classes` reports the provenance as `class_source=inherited`).
#[derive(Clone, Copy, Debug)]
pub struct ProgramClass {
    /// Membership in every implemented class.
    pub report: ClassReport,
    /// The verdict the memberships support (terminating / decidable /
    /// out-of-fragment).
    pub verdict: ClassVerdict,
}

impl ProgramClass {
    /// Classifies a normal program (for disjunctive payloads the session
    /// classifies the positive-conjunctive transform, in line with how the
    /// chase and the `Auto` domain probe treat them).
    pub fn of(program: &Program) -> ProgramClass {
        let report = ntgd_classes::classify(program);
        ProgramClass {
            report,
            verdict: report.verdict(),
        }
    }
}

/// The canonical identity of a shared base: the exact (trimmed) `LOAD`
/// payload plus the step policy it was chased under — the configured step
/// budget *and* the classification switch, since a classified session may
/// chase a provably terminating program unbounded while a blind session
/// with the same `max_steps` must stay budgeted.  Keeping the switch in
/// the key means the two can never share a base built under the other's
/// policy, so `LOAD` outcomes never depend on registry arrival order.  Two
/// sessions share a base iff their keys are equal — the full text is the
/// key, so distinct programs can never alias.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BaseKey {
    text: String,
    max_steps: usize,
    classify: bool,
}

impl BaseKey {
    /// Canonicalises a `LOAD` payload into a registry key.
    pub fn new(text: &str, max_steps: usize, classify: bool) -> BaseKey {
        BaseKey {
            text: text.trim().to_owned(),
            max_steps,
            classify,
        }
    }
}

/// A point-in-time copy of one entry's counters (see [`BaseEntry::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaseStats {
    /// `LOAD`s answered by forking this entry without building anything.
    pub hits: u64,
    /// `LOAD`s that found no entry for the key and had to build one.
    pub misses: u64,
    /// Bases actually chased and frozen for the key (equals `misses`
    /// except when concurrent sessions race and the losers' builds are
    /// discarded first-wins).
    pub rebuilds: u64,
    /// Sessions forked from this entry (the registering session forks too,
    /// so `forks = hits + 1` once the first `LOAD` completes).
    pub forks: u64,
}

/// One frozen base: everything a session needs to answer the protocol over
/// a program without re-parsing, re-compiling, re-chasing or re-grounding
/// it.  Immutable after registration; shared via `Arc`.
pub struct BaseEntry {
    /// The parsed rules (possibly disjunctive), shared with every fork.
    pub(crate) disjunctive: Arc<DisjunctiveProgram>,
    /// The rules as a normal program, when no rule uses `|`.
    pub(crate) normal: Option<Program>,
    /// The frozen chase: arena at fixpoint, plans, witness memo (normal
    /// programs only).
    pub(crate) chase: Option<Arc<ChaseBase>>,
    /// The frozen `MODELS sms` grounding of the initial facts, when the
    /// grounding succeeded and incremental `MODELS` is enabled.
    pub(crate) sms: Option<Arc<SmsBaseSnapshot>>,
    /// The deduplicated initial facts, in assertion order.
    pub(crate) facts: Vec<Atom>,
    /// The program's classification, computed once by the registering
    /// session (`None` when it classified with `NTGD_CLASSIFY=0`); forks
    /// inherit the verdict instead of reclassifying.
    pub(crate) class: Option<ProgramClass>,
    hits: AtomicU64,
    misses: AtomicU64,
    rebuilds: AtomicU64,
    forks: AtomicU64,
}

impl BaseEntry {
    /// Wraps a frozen base (see `Session::load` for how one is built).
    pub(crate) fn new(
        disjunctive: Arc<DisjunctiveProgram>,
        normal: Option<Program>,
        chase: Option<Arc<ChaseBase>>,
        sms: Option<Arc<SmsBaseSnapshot>>,
        facts: Vec<Atom>,
        class: Option<ProgramClass>,
    ) -> BaseEntry {
        BaseEntry {
            disjunctive,
            normal,
            chase,
            sms,
            facts,
            class,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            forks: AtomicU64::new(0),
        }
    }

    /// Atoms in the frozen base (the chased arena, or the fact count when
    /// the program is disjunctive and has no chase).
    pub fn base_atoms(&self) -> usize {
        self.chase
            .as_ref()
            .map(|chase| chase.instance().len())
            .unwrap_or(self.facts.len())
    }

    /// This entry's counters, copied at the call.
    pub fn stats(&self) -> BaseStats {
        BaseStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            forks: self.forks.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn record_fork(&self) {
        self.forks.fetch_add(1, Ordering::Relaxed);
    }
}

/// The registry itself: a mutex-guarded map from [`BaseKey`] to
/// [`BaseEntry`].  Create one per process (the `ntgd-serve` binary does,
/// unless `NTGD_SHARED_BASE=0`) and share it via
/// [`crate::SessionConfig::base_registry`]; the `Arc` in the config is what
/// makes every per-connection clone point at the same registry.
#[derive(Default)]
pub struct BaseRegistry {
    entries: Mutex<HashMap<BaseKey, Arc<BaseEntry>>>,
}

impl BaseRegistry {
    /// An empty registry.
    pub fn new() -> BaseRegistry {
        BaseRegistry::default()
    }

    /// The process default: a fresh shared registry, or `None` when the
    /// `NTGD_SHARED_BASE=0` escape hatch disables base sharing (every
    /// session then builds privately, the pre-registry behaviour).
    pub fn from_env() -> Option<Arc<BaseRegistry>> {
        std::env::var("NTGD_SHARED_BASE")
            .map_or(true, |value| value != "0")
            .then(|| Arc::new(BaseRegistry::new()))
    }

    /// Looks a key up, recording a hit when found.
    pub fn lookup(&self, key: &BaseKey) -> Option<Arc<BaseEntry>> {
        let entries = self.entries.lock().expect("base registry poisoned");
        entries.get(key).map(|entry| {
            entry.hits.fetch_add(1, Ordering::Relaxed);
            Arc::clone(entry)
        })
    }

    /// Registers a freshly built base, first-wins: when the key is already
    /// present (a concurrent session built the same base), the new entry is
    /// discarded and the existing one returned, so every session forks the
    /// same arena.  Either way the surviving entry records the miss and the
    /// build that led here.
    pub fn register(&self, key: BaseKey, entry: Arc<BaseEntry>) -> Arc<BaseEntry> {
        let mut entries = self.entries.lock().expect("base registry poisoned");
        let winner = Arc::clone(entries.entry(key).or_insert(entry));
        winner.misses.fetch_add(1, Ordering::Relaxed);
        winner.rebuilds.fetch_add(1, Ordering::Relaxed);
        winner
    }

    /// The counters of a key's entry, if registered.
    pub fn stats(&self, key: &BaseKey) -> Option<BaseStats> {
        let entries = self.entries.lock().expect("base registry poisoned");
        entries.get(key).map(|entry| entry.stats())
    }

    /// Number of registered bases.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("base registry poisoned").len()
    }

    /// Whether no base has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for BaseRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BaseRegistry")
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_entry() -> Arc<BaseEntry> {
        Arc::new(BaseEntry::new(
            Arc::new(DisjunctiveProgram::default()),
            None,
            None,
            None,
            Vec::new(),
            None,
        ))
    }

    #[test]
    fn keys_canonicalise_whitespace_but_not_content() {
        assert_eq!(
            BaseKey::new("  p(X) -> q(X).  ", 10, true),
            BaseKey::new("p(X) -> q(X).", 10, true)
        );
        assert_ne!(
            BaseKey::new("p(X) -> q(X).", 10, true),
            BaseKey::new("p(X) -> q(X).", 11, true)
        );
        assert_ne!(
            BaseKey::new("p(X) -> q(X).", 10, true),
            BaseKey::new("p(X) -> r(X).", 10, true)
        );
        // Classified and blind sessions run different step policies, so
        // they must never share a base.
        assert_ne!(
            BaseKey::new("p(X) -> q(X).", 10, true),
            BaseKey::new("p(X) -> q(X).", 10, false)
        );
    }

    #[test]
    fn register_is_first_wins_and_counts() {
        let registry = BaseRegistry::new();
        let key = BaseKey::new("p(a).", 10, true);
        assert!(registry.lookup(&key).is_none());
        let first = registry.register(key.clone(), empty_entry());
        // A racing second build is discarded; its miss lands on the winner.
        let second = registry.register(key.clone(), empty_entry());
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(registry.len(), 1);
        let found = registry.lookup(&key).expect("registered");
        assert!(Arc::ptr_eq(&first, &found));
        found.record_fork();
        let stats = registry.stats(&key).expect("registered");
        assert_eq!(
            stats,
            BaseStats {
                hits: 1,
                misses: 2,
                rebuilds: 2,
                forks: 1
            }
        );
    }
}
