//! Transports: one-session-per-connection TCP serving and a stdin REPL.
//!
//! Both are thin line pumps around [`Session::execute`]; the protocol logic
//! lives entirely in [`crate::session`] so tests and embedders can drive a
//! session without any I/O.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;

use crate::session::{Session, SessionConfig};

/// The banner sent when a session opens (protocol version 1).
pub const BANNER: &str = "READY ntgd-serve protocol=1";

/// Pumps protocol lines from `reader` through one session, writing framed
/// responses (and the opening [`BANNER`]) to `writer`, until end-of-input or
/// `QUIT`.
pub fn handle_session<R, W>(mut session: Session, reader: R, writer: &mut W) -> io::Result<()>
where
    R: BufRead,
    W: Write,
{
    writeln!(writer, "{BANNER}")?;
    writer.flush()?;
    for line in reader.lines() {
        let response = session.execute(&line?);
        for out in &response.lines {
            writeln!(writer, "{out}")?;
        }
        if !response.lines.is_empty() {
            writer.flush()?;
        }
        if response.close {
            break;
        }
    }
    Ok(())
}

/// Serves sessions over TCP: accepts connections forever, one thread and one
/// independent [`Session`] per connection.  All sessions share the
/// process-wide persistent worker pool of `ntgd_core::parallel` — and, when
/// `config.base_registry` is set, one shared-base registry: the per-connection
/// config clone clones only the `Arc`, so every session forks the same frozen
/// bases (see the crate documentation's *shared-base caching contract*).
pub fn serve_tcp(listener: TcpListener, config: SessionConfig) -> io::Result<()> {
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(stream) => stream,
            // Transient accept errors (e.g. a connection reset while queued)
            // must not take the server down.
            Err(_) => continue,
        };
        let config = config.clone();
        // Responses are many small writes; without nodelay, Nagle holding
        // them back for the peer's delayed ACK costs ~40ms per request on
        // otherwise-idle connections.  The flush-per-response batching in
        // handle_session (via the BufWriter below) keeps the packet count
        // low regardless.
        let _ = stream.set_nodelay(true);
        // A failed spawn (thread exhaustion under load) drops this one
        // connection, like a failed accept — it must never take down the
        // sessions already being served.
        let _ = std::thread::Builder::new()
            .name("ntgd-session".to_owned())
            .spawn(move || {
                let session = Session::new(config);
                let reader = BufReader::new(match stream.try_clone() {
                    Ok(read_half) => read_half,
                    Err(_) => return,
                });
                let mut writer = io::BufWriter::new(stream);
                // A dropped client mid-response is that session's problem
                // only.
                let _ = handle_session(session, reader, &mut writer);
            });
    }
    Ok(())
}

/// Serves a single session on stdin/stdout (the `--repl` mode of
/// `ntgd-serve`, and what the CI smoke test scripts).
pub fn serve_repl(config: SessionConfig) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut writer = stdout.lock();
    handle_session(Session::new(config), stdin.lock(), &mut writer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_session_frames_banner_responses_and_quit() {
        let script = "PING\n% a comment produces nothing\nQUERY ?- p(a).\nQUIT\nPING\n";
        let mut out: Vec<u8> = Vec::new();
        handle_session(
            Session::new(SessionConfig::default()),
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                BANNER,
                "OK pong",
                "ERR no program loaded",
                "OK bye" // the trailing PING is never read: QUIT closed the session
            ]
        );
    }
}
