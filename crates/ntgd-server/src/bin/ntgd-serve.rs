//! `ntgd-serve`: the persistent reasoning service.
//!
//! ```text
//! ntgd-serve [--repl]                          # one session on stdin/stdout
//! ntgd-serve --listen 127.0.0.1:7171           # one session per TCP connection
//!            [--max-steps N] [--max-models N]  # session limits
//!            [--transport evented|threaded]    # connection layer (default:
//!                                              #   NTGD_TRANSPORT, then evented)
//!            [--max-sessions N]                # admission cap (default:
//!                                              #   NTGD_MAX_SESSIONS, then none)
//!            [--idle-timeout MS]               # reap silent connections
//!                                              #   (default: NTGD_IDLE_TIMEOUT,
//!                                              #   then never; evented only)
//! ```
//!
//! In TCP mode the bound address is announced on stdout as
//! `LISTENING <addr>` (bind to port 0 to let the OS pick), then the process
//! serves forever.  See the `ntgd_server` crate documentation for the
//! protocol and `docs/OPERATIONS.md` for the connection layer.

use std::net::TcpListener;
use std::process::ExitCode;

use ntgd_server::{serve_repl, serve_tcp, BaseRegistry, SessionConfig, Transport};

fn usage() -> &'static str {
    "usage: ntgd-serve [--repl | --listen <addr>] [--max-steps N] [--max-models N] \
     [--transport evented|threaded] [--max-sessions N] [--idle-timeout MS]"
}

fn main() -> ExitCode {
    let mut listen: Option<String> = None;
    let mut config = SessionConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--repl" => listen = None,
            "--listen" => match args.next() {
                Some(addr) => listen = Some(addr),
                None => {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--max-steps" | "--max-models" | "--max-sessions" | "--idle-timeout" => {
                let Some(value) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("{arg} needs a number\n{}", usage());
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--max-steps" => config.max_steps = value,
                    "--max-models" => config.max_models = value,
                    "--max-sessions" => config.max_sessions = Some(value).filter(|&cap| cap > 0),
                    _ => {
                        config.idle_timeout = (value > 0)
                            .then(|| std::time::Duration::from_millis(value as u64))
                    }
                }
            }
            "--transport" => {
                let Some(transport) = args.next().as_deref().and_then(Transport::parse) else {
                    eprintln!("--transport needs 'evented' or 'threaded'\n{}", usage());
                    return ExitCode::FAILURE;
                };
                config.transport = transport;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    // One shared-base registry per process: sessions that LOAD the same
    // program fork one frozen chased base instead of each re-chasing it
    // (disable with NTGD_SHARED_BASE=0; see the ntgd_server crate docs).
    config.base_registry = BaseRegistry::from_env();
    let outcome = match listen {
        None => serve_repl(config),
        Some(addr) => match TcpListener::bind(&addr) {
            Ok(listener) => {
                match listener.local_addr() {
                    Ok(local) => println!("LISTENING {local}"),
                    Err(_) => println!("LISTENING {addr}"),
                }
                serve_tcp(listener, config)
            }
            Err(error) => {
                eprintln!("cannot listen on {addr}: {error}");
                return ExitCode::FAILURE;
            }
        },
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("ntgd-serve: {error}");
            ExitCode::FAILURE
        }
    }
}
