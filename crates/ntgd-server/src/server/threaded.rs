//! The historical one-thread-per-connection transport, kept selectable
//! (`NTGD_TRANSPORT=threaded`) as the differential baseline for the evented
//! loop.  Unlike its pre-handle incarnation it tracks live sessions, so
//! [`ServeHandle::shutdown`](crate::server::ServeHandle::shutdown) can close
//! their sockets and join their threads, and it shares the accept backoff
//! and admission control of `server::mod`.

use std::io::{self, BufReader};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::server::{admit, handle_session, next_conn, AcceptBackoff, ConnStats};
use crate::session::{Session, SessionConfig};

/// Spawns the accept thread; per-connection threads are its children.
pub(super) fn spawn(
    listener: TcpListener,
    config: SessionConfig,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ConnStats>,
) -> io::Result<JoinHandle<io::Result<()>>> {
    std::thread::Builder::new()
        .name("ntgd-accept".to_owned())
        .spawn(move || accept_loop(listener, config, &shutdown, &stats))
}

fn accept_loop(
    listener: TcpListener,
    config: SessionConfig,
    shutdown: &AtomicBool,
    stats: &Arc<ConnStats>,
) -> io::Result<()> {
    let mut backoff = AcceptBackoff::new();
    // Live session threads with a socket clone each, so shutdown can
    // interrupt their blocking reads; finished entries are reaped on every
    // accept to keep the list proportional to *live* sessions.
    let mut live: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
    let result = loop {
        match next_conn(&listener, shutdown, &mut backoff) {
            Ok(None) => break Ok(()),
            Err(err) => break Err(err),
            Ok(Some(stream)) => {
                live.retain(|(handle, _)| !handle.is_finished());
                if !admit(&stream, stats, &config) {
                    continue;
                }
                // Responses are many small writes; without nodelay, Nagle
                // holding them back for the peer's delayed ACK costs ~40ms
                // per request on otherwise-idle connections.  The
                // flush-per-response batching in handle_session (via the
                // BufWriter below) keeps the packet count low regardless.
                let _ = stream.set_nodelay(true);
                let (read_half, shutdown_half) = match (stream.try_clone(), stream.try_clone()) {
                    (Ok(read_half), Ok(shutdown_half)) => (read_half, shutdown_half),
                    _ => {
                        stats.disconnected();
                        continue;
                    }
                };
                let config = config.clone();
                let session_stats = stats.clone();
                // A failed spawn (thread exhaustion under load) drops this
                // one connection, like a failed accept — it must never take
                // down the sessions already being served.
                let spawned = std::thread::Builder::new()
                    .name("ntgd-session".to_owned())
                    .spawn(move || {
                        let session = Session::new(config);
                        let reader = BufReader::new(read_half);
                        let mut writer = io::BufWriter::new(stream);
                        // A dropped client mid-response is that session's
                        // problem only.
                        let _ = handle_session(session, reader, &mut writer);
                        // Shut the socket down explicitly: the accept loop
                        // still holds shutdown_half, so dropping our clones
                        // alone would leave the client waiting for an EOF
                        // that only arrives once this entry is reaped.
                        let _ = io::Write::flush(&mut writer);
                        let _ = writer.get_ref().shutdown(Shutdown::Both);
                        session_stats.disconnected();
                    });
                match spawned {
                    Ok(handle) => live.push((handle, shutdown_half)),
                    Err(_) => stats.disconnected(),
                }
            }
        }
    };
    // Shutdown (or a fatal accept error): unblock every session's read and
    // reap its thread.
    for (handle, stream) in live {
        let _ = stream.shutdown(Shutdown::Both);
        let _ = handle.join();
    }
    result
}
