//! One evented connection: a non-blocking socket, a read-accumulation
//! buffer with line framing, a pending-write buffer, and the [`Session`]
//! state machine they feed.
//!
//! [`Conn`] is the unit the event loop schedules: the poller reports the
//! socket readable → [`Conn::fill`] accumulates bytes; the scheduler picks
//! runnable connections → [`Conn::run_ready`] executes every complete
//! buffered line through the session (per-connection serial — the batch
//! runs cross-connection parallel on the pool); the loop then drains the
//! write buffer with [`Conn::flush`], arming write interest only while
//! bytes are pending.  Framing mirrors the threaded transport's
//! `BufRead::lines` exactly — trailing `\r` stripped from complete lines, a
//! final unterminated line executed on EOF (its `\r` kept), invalid UTF-8
//! closing the connection — so per-session transcripts are byte-identical
//! across transports.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::server::BANNER;
use crate::session::Session;

/// Stop [`Conn::fill`] once this many unconsumed bytes are buffered; the
/// level-triggered poller re-reports the socket readable, so a pipelining
/// flood gets natural backpressure instead of an unbounded buffer.
const READ_SOFT_CAP: usize = 64 * 1024;

/// Reclaim consumed prefix bytes once they pass this size.
const COMPACT_AT: usize = 4 * 1024;

/// A byte accumulator with line framing, mirroring `BufRead::lines`:
/// [`LineBuffer::next_line`] yields complete `\n`-terminated lines with the
/// terminator (and one preceding `\r`, if any) stripped;
/// [`LineBuffer::take_partial`] yields the final unterminated line at EOF
/// verbatim (no `\r` stripping — `lines` only strips `\r` before a `\n`).
/// Invalid UTF-8 surfaces as an error, like `lines` again.
#[derive(Default)]
pub struct LineBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl LineBuffer {
    /// An empty buffer.
    pub fn new() -> LineBuffer {
        LineBuffer::default()
    }

    /// Appends received bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether a complete line is buffered.
    pub fn has_line(&self) -> bool {
        self.buf[self.start..].contains(&b'\n')
    }

    /// The next complete line, if one is buffered.
    pub fn next_line(&mut self) -> Option<io::Result<String>> {
        let newline = self.buf[self.start..].iter().position(|&b| b == b'\n')?;
        let end = self.start + newline;
        let mut line = &self.buf[self.start..end];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let parsed = String::from_utf8(line.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "stream not valid UTF-8"));
        self.start = end + 1;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Some(parsed)
    }

    /// The final unterminated line (called at EOF); empties the buffer.
    pub fn take_partial(&mut self) -> Option<io::Result<String>> {
        if self.start >= self.buf.len() {
            return None;
        }
        let parsed = String::from_utf8(self.buf[self.start..].to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "stream not valid UTF-8"));
        self.buf.clear();
        self.start = 0;
        Some(parsed)
    }
}

/// One live evented connection: the non-blocking socket, its framing and
/// write buffers, and the owned [`Session`].  `Send` by construction — the
/// event loop migrates ready connections onto pool workers for execution
/// (`tests/event_loop_e2e.rs` carries the compile-time audit).
pub struct Conn {
    stream: TcpStream,
    session: Session,
    read_buf: LineBuffer,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// The peer half-closed its send side (EOF observed).
    eof: bool,
    /// The connection died of an I/O or framing error; drop it without
    /// further protocol activity (the threaded path behaves identically:
    /// a read error ends `handle_session`).
    dead: bool,
    /// The session ended (`QUIT`, or EOF fully processed); close once the
    /// write buffer drains.  Further buffered requests are discarded, like
    /// the threaded path never reading past `QUIT`.
    closing: bool,
    /// Whether the poller currently has write interest armed (event-loop
    /// bookkeeping, see `set_write_armed`).
    write_armed: bool,
    /// When the peer last sent bytes (admission time counts); the idle
    /// reaper compares this against [`SessionConfig::idle_timeout`]
    /// (`SessionConfig` in `crate::session`).
    last_activity: Instant,
}

impl Conn {
    /// Wraps an accepted socket: switches it non-blocking, disables Nagle
    /// (small-response latency, like the threaded path), and queues the
    /// [`BANNER`].
    pub fn new(stream: TcpStream, session: Session) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let mut conn = Conn {
            stream,
            session,
            read_buf: LineBuffer::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            eof: false,
            dead: false,
            closing: false,
            write_armed: false,
            last_activity: Instant::now(),
        };
        conn.queue_line(BANNER);
        Ok(conn)
    }

    /// The underlying socket (for poller registration and shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    fn queue_line(&mut self, line: &str) {
        self.write_buf.extend_from_slice(line.as_bytes());
        self.write_buf.push(b'\n');
    }

    /// Drains the socket into the read buffer (until `WouldBlock`, EOF, the
    /// soft cap, or an error).
    pub fn fill(&mut self) {
        let mut chunk = [0u8; 4096];
        while !self.eof && !self.dead && self.read_buf.pending() < READ_SOFT_CAP {
            match self.stream.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    self.read_buf.push_bytes(&chunk[..n]);
                    self.last_activity = Instant::now();
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => self.dead = true,
            }
        }
    }

    /// How long the peer has been silent as of `now` (zero if `now` is
    /// before the last activity — the reaper passes one timestamp for a
    /// whole slab scan).
    pub fn idle_for(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.last_activity)
    }

    /// Whether the scheduler should run this connection: it has a complete
    /// request buffered (or EOF to process) and is neither closed nor dead.
    pub fn runnable(&self) -> bool {
        !self.dead && !self.closing && (self.read_buf.has_line() || self.eof)
    }

    /// Executes every complete buffered request through the session,
    /// appending responses to the write buffer; at EOF also executes the
    /// final unterminated line (exactly what `BufRead::lines` feeds the
    /// threaded path).  Called with the connection pinned to one executor —
    /// per-session serial, cross-session parallel.
    pub fn run_ready(&mut self) {
        while !self.closing && !self.dead {
            match self.read_buf.next_line() {
                Some(Ok(line)) => self.execute_line(&line),
                Some(Err(_)) => self.dead = true,
                None => break,
            }
        }
        if self.eof && !self.closing && !self.dead {
            match self.read_buf.take_partial() {
                Some(Ok(line)) => self.execute_line(&line),
                Some(Err(_)) => self.dead = true,
                None => {}
            }
            self.closing = true;
        }
    }

    fn execute_line(&mut self, line: &str) {
        let response = self.session.execute(line);
        for out in &response.lines {
            self.queue_line(out);
        }
        if response.close {
            self.closing = true;
        }
    }

    /// Writes pending response bytes (until `WouldBlock`, done, or error).
    pub fn flush(&mut self) {
        while self.write_pos < self.write_buf.len() && !self.dead {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => self.dead = true,
                Ok(n) => self.write_pos += n,
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => self.dead = true,
            }
        }
        if self.write_pos >= self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
    }

    /// Whether response bytes are pending (the loop arms write interest
    /// exactly while this holds).
    pub fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Whether the connection can be dropped: dead, or ended with its
    /// responses fully flushed.
    pub fn finished(&self) -> bool {
        self.dead || (self.closing && !self.wants_write())
    }

    /// See [`Conn::set_write_armed`].
    pub fn write_armed(&self) -> bool {
        self.write_armed
    }

    /// Records whether the poller has write interest armed for this socket
    /// (so the loop issues modifications only on transitions).
    pub fn set_write_armed(&mut self, armed: bool) {
        self.write_armed = armed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(buffer: &mut LineBuffer) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(line) = buffer.next_line() {
            out.push(line.expect("valid UTF-8"));
        }
        out
    }

    #[test]
    fn partial_lines_accumulate_until_the_newline_arrives() {
        let mut buffer = LineBuffer::new();
        buffer.push_bytes(b"PI");
        assert!(!buffer.has_line());
        assert!(buffer.next_line().is_none());
        buffer.push_bytes(b"NG\nQU");
        assert_eq!(lines(&mut buffer), vec!["PING"]);
        assert_eq!(buffer.pending(), 2);
        buffer.push_bytes(b"IT\n");
        assert_eq!(lines(&mut buffer), vec!["QUIT"]);
        assert_eq!(buffer.pending(), 0);
    }

    #[test]
    fn pipelined_requests_split_into_individual_lines() {
        let mut buffer = LineBuffer::new();
        buffer.push_bytes(b"PING\nHELP\nSTATS sms\nQUIT\n");
        assert_eq!(
            lines(&mut buffer),
            vec!["PING", "HELP", "STATS sms", "QUIT"]
        );
    }

    #[test]
    fn crlf_is_stripped_from_complete_lines_only() {
        let mut buffer = LineBuffer::new();
        buffer.push_bytes(b"PING\r\nPONG\r");
        assert_eq!(lines(&mut buffer), vec!["PING"]);
        // The final unterminated line keeps its carriage return — exactly
        // what BufRead::lines yields at EOF.
        let partial = buffer.take_partial().expect("partial present");
        assert_eq!(partial.unwrap(), "PONG\r");
        assert!(buffer.take_partial().is_none());
    }

    #[test]
    fn invalid_utf8_is_an_error_like_bufread_lines() {
        let mut buffer = LineBuffer::new();
        buffer.push_bytes(&[0xff, 0xfe, b'\n']);
        let result = buffer.next_line().expect("line is framed");
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn long_consumed_prefixes_are_compacted() {
        let mut buffer = LineBuffer::new();
        let line = vec![b'a'; COMPACT_AT];
        buffer.push_bytes(&line);
        buffer.push_bytes(b"\ntail");
        assert_eq!(buffer.next_line().unwrap().unwrap().len(), COMPACT_AT);
        assert_eq!(buffer.pending(), 4);
        assert_eq!(buffer.buf.len(), 4, "consumed prefix reclaimed");
    }
}
