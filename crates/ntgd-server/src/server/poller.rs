//! Readiness polling for the event loop: a thin `epoll` shim on Linux and a
//! portable `peek`-scan fallback elsewhere (or under `NTGD_POLLER=scan`,
//! which is how CI exercises the fallback on Linux).
//!
//! The shim declares the four `epoll` entry points `extern "C"` against the
//! C library std already links — the repo's no-new-dependencies rule — and
//! registers sockets **level-triggered**: read interest always, write
//! interest only while a connection has pending response bytes.  Tokens are
//! caller-chosen `usize`s carried in the kernel's event data.

use std::io::{self, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

#[cfg(target_os = "linux")]
use std::os::fd::AsRawFd;

/// One readiness report.
#[derive(Clone, Copy, Debug)]
pub(super) struct Event {
    /// The token the socket was registered under.
    pub token: usize,
    /// Reading won't block (data, EOF, or a pending error to surface).
    pub readable: bool,
    /// Writing may make progress.
    pub writable: bool,
}

/// A readiness poller; which implementation backs it is decided once at
/// construction ([`Poller::new`]).
pub(super) enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    Scan(ScanPoller),
}

impl Poller {
    /// An `epoll` poller on Linux (unless `NTGD_POLLER=scan`), the scan
    /// fallback otherwise.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let forced_scan = std::env::var("NTGD_POLLER").is_ok_and(|value| value == "scan");
            if !forced_scan {
                return EpollPoller::new().map(Poller::Epoll);
            }
        }
        Ok(Poller::Scan(ScanPoller::new()))
    }

    /// Starts watching `stream` under `token` (read interest always, write
    /// interest per `want_write`).
    pub fn register(
        &mut self,
        stream: &TcpStream,
        token: usize,
        want_write: bool,
    ) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(poller) => poller.register(stream, token, want_write),
            Poller::Scan(poller) => poller.register(stream, token, want_write),
        }
    }

    /// Arms or disarms write interest for an already-registered socket.
    pub fn set_write_interest(
        &mut self,
        stream: &TcpStream,
        token: usize,
        want_write: bool,
    ) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(poller) => poller.set_write_interest(stream, token, want_write),
            Poller::Scan(poller) => poller.set_write_interest(token, want_write),
        }
    }

    /// Stops watching a socket.
    pub fn deregister(&mut self, stream: &TcpStream, token: usize) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(poller) => poller.deregister(stream),
            Poller::Scan(poller) => poller.deregister(token),
        }
    }

    /// Collects readiness into `out` (cleared first), waiting up to
    /// `timeout`.  A signal-interrupted wait returns empty rather than
    /// erroring.
    pub fn wait(&mut self, timeout: Duration, out: &mut Vec<Event>) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(poller) => poller.wait(timeout, out),
            Poller::Scan(poller) => poller.wait(timeout, out),
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! Raw `epoll` bindings against the already-linked C library.

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// The kernel's `struct epoll_event` (packed on x86-64 only, matching
    /// the kernel ABI).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

/// The Linux implementation: one `epoll` instance per poller thread.
#[cfg(target_os = "linux")]
pub(super) struct EpollPoller {
    epfd: i32,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new() -> io::Result<EpollPoller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollPoller {
            epfd,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn interest(want_write: bool) -> u32 {
        let mut events = sys::EPOLLIN | sys::EPOLLRDHUP;
        if want_write {
            events |= sys::EPOLLOUT;
        }
        events
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: usize) -> io::Result<()> {
        let mut event = sys::EpollEvent {
            events,
            data: token as u64,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn register(&mut self, stream: &TcpStream, token: usize, want_write: bool) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_ADD,
            stream.as_raw_fd(),
            Self::interest(want_write),
            token,
        )
    }

    fn set_write_interest(
        &mut self,
        stream: &TcpStream,
        token: usize,
        want_write: bool,
    ) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_MOD,
            stream.as_raw_fd(),
            Self::interest(want_write),
            token,
        )
    }

    fn deregister(&mut self, stream: &TcpStream) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, stream.as_raw_fd(), 0, 0)
    }

    fn wait(&mut self, timeout: Duration, out: &mut Vec<Event>) -> io::Result<()> {
        out.clear();
        let millis = timeout.as_millis().min(i32::MAX as u128) as i32;
        let count = unsafe {
            sys::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                millis,
            )
        };
        if count < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for slot in &self.buf[..count as usize] {
            let event = *slot; // copy out of the (possibly packed) buffer
            let bits = event.events;
            out.push(Event {
                token: event.data as usize,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLERR | sys::EPOLLHUP)
                    != 0,
                writable: bits & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
        }
    }
}

/// The portable fallback: a 1ms-cadence scan over registered sockets using
/// `TcpStream::peek` for read readiness; write readiness is assumed
/// whenever write interest is armed (a blocked `write` then simply returns
/// `WouldBlock` again — correct, just not as idle-efficient as `epoll`).
pub(super) struct ScanPoller {
    entries: Vec<ScanEntry>,
}

struct ScanEntry {
    token: usize,
    stream: TcpStream,
    want_write: bool,
}

impl ScanPoller {
    fn new() -> ScanPoller {
        ScanPoller {
            entries: Vec::new(),
        }
    }

    fn register(&mut self, stream: &TcpStream, token: usize, want_write: bool) -> io::Result<()> {
        self.entries.push(ScanEntry {
            token,
            stream: stream.try_clone()?,
            want_write,
        });
        Ok(())
    }

    fn set_write_interest(&mut self, token: usize, want_write: bool) -> io::Result<()> {
        for entry in &mut self.entries {
            if entry.token == token {
                entry.want_write = want_write;
                return Ok(());
            }
        }
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            "token not registered",
        ))
    }

    fn deregister(&mut self, token: usize) -> io::Result<()> {
        self.entries.retain(|entry| entry.token != token);
        Ok(())
    }

    fn wait(&mut self, timeout: Duration, out: &mut Vec<Event>) -> io::Result<()> {
        out.clear();
        let deadline = Instant::now() + timeout;
        loop {
            let mut probe = [0u8; 1];
            for entry in &self.entries {
                let readable = match entry.stream.peek(&mut probe) {
                    Ok(_) => true, // data (Ok(1)) or EOF (Ok(0))
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => false,
                    // Surface the error through the read path.
                    Err(_) => true,
                };
                if readable || entry.want_write {
                    out.push(Event {
                        token: entry.token,
                        readable,
                        writable: entry.want_write,
                    });
                }
            }
            if !out.is_empty() || Instant::now() >= deadline {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Drains a wake-up socket (readable side of the loopback waker pair).
pub(super) fn drain(stream: &TcpStream) {
    let mut sink = [0u8; 64];
    let mut reader = stream;
    while let Ok(n) = reader.read(&mut sink) {
        if n == 0 {
            break;
        }
    }
}
