//! The event-driven transport: non-blocking accept feeding sharded poller
//! threads, sessions executing as bounded batches on the persistent
//! `ntgd_core::parallel` pool.
//!
//! # Shape
//!
//! One **acceptor** thread blocks in `accept` (sharing the backoff and
//! admission policy of `server::mod` with the threaded transport), wraps
//! each admitted socket in a [`Conn`] — non-blocking, banner queued — and
//! hands it round-robin to one of a few **shard** threads through a
//! mutex-protected inbox, waking the shard via a loopback [`Waker`] socket
//! registered in its poller.
//!
//! Each shard runs a readiness loop ([`Poller`]: `epoll` on Linux, portable
//! scan fallback): readable sockets are drained into their connection's
//! line buffer, then every *runnable* connection (a complete request
//! buffered, or EOF to finalise) is executed as one **bounded batch** via
//! [`parallel::par_map_mut`] — each connection pinned to exactly one
//! executor for the whole batch, so a session is strictly serial while
//! distinct sessions run in parallel on the pool.  A batch of one runs
//! inline on the shard thread, where a nested `par_map` from the chase or
//! grounding fans out to the full pool — lone expensive requests keep their
//! inner parallelism, concurrent batches trade it for cross-session
//! parallelism.  Batches are capped at [`EXEC_BATCH`] connections per round
//! so a flood of ready sessions cannot starve socket I/O; the remainder
//! stays runnable and the next round polls with a zero timeout.
//!
//! Write-side: responses accumulate in the connection's write buffer,
//! flushed opportunistically after execution; write interest is armed only
//! while bytes are pending.  A connection closes when its session ends
//! (`QUIT`/EOF) and the buffer has drained, or on I/O error — identical
//! observable semantics to the threaded transport, byte for byte.

use std::io::{self, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ntgd_core::{obs, parallel};

use crate::server::poller::{drain, Event, Poller};
use crate::server::{admit, next_conn, AcceptBackoff, Conn, ConnStats};
use crate::session::{Session, SessionConfig};

/// The poller token reserved for the shard's waker socket.
const WAKER_TOKEN: usize = usize::MAX;

/// Most connections one batch submits to the pool per loop round.
const EXEC_BATCH: usize = 64;

/// Wakes a shard parked in its poller by writing one byte to the loopback
/// pair whose read side the shard has registered.
pub(super) struct Waker {
    tx: TcpStream,
}

impl Waker {
    /// Non-blocking, fallible by design: a full pipe means a wake-up is
    /// already pending.
    pub(super) fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// A connected loopback pair: the write side wakes, the read side gets
/// registered in the shard's poller.
fn waker_pair() -> io::Result<(Waker, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, rx))
}

/// Poller shards: enough to spread socket I/O without competing with the
/// reasoning pool for cores (execution parallelism comes from the pool, not
/// from shard count).  `NTGD_POLLERS` overrides.
fn shard_count() -> usize {
    std::env::var("NTGD_POLLERS")
        .ok()
        .and_then(|value| value.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| parallel::num_threads().clamp(1, 4))
}

/// Spawns the acceptor and the shard threads; returns their handles plus
/// the wakers the [`ServeHandle`](crate::server::ServeHandle) uses for
/// shutdown.
#[allow(clippy::type_complexity)]
pub(super) fn spawn(
    listener: TcpListener,
    config: SessionConfig,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ConnStats>,
) -> io::Result<(
    JoinHandle<io::Result<()>>,
    Vec<JoinHandle<()>>,
    Arc<Vec<Waker>>,
)> {
    let shards = shard_count();
    let mut inboxes: Vec<Arc<Mutex<Vec<Conn>>>> = Vec::with_capacity(shards);
    let mut wakers: Vec<Waker> = Vec::with_capacity(shards);
    let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(shards);
    let idle_timeout = config.idle_timeout;
    for index in 0..shards {
        let (waker, rx) = waker_pair()?;
        let inbox = Arc::new(Mutex::new(Vec::new()));
        let worker = std::thread::Builder::new()
            .name(format!("ntgd-poll-{index}"))
            .spawn({
                let inbox = inbox.clone();
                let shutdown = shutdown.clone();
                let stats = stats.clone();
                move || shard_loop(rx, &inbox, &shutdown, &stats, idle_timeout)
            })?;
        inboxes.push(inbox);
        wakers.push(waker);
        workers.push(worker);
    }
    let wakers = Arc::new(wakers);
    let acceptor = std::thread::Builder::new()
        .name("ntgd-accept".to_owned())
        .spawn({
            let wakers = wakers.clone();
            move || {
                let result = accept_loop(listener, config, &shutdown, &stats, &inboxes, &wakers);
                if result.is_err() {
                    // A fatal accept error takes the whole server down; release
                    // the shards so ServeHandle::join can reap them.
                    shutdown.store(true, Ordering::SeqCst);
                    for waker in wakers.iter() {
                        waker.wake();
                    }
                }
                result
            }
        })?;
    Ok((acceptor, workers, wakers))
}

fn accept_loop(
    listener: TcpListener,
    config: SessionConfig,
    shutdown: &AtomicBool,
    stats: &Arc<ConnStats>,
    inboxes: &[Arc<Mutex<Vec<Conn>>>],
    wakers: &[Waker],
) -> io::Result<()> {
    let mut backoff = AcceptBackoff::new();
    let mut next_shard = 0usize;
    loop {
        match next_conn(&listener, shutdown, &mut backoff)? {
            None => return Ok(()),
            Some(stream) => {
                if !admit(&stream, stats, &config) {
                    continue;
                }
                let session = Session::new(config.clone());
                let mut conn = match Conn::new(stream, session) {
                    Ok(conn) => conn,
                    Err(_) => {
                        stats.disconnected();
                        continue;
                    }
                };
                // Get the banner out before the shard even wakes.
                conn.flush();
                if conn.finished() {
                    stats.disconnected();
                    continue;
                }
                inboxes[next_shard].lock().unwrap().push(conn);
                wakers[next_shard].wake();
                next_shard = (next_shard + 1) % inboxes.len();
            }
        }
    }
}

/// Event-loop cycle counters and phase timers: every poller wait, every
/// bounded batch handed to the pool, and every round that left runnable
/// connections behind (the backlog rounds an operator watches for).
static POLL_CYCLES: obs::Counter = obs::Counter::new("server.poll_cycles");
static EXEC_BATCHES: obs::Counter = obs::Counter::new("server.exec_batches");
static BACKLOG_ROUNDS: obs::Counter = obs::Counter::new("server.backlog_rounds");
static IDLE_CLOSED: obs::Counter = obs::Counter::new("server.idle_closed");

/// One poller shard: owns a slab of connections, polls them, and submits
/// ready batches to the pool.  With an idle timeout configured, each round
/// also reaps connections whose last read activity is older than the
/// timeout — an abandoned client releases its admission slot instead of
/// holding it forever.  Connections with unflushed response bytes are
/// exempt: a slow reader mid-drain is making progress, not abandoned.
fn shard_loop(
    waker_rx: TcpStream,
    inbox: &Mutex<Vec<Conn>>,
    shutdown: &AtomicBool,
    stats: &ConnStats,
    idle_timeout: Option<Duration>,
) {
    let mut poller = match Poller::new() {
        Ok(poller) => poller,
        Err(err) => {
            eprintln!("ntgd-serve: poller init failed: {err}");
            return;
        }
    };
    if poller.register(&waker_rx, WAKER_TOKEN, false).is_err() {
        eprintln!("ntgd-serve: waker registration failed");
        return;
    }
    // Token-addressed slab: a connection's poller token is its slot index.
    let mut slots: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    // Whether the last round left runnable connections unexecuted (batch
    // cap): poll without sleeping so they run next.
    let mut backlog = false;
    loop {
        let timeout = if backlog {
            Duration::ZERO
        } else {
            // Cap the wait by the idle timeout so reaping is not quantised
            // to the 200ms poll cadence when the operator asked for less.
            idle_timeout
                .map_or(Duration::from_millis(200), |idle| {
                    idle.min(Duration::from_millis(200))
                })
        };
        let wait_failed = {
            let _poll = obs::span("server.poll");
            poller.wait(timeout, &mut events).is_err()
        };
        if wait_failed {
            // A broken poller cannot make progress; drop the shard's
            // connections and exit rather than spin.
            break;
        }
        POLL_CYCLES.incr();
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // I/O phase: drain readable sockets, push blocked writes along.
        for event in &events {
            if event.token == WAKER_TOKEN {
                drain(&waker_rx);
                continue;
            }
            let Some(conn) = slots.get_mut(event.token).and_then(Option::as_mut) else {
                continue;
            };
            if event.readable {
                conn.fill();
            }
            if event.writable {
                conn.flush();
            }
        }
        // Adopt connections the acceptor handed over.
        let adopted: Vec<Conn> = {
            let mut inbox = inbox.lock().unwrap();
            inbox.drain(..).collect()
        };
        for mut conn in adopted {
            let token = free.pop().unwrap_or_else(|| {
                slots.push(None);
                slots.len() - 1
            });
            if poller
                .register(conn.stream(), token, conn.wants_write())
                .is_err()
            {
                let _ = conn.stream().shutdown(Shutdown::Both);
                stats.disconnected();
                free.push(token);
                continue;
            }
            conn.set_write_armed(conn.wants_write());
            slots[token] = Some(conn);
        }
        // Scheduling phase: one bounded batch of runnable sessions on the
        // pool — per-session serial, cross-session parallel.
        let mut runnable: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.as_ref().is_some_and(Conn::runnable))
            .map(|(token, _)| token)
            .collect();
        backlog = runnable.len() > EXEC_BATCH;
        if backlog {
            BACKLOG_ROUNDS.incr();
        }
        runnable.truncate(EXEC_BATCH);
        if !runnable.is_empty() {
            let mut batch: Vec<&mut Conn> = Vec::with_capacity(runnable.len());
            let mut wanted = runnable.iter().copied().peekable();
            for (token, slot) in slots.iter_mut().enumerate() {
                if wanted.peek() == Some(&token) {
                    wanted.next();
                    batch.push(slot.as_mut().expect("runnable slot is occupied"));
                }
            }
            EXEC_BATCHES.incr();
            let _exec = obs::span("server.exec_batch");
            let threads = parallel::threads_for(batch.len());
            parallel::par_map_mut(&mut batch, threads, |_, conn| conn.run_ready());
        }
        // Write-back phase: flush, rearm write interest on transitions,
        // retire finished connections, reap idle ones.
        let now = std::time::Instant::now();
        for (token, slot) in slots.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            if conn.wants_write() {
                conn.flush();
            }
            // A connection still draining a response is working, not idle —
            // last_activity only tracks reads, so without the wants_write
            // guard a client slowly consuming a large MODELS reply would be
            // cut off mid-response.
            let idle = idle_timeout.is_some_and(|timeout| {
                !conn.runnable() && !conn.wants_write() && conn.idle_for(now) >= timeout
            });
            if conn.finished() || idle {
                let finished = conn.finished();
                let conn = slot.take().expect("slot occupied");
                let _ = poller.deregister(conn.stream(), token);
                let _ = conn.stream().shutdown(Shutdown::Both);
                if finished {
                    stats.disconnected();
                } else {
                    IDLE_CLOSED.incr();
                    stats.idle_closed();
                }
                free.push(token);
            } else {
                let want = conn.wants_write();
                if want != conn.write_armed()
                    && poller
                        .set_write_interest(conn.stream(), token, want)
                        .is_ok()
                {
                    conn.set_write_armed(want);
                }
            }
        }
    }
    // Shutdown: close every connection this shard still holds.
    for slot in slots.into_iter().flatten() {
        let _ = slot.stream().shutdown(Shutdown::Both);
        stats.disconnected();
    }
}
