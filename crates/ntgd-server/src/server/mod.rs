//! Transports: serving sessions over TCP (evented or threaded) and a stdin
//! REPL.
//!
//! All transports are line pumps around [`Session::execute`]; the protocol
//! logic lives entirely in [`crate::session`] so tests and embedders can
//! drive a session without any I/O.  Two TCP transports exist, selected by
//! [`SessionConfig::transport`] / `NTGD_TRANSPORT`:
//!
//! * **`evented`** (default, [`event_loop`]): a std-only readiness loop —
//!   non-blocking sockets, sharded poller threads, sessions as [`Conn`]
//!   state machines whose ready batches execute on the persistent
//!   `ntgd_core::parallel` pool.  One process holds thousands of live
//!   sessions without one OS thread each.
//! * **`threaded`** ([`threaded`]): the historical one-thread-per-connection
//!   path, kept for differential testing.
//!
//! Protocol semantics and per-session transcripts are **byte-identical**
//! across both — `tests/event_loop_e2e.rs` and the CI smoke matrix are the
//! referee.  Both share the same admission control
//! ([`SessionConfig::max_sessions`]: over the cap a connection gets one
//! `ERR server at capacity` line and no banner), the same accept-error
//! backoff policy ([`AcceptBackoff`]: transient errors retry immediately,
//! resource exhaustion like EMFILE backs off exponentially instead of
//! spinning, sustained failure is fatal), and the same [`ConnStats`]
//! counters served by `STATS conn`.
//!
//! [`serve`] starts a server and returns a [`ServeHandle`] for graceful
//! shutdown; [`serve_tcp`] is the blocking wrapper the `ntgd-serve` binary
//! uses.

mod conn;
mod event_loop;
mod poller;
mod threaded;

pub use conn::{Conn, LineBuffer};

use std::io::{self, BufRead, Write};
use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ntgd_core::obs::{
    self,
    log::{FieldValue, Level, RateLimit},
};

use crate::session::{server_exec_ns, Session, SessionBudget, SessionConfig};

/// The banner sent when a session opens (protocol version 1).
pub const BANNER: &str = "READY ntgd-serve protocol=1";

/// Which connection transport [`serve`]/[`serve_tcp`] use.  See the module
/// documentation; both produce byte-identical per-session transcripts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Transport {
    /// The event-driven readiness loop (`server::event_loop`): non-blocking
    /// sockets, sharded pollers, ready-session batches on the persistent
    /// pool.  The default.
    #[default]
    Evented,
    /// One thread per connection — the historical path, kept selectable for
    /// differential testing.
    Threaded,
}

impl Transport {
    /// Parses a transport name (`evented`/`threaded`, plus common aliases).
    pub fn parse(text: &str) -> Option<Transport> {
        match text.trim().to_ascii_lowercase().as_str() {
            "evented" | "event" | "epoll" => Some(Transport::Evented),
            "threaded" | "threads" | "thread" => Some(Transport::Threaded),
            _ => None,
        }
    }

    /// The transport selected by `NTGD_TRANSPORT` (default: evented;
    /// unknown values also fall back to evented).
    pub fn from_env() -> Transport {
        std::env::var("NTGD_TRANSPORT")
            .ok()
            .and_then(|value| Transport::parse(&value))
            .unwrap_or_default()
    }

    /// The name `STATS conn` reports as `conn_transport`.
    pub fn label(self) -> &'static str {
        match self {
            Transport::Evented => "evented",
            Transport::Threaded => "threaded",
        }
    }
}

/// Connection-layer counters, one set per running server, reported by
/// `STATS conn`.  Every counter is a pure function of the connection
/// history (never of thread count, pool mode or machine), so scripted
/// connection sequences can assert the scope verbatim.
#[derive(Debug)]
pub struct ConnStats {
    transport: &'static str,
    accepted: AtomicU64,
    active: AtomicU64,
    peak: AtomicU64,
    rejected: AtomicU64,
    idle_closed: AtomicU64,
}

/// A point-in-time copy of [`ConnStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnSnapshot {
    /// The transport label (`evented`, `threaded`, `repl`, `embedded`).
    pub transport: &'static str,
    /// Connections admitted as sessions, ever.
    pub accepted: u64,
    /// Sessions currently live.
    pub active: u64,
    /// High-water mark of `active`.
    pub peak: u64,
    /// Connections turned away at admission — by the `max_sessions` cap or
    /// by the fleet-wide [`SessionBudget`] reject allowance (warn-mode
    /// budgets only log, never shed).
    pub rejected: u64,
    /// Connections reaped by the idle-session timeout
    /// ([`SessionConfig::idle_timeout`], evented transport only).
    pub idle_closed: u64,
}

impl ConnStats {
    /// Fresh counters for one server instance.
    pub fn new(transport: &'static str) -> ConnStats {
        ConnStats {
            transport,
            accepted: AtomicU64::new(0),
            active: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
        }
    }

    /// The current counter values.
    pub fn snapshot(&self) -> ConnSnapshot {
        ConnSnapshot {
            transport: self.transport,
            accepted: self.accepted.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            peak: self.peak.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
        }
    }

    fn connected(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let now = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn disconnected(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    fn rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    fn idle_closed(&self) {
        self.idle_closed.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What the accept loop should do after an `accept` error — the policy that
/// replaced the old `Err(_) => continue` hot loop, which span at 100% CPU
/// when the error was persistent (EMFILE being the classic case).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AcceptAction {
    /// A transient per-connection error (peer reset while queued, EINTR):
    /// retry immediately, it says nothing about the listener.
    Retry,
    /// A resource error (EMFILE, ENOMEM, …): sleep before retrying so a
    /// saturated server sheds load instead of spinning.
    Sleep(Duration),
    /// The error has persisted long enough that the listener is presumed
    /// dead: stop accepting (the server shuts down).
    Fatal,
}

/// Exponential accept-error backoff: 10ms doubling to a 1s cap, reset by
/// any successful accept, fatal after [`AcceptBackoff::FATAL_AFTER`]
/// consecutive non-transient failures (≈1 minute at the cap).
pub(crate) struct AcceptBackoff {
    consecutive: u32,
}

impl AcceptBackoff {
    const START_MS: u64 = 10;
    const CAP_MS: u64 = 1_000;
    const FATAL_AFTER: u32 = 64;

    pub(crate) fn new() -> AcceptBackoff {
        AcceptBackoff { consecutive: 0 }
    }

    /// Called after a successful accept: the listener is healthy again.
    pub(crate) fn reset(&mut self) {
        self.consecutive = 0;
    }

    /// Classifies one accept error and advances the backoff state.
    pub(crate) fn on_error(&mut self, kind: io::ErrorKind) -> AcceptAction {
        use io::ErrorKind::*;
        match kind {
            ConnectionReset | ConnectionAborted | Interrupted | WouldBlock | TimedOut => {
                AcceptAction::Retry
            }
            _ => {
                self.consecutive += 1;
                if self.consecutive >= Self::FATAL_AFTER {
                    return AcceptAction::Fatal;
                }
                let exponent = (self.consecutive - 1).min(63);
                let delay = Self::START_MS
                    .checked_shl(exponent)
                    .unwrap_or(Self::CAP_MS)
                    .min(Self::CAP_MS);
                AcceptAction::Sleep(Duration::from_millis(delay))
            }
        }
    }
}

/// Accept errors are worth counting even when they back off silently.
static ACCEPT_ERRORS: obs::Counter = obs::Counter::new("server.accept_errors");

/// The backoff path used to retry with no trace at all; now every sleep is
/// counted and (rate-limited to one event per second, so a persistent
/// EMFILE loop cannot flood the sink) logged with errno and delay.
static ACCEPT_ERROR_EVENTS: RateLimit = RateLimit::new(Duration::from_secs(1));

/// Blocking-accepts the next connection, applying the shared backoff
/// policy.  Returns `Ok(None)` on shutdown, `Err` on a fatal accept error.
fn next_conn(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    backoff: &mut AcceptBackoff,
) -> io::Result<Option<TcpStream>> {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match listener.accept() {
            Ok((stream, _)) => {
                backoff.reset();
                if shutdown.load(Ordering::SeqCst) {
                    // The wake-up self-connect (or a client racing shutdown).
                    return Ok(None);
                }
                return Ok(Some(stream));
            }
            Err(err) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                match backoff.on_error(err.kind()) {
                    AcceptAction::Retry => continue,
                    AcceptAction::Sleep(delay) => {
                        ACCEPT_ERRORS.incr();
                        if ACCEPT_ERROR_EVENTS.allow() && obs::log::log_enabled(Level::Warn) {
                            obs::log::log_event(
                                Level::Warn,
                                "accept_backoff",
                                &[
                                    ("kind", FieldValue::from(format!("{:?}", err.kind()))),
                                    (
                                        "errno",
                                        FieldValue::from(i64::from(err.raw_os_error().unwrap_or(0))),
                                    ),
                                    ("backoff_ms", FieldValue::from(delay.as_millis() as u64)),
                                ],
                            );
                        }
                        std::thread::sleep(delay)
                    }
                    AcceptAction::Fatal => return Err(err),
                }
            }
        }
    }
}

/// Whether cumulative fleet spend exceeds the aggregate allowance earned by
/// every session ever admitted, the would-be one included.  Scaling by
/// admissions-ever (not live sessions) is what lets allowance keep pace
/// with spend through session churn: dead sessions' spend stays in the
/// cumulative total, so their allowance must stay in the aggregate too, or
/// a long-lived server would eventually reject every connection while idle.
fn fleet_over_allowance(cap_ms: u64, spent_ms: u64, accepted: u64) -> bool {
    spent_ms >= cap_ms.saturating_mul(accepted.saturating_add(1))
}

/// The fleet-budget breach is worth a structured trace even in warn mode,
/// where it never sheds — rate-limited so a busy accept loop cannot flood
/// the sink.
static FLEET_BUDGET_EVENTS: RateLimit = RateLimit::new(Duration::from_secs(1));

/// Admission control shared by both transports: a connection over the
/// `max_sessions` cap — or arriving while the fleet is over its cumulative
/// [`SessionBudget`] **reject** allowance — gets a single `ERR server at
/// capacity` line (no banner — clients can tell rejection from a session)
/// and is closed.  The fleet check grants every session *ever admitted*
/// (the would-be one included) the per-session budget, so session churn
/// keeps earning allowance and a long-lived server never wedges itself
/// shut on spend from sessions that already disconnected; it sheds *new*
/// work once cumulative execution time exceeds that aggregate — live
/// sessions are never touched, so the budget degrades admission, not
/// service.  A `warn:` budget never sheds: a breach only emits a
/// rate-limited `fleet_budget_exceeded` log event, matching its
/// observability-only contract for the compute verbs.  Returns whether the
/// connection was admitted; an admitted connection is already counted in
/// `stats`.
fn admit(stream: &TcpStream, stats: &ConnStats, config: &SessionConfig) -> bool {
    let active = stats.active.load(Ordering::Relaxed);
    let over_cap = config
        .max_sessions
        .is_some_and(|cap| active >= cap as u64);
    let over_fleet_budget = config.session_budget.is_some_and(|budget| {
        let cap_ms = match budget {
            SessionBudget::Reject(ms) | SessionBudget::Warn(ms) => ms,
        };
        let accepted = stats.accepted.load(Ordering::Relaxed);
        let spent_ms = server_exec_ns() / 1_000_000;
        let over = fleet_over_allowance(cap_ms, spent_ms, accepted);
        if over && matches!(budget, SessionBudget::Warn(_)) {
            if FLEET_BUDGET_EVENTS.allow() && obs::log::log_enabled(Level::Warn) {
                obs::log::log_event(
                    Level::Warn,
                    "fleet_budget_exceeded",
                    &[
                        ("spent_ms", FieldValue::from(spent_ms)),
                        ("budget_ms", FieldValue::from(cap_ms)),
                        ("accepted", FieldValue::from(accepted)),
                        ("active", FieldValue::from(active)),
                    ],
                );
            }
            return false;
        }
        over
    });
    if over_cap || over_fleet_budget {
        stats.rejected();
        let _ = stream.set_nodelay(true);
        let _ = (&*stream).write_all(b"ERR server at capacity\n");
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return false;
    }
    stats.connected();
    true
}

/// Unblocks a listener parked in `accept` by self-connecting (an unspecified
/// bind address is reached via loopback).
fn wake_accept(addr: SocketAddr) {
    let mut target = addr;
    if target.ip().is_unspecified() {
        match &mut target {
            SocketAddr::V4(v4) => v4.set_ip(Ipv4Addr::LOCALHOST),
            SocketAddr::V6(v6) => v6.set_ip(Ipv6Addr::LOCALHOST),
        }
    }
    let _ = TcpStream::connect_timeout(&target, Duration::from_millis(200));
}

/// A running TCP server: its bound address, live connection counters, and
/// the graceful-shutdown switch.
///
/// Dropping the handle without calling [`ServeHandle::shutdown`] leaves the
/// server running detached for the life of the process (the historical
/// `serve_tcp` behaviour).
pub struct ServeHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ConnStats>,
    acceptor: Option<JoinHandle<io::Result<()>>>,
    workers: Vec<JoinHandle<()>>,
    wakers: Arc<Vec<event_loop::Waker>>,
}

impl ServeHandle {
    /// The address the server is listening on (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's connection counters (what `STATS conn` serves).
    pub fn conn_stats(&self) -> ConnSnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting, closes every live connection, and joins all server
    /// threads.  Returns the accept loop's fatal error, if it died of one.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_accept(self.addr);
        for waker in self.wakers.iter() {
            waker.wake();
        }
        self.join_threads()
    }

    /// Blocks until the server stops on its own — which a healthy server
    /// never does, so this is effectively "serve forever, but surface a
    /// fatal accept error" (the `serve_tcp` contract).
    pub fn join(mut self) -> io::Result<()> {
        self.join_threads()
    }

    fn join_threads(&mut self) -> io::Result<()> {
        let result = match self.acceptor.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("accept thread panicked"))),
            None => Ok(()),
        };
        // On a fatal accept error the acceptor has already flipped the
        // shutdown flag; wake the pollers again in case the flip raced a
        // wait, then reap them.
        for waker in self.wakers.iter() {
            waker.wake();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        result
    }
}

/// Starts serving sessions over TCP on the configured transport and returns
/// a [`ServeHandle`] (accepting runs on background threads).  All sessions
/// share the process-wide persistent worker pool of `ntgd_core::parallel` —
/// and, when `config.base_registry` is set, one shared-base registry: the
/// per-connection config clone clones only the `Arc`, so every session
/// forks the same frozen bases (see the crate documentation's *shared-base
/// caching contract*).
pub fn serve(listener: TcpListener, config: SessionConfig) -> io::Result<ServeHandle> {
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ConnStats::new(config.transport.label()));
    let mut config = config;
    config.conn_stats = Some(stats.clone());
    match config.transport {
        Transport::Threaded => {
            let acceptor = threaded::spawn(listener, config, shutdown.clone(), stats.clone())?;
            Ok(ServeHandle {
                addr,
                shutdown,
                stats,
                acceptor: Some(acceptor),
                workers: Vec::new(),
                wakers: Arc::new(Vec::new()),
            })
        }
        Transport::Evented => {
            let (acceptor, workers, wakers) =
                event_loop::spawn(listener, config, shutdown.clone(), stats.clone())?;
            Ok(ServeHandle {
                addr,
                shutdown,
                stats,
                acceptor: Some(acceptor),
                workers,
                wakers,
            })
        }
    }
}

/// Serves sessions over TCP until the process dies (or the accept loop hits
/// a fatal error): [`serve`] + [`ServeHandle::join`].  What the
/// `ntgd-serve` binary runs; embedders wanting graceful shutdown use
/// [`serve`] directly.
pub fn serve_tcp(listener: TcpListener, config: SessionConfig) -> io::Result<()> {
    serve(listener, config)?.join()
}

/// Pumps protocol lines from `reader` through one session, writing framed
/// responses (and the opening [`BANNER`]) to `writer`, until end-of-input or
/// `QUIT`.
pub fn handle_session<R, W>(mut session: Session, reader: R, writer: &mut W) -> io::Result<()>
where
    R: BufRead,
    W: Write,
{
    writeln!(writer, "{BANNER}")?;
    writer.flush()?;
    for line in reader.lines() {
        let response = session.execute(&line?);
        for out in &response.lines {
            writeln!(writer, "{out}")?;
        }
        if !response.lines.is_empty() {
            writer.flush()?;
        }
        if response.close {
            break;
        }
    }
    Ok(())
}

/// Serves a single session on stdin/stdout (the `--repl` mode of
/// `ntgd-serve`, and what the CI smoke test scripts).  `STATS conn` reports
/// `conn_transport=repl` with all counters zero — deterministically, so the
/// smoke transcript can assert the scope.
pub fn serve_repl(config: SessionConfig) -> io::Result<()> {
    let mut config = config;
    config
        .conn_stats
        .get_or_insert_with(|| Arc::new(ConnStats::new("repl")));
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut writer = stdout.lock();
    handle_session(Session::new(config), stdin.lock(), &mut writer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_session_frames_banner_responses_and_quit() {
        let script = "PING\n% a comment produces nothing\nQUERY ?- p(a).\nQUIT\nPING\n";
        let mut out: Vec<u8> = Vec::new();
        handle_session(
            Session::new(SessionConfig::default()),
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                BANNER,
                "OK pong",
                "ERR no program loaded",
                "OK bye" // the trailing PING is never read: QUIT closed the session
            ]
        );
    }

    #[test]
    fn transport_parses_names_and_defaults_to_evented() {
        assert_eq!(Transport::parse("evented"), Some(Transport::Evented));
        assert_eq!(Transport::parse(" EPOLL "), Some(Transport::Evented));
        assert_eq!(Transport::parse("threaded"), Some(Transport::Threaded));
        assert_eq!(Transport::parse("threads"), Some(Transport::Threaded));
        assert_eq!(Transport::parse("quantum"), None);
        assert_eq!(Transport::default(), Transport::Evented);
    }

    #[test]
    fn conn_stats_track_peak_and_rejections() {
        let stats = ConnStats::new("evented");
        stats.connected();
        stats.connected();
        stats.disconnected();
        stats.connected();
        stats.rejected();
        let snap = stats.snapshot();
        assert_eq!(snap.transport, "evented");
        assert_eq!(snap.accepted, 3);
        assert_eq!(snap.active, 2);
        assert_eq!(snap.peak, 2);
        assert_eq!(snap.rejected, 1);
    }

    #[test]
    fn fleet_allowance_scales_with_admissions_ever_not_live_sessions() {
        // Churn scenario: 1000ms of lifetime spend left by dead sessions,
        // 100ms per-session cap, server idle.  Twelve admissions earned
        // 1300ms of aggregate allowance — the next connection is admitted.
        assert!(!fleet_over_allowance(100, 1000, 12));
        // Only five admissions earned 600ms — the spend exceeds it, shed.
        assert!(fleet_over_allowance(100, 1000, 5));
        // A zero budget is breached by definition (the deterministic case
        // the e2e shedding test leans on).
        assert!(fleet_over_allowance(0, 0, 0));
        // The aggregate saturates instead of overflowing.
        assert!(!fleet_over_allowance(u64::MAX, u64::MAX - 1, 3));
        assert!(fleet_over_allowance(u64::MAX, u64::MAX, u64::MAX));
    }

    #[test]
    fn transient_accept_errors_retry_without_backoff() {
        let mut backoff = AcceptBackoff::new();
        for kind in [
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ] {
            assert_eq!(backoff.on_error(kind), AcceptAction::Retry);
        }
    }

    #[test]
    fn resource_accept_errors_back_off_exponentially_then_go_fatal() {
        let mut backoff = AcceptBackoff::new();
        // EMFILE surfaces as ErrorKind::Other / Uncategorized.
        let kind = io::ErrorKind::Other;
        assert_eq!(
            backoff.on_error(kind),
            AcceptAction::Sleep(Duration::from_millis(10))
        );
        assert_eq!(
            backoff.on_error(kind),
            AcceptAction::Sleep(Duration::from_millis(20))
        );
        let mut last = Duration::ZERO;
        let mut fatal = false;
        for _ in 0..AcceptBackoff::FATAL_AFTER {
            match backoff.on_error(kind) {
                AcceptAction::Sleep(delay) => {
                    assert!(delay >= last, "backoff never shrinks");
                    assert!(delay <= Duration::from_millis(AcceptBackoff::CAP_MS));
                    last = delay;
                }
                AcceptAction::Fatal => {
                    fatal = true;
                    break;
                }
                AcceptAction::Retry => unreachable!("resource errors never Retry"),
            }
        }
        assert!(fatal, "sustained failure becomes fatal");
        // A successful accept resets the ladder.
        backoff.reset();
        assert_eq!(
            backoff.on_error(kind),
            AcceptAction::Sleep(Duration::from_millis(10))
        );
    }
}
