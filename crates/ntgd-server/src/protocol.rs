//! The line protocol: request parsing and response framing.
//!
//! See the crate documentation for the grammar.  Parsing here only splits a
//! request line into a [`Command`]; program, fact and query *payloads* stay
//! as text and are handed to [`ntgd_parser`] by the session.

use std::fmt;

/// How `MODELS` enumerates stable models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelsMode {
    /// The paper's stable model semantics (SMS engine; any program).
    Sms,
    /// The LP approach (Skolemise + ground + answer-set search; normal
    /// programs).
    Lp,
}

impl fmt::Display for ModelsMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelsMode::Sms => write!(f, "sms"),
            ModelsMode::Lp => write!(f, "lp"),
        }
    }
}

/// Which counters `STATS` prints.  The `sms`, `base` and `conn` scopes print
/// only lines that are a pure function of the request/connection history —
/// never of thread count, pool mode or machine — so transcripts can assert
/// them verbatim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsScope {
    /// Everything, including the machine-dependent pool counters.
    All,
    /// Only the deterministic incremental-`MODELS` reuse counters.
    Sms,
    /// Only the deterministic shared-base counters (registry hits/misses,
    /// base vs overlay atom counts, fork count).
    Base,
    /// Only the connection-layer counters (transport, accepted/active/peak/
    /// rejected) — deterministic for any scripted sequence of connections.
    Conn,
    /// Only the session-local request counters (per-verb request and error
    /// tallies) — a pure function of the request history, unlike the
    /// process-wide timing data the `METRICS` verb exposes.
    Metrics,
    /// Only the decidability-classification lines of the loaded program
    /// (member classes, verdict, budget decisions) — a pure function of the
    /// `LOAD` payload, so transcripts assert the scope verbatim.
    Classes,
}

/// The `HELP` response body, one entry per line (the session prefixes each
/// with `INFO `).  This is the **single source of truth** for the command
/// summary: `docs/PROTOCOL.md` embeds the same lines between its
/// `HELP-BEGIN`/`HELP-END` markers, and `tests/help_sync.rs` diffs the two —
/// so the served grammar and the documented grammar cannot drift apart.
pub const HELP_LINES: [&str; 6] = [
    "LOAD <rules-and-facts>      (re)initialise the session",
    "ASSERT <facts>              insert facts, incremental re-chase",
    "QUERY <?- lits. | ?(X) :- lits.>  certain answers",
    "MODELS [sms|lp] [max=<n>]   enumerate stable models",
    "RETRACT-TO <mark>           roll back to an epoch mark",
    "STATS [sms|base|conn|metrics|classes] | METRICS | PING | HELP | QUIT",
];

/// One parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `LOAD <rules-and-facts>`: (re)initialise the session.
    Load(String),
    /// `ASSERT <facts>`: insert facts and incrementally re-chase.
    Assert(String),
    /// `QUERY <query>`: answer a query over the chased instance.
    Query(String),
    /// `MODELS [sms|lp] [max=<n>]`: enumerate stable models.
    Models {
        /// Enumeration back-end.
        mode: ModelsMode,
        /// Optional cap overriding the session default.
        max: Option<usize>,
    },
    /// `RETRACT-TO <mark>`: roll back to an earlier epoch mark.
    RetractTo(usize),
    /// `STATS [sms|base|conn|metrics]`: session and engine statistics,
    /// optionally restricted to one deterministic counter scope (see
    /// [`StatsScope`]).
    Stats {
        /// Which counters to print.
        scope: StatsScope,
    },
    /// `METRICS`: the process-wide observability registry as
    /// Prometheus-style text exposition (timings included — excluded from
    /// transcript-parity tests, unlike every `STATS` scope).
    Metrics,
    /// `PING`: liveness check.
    Ping,
    /// `HELP`: list the commands.
    Help,
    /// `QUIT`: close the session.
    Quit,
    /// Blank or comment line: no response at all.
    Nop,
}

/// Parses one request line.  Returns `Err` with a human-readable message for
/// unknown commands or malformed arguments.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
        return Ok(Command::Nop);
    }
    let (keyword, rest) = match line.find(char::is_whitespace) {
        Some(split) => (&line[..split], line[split..].trim()),
        None => (line, ""),
    };
    match keyword.to_ascii_uppercase().as_str() {
        "LOAD" => {
            if rest.is_empty() {
                Err("LOAD needs a program".to_owned())
            } else {
                Ok(Command::Load(rest.to_owned()))
            }
        }
        "ASSERT" => {
            if rest.is_empty() {
                Err("ASSERT needs facts".to_owned())
            } else {
                Ok(Command::Assert(rest.to_owned()))
            }
        }
        "QUERY" => {
            if rest.is_empty() {
                Err("QUERY needs a query".to_owned())
            } else {
                Ok(Command::Query(rest.to_owned()))
            }
        }
        "MODELS" => {
            let mut mode = ModelsMode::Sms;
            let mut max = None;
            for word in rest.split_whitespace() {
                let lower = word.to_ascii_lowercase();
                if lower == "sms" {
                    mode = ModelsMode::Sms;
                } else if lower == "lp" {
                    mode = ModelsMode::Lp;
                } else if let Some(value) = lower.strip_prefix("max=") {
                    max = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| format!("bad MODELS cap: {word}"))?,
                    );
                } else {
                    return Err(format!("unknown MODELS argument: {word}"));
                }
            }
            Ok(Command::Models { mode, max })
        }
        "RETRACT-TO" => rest
            .parse::<usize>()
            .map(Command::RetractTo)
            .map_err(|_| format!("bad mark: {rest:?}")),
        "STATS" => match rest.to_ascii_lowercase().as_str() {
            "" => Ok(Command::Stats {
                scope: StatsScope::All,
            }),
            "sms" => Ok(Command::Stats {
                scope: StatsScope::Sms,
            }),
            "base" => Ok(Command::Stats {
                scope: StatsScope::Base,
            }),
            "conn" => Ok(Command::Stats {
                scope: StatsScope::Conn,
            }),
            "metrics" => Ok(Command::Stats {
                scope: StatsScope::Metrics,
            }),
            "classes" => Ok(Command::Stats {
                scope: StatsScope::Classes,
            }),
            other => Err(format!("unknown STATS scope: {other}")),
        },
        "METRICS" => Ok(Command::Metrics),
        "PING" => Ok(Command::Ping),
        "HELP" => Ok(Command::Help),
        "QUIT" | "EXIT" => Ok(Command::Quit),
        other => Err(format!("unknown command: {other}")),
    }
}

/// A framed response: data lines followed by one `OK …`/`ERR …` terminator
/// (already included in `lines`), plus the close-connection flag set by
/// `QUIT`.  [`Command::Nop`] produces an empty response.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Response {
    /// The lines to send, terminator included.
    pub lines: Vec<String>,
    /// Whether the session ends after this response.
    pub close: bool,
}

impl Response {
    /// An empty response (comment / blank request).
    pub fn none() -> Response {
        Response::default()
    }

    /// A single-line `OK …` response.
    pub fn ok(detail: impl fmt::Display) -> Response {
        Response {
            lines: vec![format!("OK {detail}")],
            close: false,
        }
    }

    /// Data lines followed by an `OK …` terminator.
    pub fn ok_with(data: Vec<String>, detail: impl fmt::Display) -> Response {
        let mut lines = data;
        lines.push(format!("OK {detail}"));
        Response {
            lines,
            close: false,
        }
    }

    /// An `ERR …` response; the message is flattened to one line.
    pub fn err(message: impl fmt::Display) -> Response {
        let flat = message.to_string().replace('\n', "; ").replace('\r', "");
        Response {
            lines: vec![format!("ERR {flat}")],
            close: false,
        }
    }

    /// The terminator line, if any data has been produced.
    pub fn terminator(&self) -> Option<&str> {
        self.lines.last().map(String::as_str)
    }

    /// Whether this response reports success (vacuously true for `Nop`).
    pub fn is_ok(&self) -> bool {
        self.terminator().is_none_or(|line| line.starts_with("OK"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive_and_split_once() {
        assert_eq!(
            parse_command("load p(X) -> q(X)."),
            Ok(Command::Load("p(X) -> q(X).".to_owned()))
        );
        assert_eq!(
            parse_command("ASSERT p(a). p(b)."),
            Ok(Command::Assert("p(a). p(b).".to_owned()))
        );
        assert_eq!(
            parse_command("Query ?- p(X)."),
            Ok(Command::Query("?- p(X).".to_owned()))
        );
        assert_eq!(parse_command("RETRACT-TO 3"), Ok(Command::RetractTo(3)));
        assert_eq!(
            parse_command("stats"),
            Ok(Command::Stats {
                scope: StatsScope::All
            })
        );
        assert_eq!(
            parse_command("STATS sms"),
            Ok(Command::Stats {
                scope: StatsScope::Sms
            })
        );
        assert_eq!(
            parse_command("STATS Base"),
            Ok(Command::Stats {
                scope: StatsScope::Base
            })
        );
        assert_eq!(
            parse_command("STATS conn"),
            Ok(Command::Stats {
                scope: StatsScope::Conn
            })
        );
        assert_eq!(
            parse_command("STATS Metrics"),
            Ok(Command::Stats {
                scope: StatsScope::Metrics
            })
        );
        assert_eq!(
            parse_command("STATS Classes"),
            Ok(Command::Stats {
                scope: StatsScope::Classes
            })
        );
        assert_eq!(parse_command("metrics"), Ok(Command::Metrics));
        assert!(parse_command("STATS quantum").is_err());
        assert_eq!(parse_command("QUIT"), Ok(Command::Quit));
        assert_eq!(parse_command("exit"), Ok(Command::Quit));
    }

    #[test]
    fn models_arguments_parse() {
        assert_eq!(
            parse_command("MODELS"),
            Ok(Command::Models {
                mode: ModelsMode::Sms,
                max: None
            })
        );
        assert_eq!(
            parse_command("MODELS lp max=5"),
            Ok(Command::Models {
                mode: ModelsMode::Lp,
                max: Some(5)
            })
        );
        assert!(parse_command("MODELS quantum").is_err());
        assert!(parse_command("MODELS max=no").is_err());
    }

    #[test]
    fn blanks_and_comments_are_nops() {
        assert_eq!(parse_command(""), Ok(Command::Nop));
        assert_eq!(parse_command("   "), Ok(Command::Nop));
        assert_eq!(parse_command("% commentary"), Ok(Command::Nop));
        assert_eq!(parse_command("# commentary"), Ok(Command::Nop));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(parse_command("LOAD").is_err());
        assert!(parse_command("ASSERT").is_err());
        assert!(parse_command("QUERY").is_err());
        assert!(parse_command("RETRACT-TO x").is_err());
        assert!(parse_command("FROBNICATE now").is_err());
    }

    #[test]
    fn responses_frame_with_one_terminator() {
        let ok = Response::ok("mark=1");
        assert_eq!(ok.lines, vec!["OK mark=1"]);
        assert!(ok.is_ok());
        let with = Response::ok_with(vec!["ANSWER a".into()], "answers=1");
        assert_eq!(with.terminator(), Some("OK answers=1"));
        let err = Response::err("bad\nthing");
        assert_eq!(err.lines, vec!["ERR bad; thing"]);
        assert!(!err.is_ok());
        assert!(Response::none().is_ok());
    }
}
