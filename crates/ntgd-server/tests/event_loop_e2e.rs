//! End-to-end tests for the evented connection layer: transcript parity
//! with the threaded transport at high concurrency, admission control,
//! graceful shutdown, and the socket-level framing corners (pipelining,
//! partial writes, unterminated final lines) that only show up over a real
//! TCP connection.
//!
//! The headline test drives **256 concurrent sessions** against both
//! transports at `NTGD_THREADS` 1 and 8, pool on and off, and requires every
//! session's transcript to be byte-identical across transports — the
//! protocol contract the ISSUE pins: the transport must be invisible to
//! clients.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use ntgd_core::parallel;
use ntgd_server::{serve, Conn, ServeHandle, Session, SessionBudget, SessionConfig, Transport};

/// Boots a server on an OS-assigned port with an explicit transport.
fn boot(transport: Transport, max_sessions: Option<usize>) -> ServeHandle {
    let config = SessionConfig {
        transport,
        max_sessions,
        ..SessionConfig::default()
    };
    boot_with(config)
}

/// Boots a server on an OS-assigned port with a fully explicit config.
fn boot_with(config: SessionConfig) -> ServeHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    serve(listener, config).expect("serve")
}

/// `Session` and `Conn` are the units the scheduler moves between threads:
/// both must stay `Send`.  This is the compile-time audit — if a future
/// change smuggles an `Rc` or a raw pointer into session state, this test
/// stops compiling rather than failing at runtime.
#[test]
fn session_and_conn_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Session>();
    assert_send::<Conn>();
}

/// The deterministic request script for session `i`: eight program shapes so
/// neighbouring sessions exercise different rules, including a disjunctive
/// variant that runs the SMS engine (nested parallelism inside a pooled
/// batch).  Every response is deterministic, so transcripts are comparable
/// byte-for-byte across transports.
fn script(i: usize) -> Vec<String> {
    let v = i % 8;
    if v >= 6 {
        return vec![
            format!("LOAD node{v}(X) -> red{v}(X) | green{v}(X)."),
            format!("ASSERT node{v}(u). node{v}(w)."),
            "MODELS max=8".to_owned(),
            "PING".to_owned(),
        ];
    }
    let mut lines = vec![format!(
        "LOAD e{v}(X, Y) -> n{v}(X). e{v}(X, Y) -> n{v}(Y)."
    )];
    for j in 0..=v {
        lines.push(format!("ASSERT e{v}(a{j}, b{j})."));
    }
    lines.push(format!("QUERY ?(X) :- n{v}(X)."));
    lines.push("RETRACT-TO 1".to_owned());
    lines.push(format!("QUERY ?(X) :- n{v}(X)."));
    lines
}

/// Connects `sessions` concurrent clients, releases them together, runs each
/// one's script in request/response lockstep, QUITs, and returns every
/// session's full transcript (banner included, read to server-side EOF).
fn run_fleet(addr: std::net::SocketAddr, sessions: usize) -> Vec<String> {
    let barrier = Arc::new(Barrier::new(sessions));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut writer = stream;
                    barrier.wait();
                    fn read_until_terminator(
                        reader: &mut BufReader<TcpStream>,
                        transcript: &mut String,
                    ) {
                        loop {
                            let mut line = String::new();
                            reader.read_line(&mut line).expect("read");
                            assert!(!line.is_empty(), "server closed mid-request");
                            let done = line.starts_with("OK") || line.starts_with("ERR");
                            transcript.push_str(&line);
                            if done {
                                break;
                            }
                        }
                    }
                    let mut transcript = String::new();
                    {
                        // Banner.
                        let mut line = String::new();
                        reader.read_line(&mut line).expect("banner");
                        transcript.push_str(&line);
                    }
                    for request in script(i) {
                        writeln!(writer, "{request}").expect("write");
                        read_until_terminator(&mut reader, &mut transcript);
                    }
                    writeln!(writer, "QUIT").expect("write QUIT");
                    read_until_terminator(&mut reader, &mut transcript);
                    // The server closes after QUIT on both transports.
                    let mut rest = String::new();
                    reader.read_to_string(&mut rest).expect("read to EOF");
                    transcript.push_str(&rest);
                    transcript
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    })
}

/// The tentpole parity gate: 256 concurrent sessions, evented vs threaded,
/// at 1 and 8 worker threads with the persistent pool on and off.  Each
/// session's transcript must match byte-for-byte across transports.
#[test]
fn evented_matches_threaded_at_256_sessions_across_pool_configs() {
    const SESSIONS: usize = 256;
    for threads in [1usize, 8] {
        for pool in [true, false] {
            parallel::set_thread_override(Some(threads));
            parallel::set_pool_enabled(Some(pool));
            let evented = boot(Transport::Evented, None);
            let threaded = boot(Transport::Threaded, None);
            let a = run_fleet(evented.addr(), SESSIONS);
            let b = run_fleet(threaded.addr(), SESSIONS);
            let evented_stats = evented.conn_stats();
            evented.shutdown().expect("evented shutdown");
            threaded.shutdown().expect("threaded shutdown");
            parallel::set_thread_override(None);
            parallel::set_pool_enabled(None);
            for (i, (ta, tb)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    ta, tb,
                    "transcript diverged: session {i}, threads={threads}, pool={pool}"
                );
            }
            assert_eq!(evented_stats.accepted, SESSIONS as u64);
            assert_eq!(evented_stats.rejected, 0);
            assert!(evented_stats.peak <= SESSIONS as u64);
        }
    }
}

/// `NTGD_MAX_SESSIONS`: connections over the cap get `ERR server at
/// capacity` and a closed socket; once a slot frees, new sessions are
/// admitted again.
#[test]
fn admission_cap_rejects_then_recovers() {
    let server = boot(Transport::Evented, Some(2));
    let addr = server.addr();
    let connect_admitted = || {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("banner");
        assert!(
            line.starts_with("READY"),
            "admitted sessions get the banner"
        );
        (stream, reader)
    };
    let first = connect_admitted();
    let second = connect_admitted();

    let over = TcpStream::connect(addr).expect("connect over cap");
    let mut reader = BufReader::new(over);
    let mut line = String::new();
    reader.read_line(&mut line).expect("rejection line");
    assert_eq!(line, "ERR server at capacity\n");
    let mut rest = String::new();
    reader
        .read_to_string(&mut rest)
        .expect("rejected socket EOF");
    assert!(rest.is_empty(), "nothing follows the rejection");

    // Free a slot and retry: the server must admit again.  The slot is
    // released when the server retires the connection, so poll briefly.
    let (mut stream, mut first_reader) = first;
    writeln!(stream, "QUIT").expect("QUIT");
    let mut bye = String::new();
    first_reader.read_line(&mut bye).expect("bye");
    assert_eq!(bye, "OK bye\n");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stream = TcpStream::connect(addr).expect("connect after free");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        if line.starts_with("READY") {
            break;
        }
        assert_eq!(line, "ERR server at capacity\n");
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed after QUIT"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let stats = server.conn_stats();
    assert!(stats.rejected >= 1, "rejection counted");
    assert_eq!(stats.peak, 2, "peak pinned at the cap");
    drop(second);
    server.shutdown().expect("shutdown");
}

/// Pipelined requests in one TCP segment are answered in order; the QUIT in
/// the middle of the pipeline terminates the session and everything after
/// it is discarded (same contract as the threaded `BufRead` loop, which
/// never reads past QUIT).
#[test]
fn pipelined_requests_are_answered_in_order_and_quit_cuts_the_stream() {
    let server = boot(Transport::Evented, None);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"PING\nPING\nQUIT\nPING\n")
        .expect("one pipelined write");
    let mut everything = String::new();
    stream.read_to_string(&mut everything).expect("read to EOF");
    assert_eq!(
        everything, "READY ntgd-serve protocol=1\nOK pong\nOK pong\nOK bye\n",
        "responses in order, nothing served after QUIT"
    );
    server.shutdown().expect("shutdown");
}

/// A request split across arbitrary TCP segments (here: byte by byte) is
/// accumulated until its newline arrives — the event loop never acts on a
/// partial line.
#[test]
fn partial_writes_accumulate_until_the_line_completes() {
    let server = boot(Transport::Evented, None);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner");
    for byte in b"PING\n" {
        stream.write_all(&[*byte]).expect("write one byte");
        std::thread::sleep(Duration::from_millis(2));
    }
    line.clear();
    reader.read_line(&mut line).expect("response");
    assert_eq!(line, "OK pong\n");
    // An unterminated final line before EOF still executes (the `BufRead::
    // lines` contract the threaded transport inherits from the std library).
    stream.write_all(b"PING").expect("write without newline");
    stream.shutdown(Shutdown::Write).expect("half-close");
    line.clear();
    reader.read_line(&mut line).expect("response to partial");
    assert_eq!(line, "OK pong\n");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("EOF");
    assert!(rest.is_empty());
    server.shutdown().expect("shutdown");
}

/// `ServeHandle::shutdown` joins every server thread and closes the
/// listener: post-shutdown connects must not reach a live session.
#[test]
fn shutdown_closes_the_listener_on_both_transports() {
    for transport in [Transport::Evented, Transport::Threaded] {
        let server = boot(transport, None);
        let addr = server.addr();
        // One live session mid-conversation when shutdown lands.
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("banner");
        server.shutdown().expect("graceful shutdown");
        // The live connection is closed out from under the client...
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
        // ...and fresh connects find nobody serving.
        match TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
            Err(_) => {}
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(Duration::from_millis(200)))
                    .expect("timeout");
                let mut buf = [0u8; 8];
                let got = (&stream).read(&mut buf);
                assert!(
                    matches!(got, Ok(0) | Err(_)),
                    "post-shutdown connection produced data: {got:?}"
                );
            }
        }
    }
}

/// `NTGD_IDLE_TIMEOUT`: a client that goes silent is reaped by the evented
/// loop — its socket is closed server-side, `conn_idle_closed` counts it,
/// and crucially its admission slot is *released*, so a stalled client can
/// no longer pin the server at capacity forever.
#[test]
fn idle_sessions_are_reaped_and_release_capacity() {
    let server = boot_with(SessionConfig {
        transport: Transport::Evented,
        max_sessions: Some(1),
        idle_timeout: Some(Duration::from_millis(100)),
        ..SessionConfig::default()
    });
    let addr = server.addr();

    // The stalled client: admitted (banner read), then silent forever.
    let stalled = TcpStream::connect(addr).expect("connect");
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut reader = BufReader::new(stalled.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner");
    assert!(line.starts_with("READY"), "stalled client was admitted");

    // It holds the only slot, so a second connection is shed...
    {
        let over = TcpStream::connect(addr).expect("connect over cap");
        let mut reader = BufReader::new(over);
        let mut line = String::new();
        reader.read_line(&mut line).expect("rejection line");
        assert_eq!(line, "ERR server at capacity\n");
    }

    // ...until the reaper closes the silent connection (EOF, not a read
    // timeout — the 5 s socket timeout above converts a hang into a failure).
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("reaped to EOF");
    assert!(rest.is_empty(), "nothing served after the banner");

    // The slot is free again: a live client is admitted.  The counter
    // bump and the socket close are not atomic, so poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stream = TcpStream::connect(addr).expect("connect after reap");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("response line");
        if line.starts_with("READY") {
            break;
        }
        assert_eq!(line, "ERR server at capacity\n");
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed after the idle reap"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let stats = server.conn_stats();
    assert!(stats.idle_closed >= 1, "reap counted: {stats:?}");
    server.shutdown().expect("shutdown");
}

/// `NTGD_SESSION_BUDGET` admission control: once the fleet's cumulative
/// execution time exceeds the aggregate allowance, *new* connections are
/// shed with `ERR server at capacity` under a **reject** budget (live
/// sessions are untouched), while a **warn** budget only logs and keeps
/// admitting.  A zero budget makes the breach deterministic: every
/// connection is over it.
#[test]
fn fleet_budget_sheds_new_connections_on_both_transports() {
    for transport in [Transport::Evented, Transport::Threaded] {
        let server = boot_with(SessionConfig {
            transport,
            session_budget: Some(SessionBudget::Reject(0)),
            ..SessionConfig::default()
        });
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("rejection line");
        assert_eq!(line, "ERR server at capacity\n", "{transport:?}");
        let mut rest = String::new();
        reader.read_to_string(&mut rest).expect("shed socket EOF");
        assert!(rest.is_empty(), "no banner, nothing after the rejection");
        let stats = server.conn_stats();
        assert!(stats.rejected >= 1, "shed counted: {stats:?}");
        assert_eq!(stats.accepted, 0, "never admitted: {stats:?}");
        server.shutdown().expect("shutdown");
    }
}

/// A `warn:` fleet budget is observability-only: even with the breach
/// deterministic (zero budget), new connections are still admitted — the
/// warn form must never convert into connection shedding.
#[test]
fn warn_fleet_budget_admits_new_connections_on_both_transports() {
    for transport in [Transport::Evented, Transport::Threaded] {
        let server = boot_with(SessionConfig {
            transport,
            session_budget: Some(SessionBudget::Warn(0)),
            ..SessionConfig::default()
        });
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut line = String::new();
        reader.read_line(&mut line).expect("banner");
        assert!(line.starts_with("READY"), "warn budget admits: {transport:?}");
        writeln!(writer, "PING").expect("request");
        line.clear();
        reader.read_line(&mut line).expect("pong");
        assert_eq!(line, "OK pong\n", "{transport:?}");
        let stats = server.conn_stats();
        assert_eq!(stats.rejected, 0, "warn never sheds: {stats:?}");
        assert_eq!(stats.accepted, 1, "admitted: {stats:?}");
        server.shutdown().expect("shutdown");
    }
}

/// The fleet-budget allowance scales with sessions ever **admitted**, not
/// currently active: spend left behind by dead sessions must not wedge an
/// idle server shut.  With a 1-hour per-session allowance, each admission
/// grants far more than the fleet could have spent, so connections keep
/// being admitted through session churn — under the old active-only
/// allowance this still held, but the accepted-based allowance is what
/// keeps it holding as cumulative spend outlives its sessions.
#[test]
fn fleet_budget_allowance_survives_session_churn() {
    let server = boot_with(SessionConfig {
        transport: Transport::Evented,
        session_budget: Some(SessionBudget::Reject(3_600_000)),
        ..SessionConfig::default()
    });
    for round in 0..3 {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut line = String::new();
        reader.read_line(&mut line).expect("banner");
        assert!(line.starts_with("READY"), "round {round} admitted");
        writeln!(writer, "QUIT").expect("request");
        line.clear();
        reader.read_line(&mut line).expect("bye");
        assert_eq!(line, "OK bye\n", "round {round}");
        // The session is gone (active back to 0) but its spend remains.
    }
    let stats = server.conn_stats();
    assert_eq!(stats.rejected, 0, "churn never shed: {stats:?}");
    assert_eq!(stats.accepted, 3, "all rounds admitted: {stats:?}");
    server.shutdown().expect("shutdown");
}

/// `STATS conn` over the wire reports the live transport label and counters.
#[test]
fn stats_conn_reports_the_transport() {
    for (transport, label) in [
        (Transport::Evented, "evented"),
        (Transport::Threaded, "threaded"),
    ] {
        let server = boot(transport, None);
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut line = String::new();
        reader.read_line(&mut line).expect("banner");
        writeln!(writer, "STATS conn").expect("request");
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            let done = line.starts_with("OK") || line.starts_with("ERR");
            lines.push(line.trim_end().to_owned());
            if done {
                break;
            }
        }
        assert!(
            lines.contains(&format!("STAT conn_transport={label}")),
            "{lines:?}"
        );
        assert!(
            lines.contains(&"STAT conn_accepted=1".to_owned()),
            "{lines:?}"
        );
        assert!(
            lines.contains(&"STAT conn_active=1".to_owned()),
            "{lines:?}"
        );
        assert_eq!(lines.last().unwrap(), "OK stats");
        server.shutdown().expect("shutdown");
    }
}
