//! PRNG property tests for the exactness of incremental sessions:
//!
//! * **Split-invariance** — any split of a database into a sequence of
//!   `ASSERT` batches yields the same instance (atom set and canonical null
//!   names included, compared in sorted order: the arena's *insertion*
//!   order by definition reflects the batching), the same query answers and
//!   the same stable-model sets as a from-scratch chase that asserts
//!   everything in one batch.
//! * **Thread-count determinism** — for a *fixed* batch sequence the arena
//!   is bit-identical (insertion order and null names included) at
//!   `NTGD_THREADS ∈ {1, 2, 8}`, including the small-delta rounds that only
//!   the persistent pool parallelises, and with the pool disabled (scoped
//!   fallback).
//! * **Retract equivalence** — rolling an epoch back and growing again is
//!   indistinguishable from never having asserted the retracted batch.
//!
//! Every case is reproducible from its printed seed.

use ntgd_core::{parallel, Atom};
use ntgd_server::{Session, SessionConfig};

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// A random *stratified* existential program over binary predicates
/// `p0 < p1 < p2 < p3`: rule heads always live in a strictly higher stratum
/// than their bodies, so the position graph is acyclic and the Skolem chase
/// terminates on every database — which the equivalence properties need
/// (a rolled-back diverging batch would make the accumulated fact sets of
/// two splits differ trivially).
fn stratified_program(rng: &mut Rng) -> String {
    let mut rules = String::new();
    for _ in 0..rng.below(4) + 2 {
        let body = rng.below(3); // p0..p2 so a higher stratum exists
        let head = body + 1 + rng.below(3 - body);
        match rng.below(3) {
            0 => rules.push_str(&format!("p{body}(X, Y) -> p{head}(Y, Z). ")),
            1 => {
                let second = rng.below(head);
                rules.push_str(&format!(
                    "p{body}(X, Y), p{second}(Y, W) -> p{head}(X, W). "
                ));
            }
            _ => rules.push_str(&format!("p{body}(X, Y) -> p{head}(Y, X). ")),
        }
    }
    rules
}

/// Random `p0`/`p1` facts over a small constant pool, as one statement each.
fn random_facts(rng: &mut Rng) -> Vec<String> {
    let count = rng.below(6) + 2;
    (0..count)
        .map(|_| format!("p{}(c{}, c{}).", rng.below(2), rng.below(4), rng.below(4)))
        .collect()
}

/// Splits the fact statements into 1..=4 consecutive `ASSERT` batches.
fn random_split(rng: &mut Rng, facts: &[String]) -> Vec<String> {
    let batches = rng.below(4) + 1;
    let mut out: Vec<Vec<&str>> = vec![Vec::new(); batches];
    for fact in facts {
        out[rng.below(batches)].push(fact);
    }
    out.into_iter()
        .filter(|batch| !batch.is_empty())
        .map(|batch| batch.join(" "))
        .collect()
}

/// Runs a full session (LOAD, then the batches) at the given thread count
/// and returns the arena in insertion order.
fn run_session(program: &str, batches: &[String], threads: usize) -> Vec<Atom> {
    parallel::set_thread_override(Some(threads));
    let mut session = Session::new(SessionConfig::default());
    let loaded = session.execute(&format!("LOAD {program}"));
    assert!(loaded.is_ok(), "LOAD failed: {:?}", loaded.lines);
    for batch in batches {
        let asserted = session.execute(&format!("ASSERT {batch}"));
        assert!(asserted.is_ok(), "ASSERT failed: {:?}", asserted.lines);
    }
    let arena: Vec<Atom> = session
        .instance()
        .expect("normal program has a chased instance")
        .atoms()
        .cloned()
        .collect();
    parallel::set_thread_override(None);
    arena
}

fn sorted(mut atoms: Vec<Atom>) -> Vec<Atom> {
    atoms.sort();
    atoms
}

#[test]
fn any_split_of_a_database_reaches_the_from_scratch_instance() {
    for case in 0..25u64 {
        let seed = 0x5e55_0000 + case;
        let mut rng = Rng::new(seed);
        let program = stratified_program(&mut rng);
        let facts = random_facts(&mut rng);
        // From-scratch reference: everything in one batch, one thread.
        let reference = sorted(run_session(&program, &[facts.join(" ")], 1));
        for _ in 0..3 {
            let batches = random_split(&mut rng, &facts);
            for threads in [1, 2, 8] {
                let split = sorted(run_session(&program, &batches, threads));
                assert_eq!(
                    split, reference,
                    "seed {seed}: split {batches:?} at {threads} threads diverged \
                     from the from-scratch chase\nprogram: {program}"
                );
            }
        }
    }
}

#[test]
fn query_answers_are_split_invariant_over_the_protocol() {
    for case in 0..10u64 {
        let seed = 0xa05_0000 + case;
        let mut rng = Rng::new(seed);
        let program = stratified_program(&mut rng);
        let facts = random_facts(&mut rng);
        let queries = [
            "QUERY ?(X) :- p3(X, Y).",
            "QUERY ?(X, Y) :- p2(X, Y).",
            "QUERY ?- p1(c0, c1).",
        ];
        let mut reference: Option<Vec<Vec<String>>> = None;
        for _ in 0..3 {
            let batches = random_split(&mut rng, &facts);
            let mut session = Session::new(SessionConfig::default());
            assert!(session.execute(&format!("LOAD {program}")).is_ok());
            for batch in &batches {
                assert!(session.execute(&format!("ASSERT {batch}")).is_ok());
            }
            let answers: Vec<Vec<String>> = queries
                .iter()
                .map(|query| session.execute(query).lines)
                .collect();
            match &reference {
                None => reference = Some(answers),
                Some(expected) => assert_eq!(
                    &answers, expected,
                    "seed {seed}: query answers depend on the batching\nprogram: {program}"
                ),
            }
        }
    }
}

#[test]
fn fixed_batching_is_bit_identical_across_thread_counts_and_pool_modes() {
    for case in 0..15u64 {
        let seed = 0xb17_0000 + case;
        let mut rng = Rng::new(seed);
        let program = stratified_program(&mut rng);
        let facts = random_facts(&mut rng);
        // Single-fact batches: every round is a *small delta*, the shape
        // only the persistent pool parallelises (the scoped fallback gates
        // these sequential).
        let batches: Vec<String> = facts.clone();
        let reference = run_session(&program, &batches, 1);
        for threads in [2, 8] {
            let arena = run_session(&program, &batches, threads);
            assert_eq!(
                arena, reference,
                "seed {seed}: arena order diverged at {threads} threads\nprogram: {program}"
            );
        }
        parallel::set_pool_enabled(Some(false));
        let scoped = run_session(&program, &batches, 8);
        parallel::set_pool_enabled(None);
        assert_eq!(
            scoped, reference,
            "seed {seed}: scoped fallback diverged\nprogram: {program}"
        );
    }
}

#[test]
fn retract_and_regrow_equals_never_asserted() {
    for case in 0..15u64 {
        let seed = 0x4e7_0000 + case;
        let mut rng = Rng::new(seed);
        let program = stratified_program(&mut rng);
        let keep = random_facts(&mut rng).join(" ");
        let retracted = random_facts(&mut rng).join(" ");
        let regrow = random_facts(&mut rng).join(" ");

        let mut with_retract = Session::new(SessionConfig::default());
        assert!(with_retract.execute(&format!("LOAD {program}")).is_ok());
        assert!(with_retract.execute(&format!("ASSERT {keep}")).is_ok());
        assert!(with_retract.execute(&format!("ASSERT {retracted}")).is_ok());
        assert!(with_retract.execute("RETRACT-TO 1").is_ok());
        assert!(with_retract.execute(&format!("ASSERT {regrow}")).is_ok());

        let mut without = Session::new(SessionConfig::default());
        assert!(without.execute(&format!("LOAD {program}")).is_ok());
        assert!(without.execute(&format!("ASSERT {keep}")).is_ok());
        assert!(without.execute(&format!("ASSERT {regrow}")).is_ok());

        let left: Vec<Atom> = with_retract.instance().unwrap().atoms().cloned().collect();
        let right: Vec<Atom> = without.instance().unwrap().atoms().cloned().collect();
        assert_eq!(
            left, right,
            "seed {seed}: retract left a trace (arena order included)\nprogram: {program}"
        );
        assert_eq!(with_retract.facts(), without.facts(), "seed {seed}");
    }
}

#[test]
fn stable_model_sets_are_split_invariant() {
    // Normal programs with negation (no existentials, so SMS enumeration is
    // fast and total): the MODELS output of a session must not depend on
    // how its fact history was batched, at any thread count.
    for case in 0..10u64 {
        let seed = 0x5745_0000 + case;
        let mut rng = Rng::new(seed);
        let predicates = ["p", "q", "r", "s"];
        let mut rules = String::new();
        for _ in 0..rng.below(4) + 1 {
            let body = predicates[rng.below(4)];
            let negated = predicates[rng.below(4)];
            let head = predicates[rng.below(4)];
            if rng.chance(50) && body != negated {
                rules.push_str(&format!("{body}(X), not {negated}(X) -> {head}(X). "));
            } else {
                rules.push_str(&format!("{body}(X) -> {head}(X). "));
            }
        }
        let facts: Vec<String> = (0..rng.below(4) + 2)
            .map(|_| format!("{}(c{}).", predicates[rng.below(2)], rng.below(3)))
            .collect();
        let mut reference: Option<Vec<String>> = None;
        for threads in [1, 2, 8] {
            parallel::set_thread_override(Some(threads));
            let batches = random_split(&mut rng, &facts);
            let mut session = Session::new(SessionConfig::default());
            assert!(session.execute(&format!("LOAD {rules}")).is_ok());
            for batch in &batches {
                assert!(session.execute(&format!("ASSERT {batch}")).is_ok());
            }
            let models = session.execute("MODELS");
            assert!(models.is_ok(), "{:?}", models.lines);
            let lines = models.lines[..models.lines.len() - 1].to_vec();
            parallel::set_thread_override(None);
            match &reference {
                None => reference = Some(lines),
                Some(expected) => assert_eq!(
                    &lines, expected,
                    "seed {seed}: stable models depend on batching/threads\nrules: {rules}"
                ),
            }
        }
    }
}
