//! Observability surface tests: the `METRICS` exposition's wire framing,
//! byte-stability of the deterministic `STATS metrics` scope across the
//! full parallelism matrix, the `NTGD_SESSION_BUDGET` admission cap, and
//! the `NTGD_SLOW_MS` slow-request log driven end to end over real TCP
//! against the actual `ntgd-serve` binary (environment-configured logging
//! is latched at process start, so it needs a subprocess to test).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Command, Stdio};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ntgd_core::parallel;
use ntgd_server::{serve_tcp, Session, SessionBudget, SessionConfig};

/// The parallelism knobs are process-global; tests that flip them
/// serialise here.
fn settings_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Boots an in-process server on an OS-assigned port.
fn boot() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("bound address");
    std::thread::spawn(move || {
        let _ = serve_tcp(listener, SessionConfig::default());
    });
    addr
}

/// A tiny protocol client: one request line in, all lines to the
/// `OK`/`ERR` terminator out.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone the stream"));
        let mut client = Client {
            reader,
            writer: stream,
        };
        assert_eq!(client.read_line(), "READY ntgd-serve protocol=1");
        client
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read from server");
        line.trim_end().to_owned()
    }

    fn request(&mut self, line: &str) -> Vec<String> {
        writeln!(self.writer, "{line}").expect("write to server");
        let mut lines = Vec::new();
        loop {
            let line = self.read_line();
            let done = line.starts_with("OK") || line.starts_with("ERR");
            lines.push(line);
            if done {
                return lines;
            }
        }
    }
}

#[test]
fn metrics_verb_frames_a_prometheus_exposition() {
    let addr = boot();
    let mut client = Client::connect(addr);
    // Verb counters and histograms record after dispatch, so this PING is
    // guaranteed to be visible to the scrape below.
    assert_eq!(client.request("PING"), vec!["OK pong"]);
    let lines = client.request("METRICS");
    let (data, terminator) = lines.split_at(lines.len() - 1);
    // The terminator's count matches the data lines exactly — the framing
    // clients rely on.
    let count: usize = terminator[0]
        .strip_prefix("OK metrics lines=")
        .expect("METRICS terminator shape")
        .parse()
        .expect("line count is a number");
    assert_eq!(count, data.len());
    // Every data line is frame-safe: a comment or a sample, never a line
    // that could be mistaken for a terminator.
    assert!(data
        .iter()
        .all(|line| line.starts_with("# TYPE ") || line.starts_with("ntgd_")));
    // The scrape carries this connection's own instruments.
    assert!(data
        .iter()
        .any(|line| line == "# TYPE ntgd_server_requests_ping counter"));
    assert!(data
        .iter()
        .any(|line| line.starts_with("ntgd_server_request_ping_ns_count ")));
    assert!(data
        .iter()
        .any(|line| line.starts_with("ntgd_server_request_ping_ns{quantile=\"0.99\"} ")));
}

/// A fixed session script touching every verb class: compute verbs, an
/// inspection verb, a parse error and a semantic error.
const SCRIPT: [&str; 9] = [
    "PING",
    "LOAD e(X, Y) -> n(X). e(X, Y) -> n(Y).",
    "ASSERT e(a, b).",
    "QUERY ?(X) :- n(X).",
    "NONSENSE",
    "RETRACT-TO 99",
    "MODELS max=2",
    "HELP",
    "STATS metrics",
];

fn transcript() -> Vec<String> {
    let mut session = Session::new(SessionConfig::default());
    SCRIPT
        .iter()
        .flat_map(|line| session.execute(line).lines)
        .collect()
}

#[test]
fn stats_metrics_is_byte_stable_across_threads_and_pool_modes() {
    let _guard = settings_lock();
    let reference = transcript();
    // The scope's tallies are a pure function of the request history: the
    // parse error counts into total+errors only, the bad RETRACT-TO counts
    // under its verb *and* errors, and the closing `STATS metrics` counts
    // itself.
    let stats_start = reference
        .iter()
        .position(|line| line == "STAT requests_total=9")
        .expect("metrics scope begins at the total");
    assert_eq!(
        &reference[stats_start..],
        &[
            "STAT requests_total=9",
            "STAT requests_load=1",
            "STAT requests_assert=1",
            "STAT requests_query=1",
            "STAT requests_models=1",
            "STAT requests_retract=1",
            "STAT requests_stats=1",
            "STAT requests_metrics=0",
            "STAT requests_ping=1",
            "STAT requests_help=1",
            "STAT requests_quit=0",
            "STAT requests_errors=2",
            "OK stats",
        ]
    );
    for threads in [1usize, 2, 8] {
        for pooled in [true, false] {
            parallel::set_thread_override(Some(threads));
            parallel::set_pool_enabled(Some(pooled));
            let replay = transcript();
            parallel::set_pool_enabled(None);
            parallel::set_thread_override(None);
            assert_eq!(
                reference, replay,
                "transcript differs at threads={threads} pooled={pooled}"
            );
        }
    }
}

#[test]
fn reject_budget_blocks_compute_verbs_but_keeps_the_session_diagnosable() {
    let mut session = Session::new(SessionConfig {
        session_budget: Some(SessionBudget::Reject(0)),
        ..SessionConfig::default()
    });
    // Inspection verbs always run, budget or not.
    assert_eq!(session.execute("PING").lines, vec!["OK pong"]);
    let rejected = session.execute("LOAD p(X) -> q(X).");
    assert_eq!(
        rejected.lines,
        vec!["ERR session budget exceeded (spent 0ms >= budget 0ms)"]
    );
    // The rejection still counts as a request (and an error) in the
    // session's deterministic tallies.
    let stats = session.execute("STATS metrics");
    assert!(stats.lines.contains(&"STAT requests_load=1".to_owned()));
    assert!(stats.lines.contains(&"STAT requests_errors=1".to_owned()));
    assert!(stats.is_ok());
}

#[test]
fn warn_budget_keeps_serving() {
    let mut session = Session::new(SessionConfig {
        session_budget: Some(SessionBudget::Warn(0)),
        ..SessionConfig::default()
    });
    assert!(session.execute("LOAD p(X) -> q(X).").is_ok());
    assert!(session.execute("ASSERT p(a).").is_ok());
    assert_eq!(
        session.execute("QUERY ?- q(a).").lines,
        vec!["ANSWER true", "OK answers=1"]
    );
}

#[test]
fn budget_values_parse_like_the_environment_variable() {
    assert_eq!(SessionBudget::parse("250"), Some(SessionBudget::Reject(250)));
    assert_eq!(
        SessionBudget::parse("warn: 90"),
        Some(SessionBudget::Warn(90))
    );
    assert_eq!(SessionBudget::parse("fast"), None);
    assert_eq!(SessionBudget::parse(""), None);
}

#[test]
fn slow_requests_are_logged_as_json_events_over_real_tcp() {
    // NTGD_LOG and NTGD_SLOW_MS are latched when the process first logs, so
    // the end-to-end path needs the real binary with a controlled
    // environment, driven over a real socket.
    let log_path = std::env::temp_dir().join(format!("ntgd-slowlog-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ntgd-serve"))
        .args(["--listen", "127.0.0.1:0"])
        .env("NTGD_SLOW_MS", "0")
        .env("NTGD_LOG", &log_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ntgd-serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read LISTENING line");
    let addr = banner
        .trim()
        .strip_prefix("LISTENING ")
        .expect("ntgd-serve announces its address")
        .parse()
        .expect("announced address parses");

    let mut client = Client::connect(addr);
    assert!(client.request("LOAD p(X) -> q(X).")[0].starts_with("OK"));
    assert!(client.request("ASSERT p(a).")[0].starts_with("OK"));
    assert_eq!(client.request("QUIT"), vec!["OK bye"]);
    drop(client);

    // The log file is appended as requests complete; poll briefly for the
    // events (the threshold of 0 ms makes every request slow).
    let deadline = Instant::now() + Duration::from_secs(10);
    let events = loop {
        let text = std::fs::read_to_string(&log_path).unwrap_or_default();
        let events: Vec<String> = text.lines().map(str::to_owned).collect();
        if events.iter().filter(|e| e.contains("slow_request")).count() >= 3
            || Instant::now() > deadline
        {
            break events;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    child.kill().expect("stop ntgd-serve");
    let _ = child.wait();
    let _ = std::fs::remove_file(&log_path);

    let slow: Vec<&String> = events
        .iter()
        .filter(|e| e.contains("\"event\":\"slow_request\""))
        .collect();
    assert!(
        slow.len() >= 3,
        "expected slow_request events for LOAD/ASSERT/QUIT, got: {events:?}"
    );
    // One JSON object per line with the documented fields.
    for event in &slow {
        assert!(event.starts_with("{\"ts_ms\":"), "not a JSON line: {event}");
        assert!(event.ends_with('}'));
        for field in [
            "\"level\":\"warn\"",
            "\"verb\":",
            "\"session\":",
            "\"duration_ms\":",
            "\"request_bytes\":",
            "\"response_lines\":",
            "\"response_bytes\":",
            "\"ok\":",
        ] {
            assert!(event.contains(field), "missing {field} in {event}");
        }
    }
    assert!(slow.iter().any(|e| e.contains("\"verb\":\"load\"")));
    assert!(slow.iter().any(|e| e.contains("\"verb\":\"assert\"")));
}
