//! One source of truth for the verb summary: the served `HELP` output and
//! the block embedded in `docs/PROTOCOL.md` must be identical.  Both derive
//! from [`ntgd_server::HELP_LINES`] — the session maps over it at runtime,
//! the doc mirrors it between `<!-- HELP-BEGIN -->`/`<!-- HELP-END -->`
//! markers, and this test fails the build when either side drifts.

use ntgd_server::{Session, SessionConfig, HELP_LINES};

/// The lines inside PROTOCOL.md's HELP markers, code fence stripped.
fn documented_help() -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
    let doc = std::fs::read_to_string(path).expect("docs/PROTOCOL.md is readable");
    let (_, after) = doc
        .split_once("<!-- HELP-BEGIN -->")
        .expect("PROTOCOL.md has a <!-- HELP-BEGIN --> marker");
    let (block, _) = after
        .split_once("<!-- HELP-END -->")
        .expect("PROTOCOL.md has a <!-- HELP-END --> marker");
    block
        .lines()
        .map(str::trim_end)
        .filter(|line| !line.is_empty() && !line.starts_with("```"))
        .map(str::to_owned)
        .collect()
}

#[test]
fn protocol_doc_embeds_help_lines_verbatim() {
    assert_eq!(
        documented_help(),
        HELP_LINES.to_vec(),
        "docs/PROTOCOL.md's HELP block diverged from protocol::HELP_LINES — \
         update whichever side is stale"
    );
}

#[test]
fn served_help_is_help_lines_plus_terminator() {
    let mut session = Session::new(SessionConfig::default());
    let response = session.execute("HELP");
    let (terminator, data) = response.lines.split_last().expect("nonempty response");
    // Data lines are wire-framed as `INFO <help line>` so they can never be
    // mistaken for a terminator; the payload itself is HELP_LINES verbatim.
    let served: Vec<&str> = data
        .iter()
        .map(|line| {
            line.strip_prefix("INFO ")
                .expect("HELP data lines are INFO-framed")
        })
        .collect();
    assert_eq!(served, HELP_LINES.to_vec());
    assert_eq!(terminator, "OK help");
}
