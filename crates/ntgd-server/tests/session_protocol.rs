//! End-to-end protocol tests against a live `ntgd-serve` TCP server: a real
//! listener, real connections, scripted LOAD/ASSERT/QUERY/RETRACT-TO
//! sessions.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use ntgd_server::{serve_tcp, SessionConfig};

/// Boots a server on an OS-assigned port and returns its address.  The
/// server thread serves until the test process exits.
fn boot() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("bound address");
    std::thread::spawn(move || {
        let _ = serve_tcp(listener, SessionConfig::default());
    });
    addr
}

/// A tiny protocol client: sends one request line, reads data lines until
/// the `OK`/`ERR` terminator, returns all lines.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to ntgd-serve");
        let reader = BufReader::new(stream.try_clone().expect("clone the stream"));
        let mut client = Client {
            reader,
            writer: stream,
        };
        let banner = client.read_line();
        assert_eq!(banner, "READY ntgd-serve protocol=1");
        client
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read from server");
        line.trim_end().to_owned()
    }

    fn request(&mut self, line: &str) -> Vec<String> {
        writeln!(self.writer, "{line}").expect("write to server");
        self.writer.flush().expect("flush to server");
        let mut lines = Vec::new();
        loop {
            let line = self.read_line();
            let done = line.starts_with("OK") || line.starts_with("ERR");
            lines.push(line);
            if done {
                return lines;
            }
        }
    }
}

#[test]
fn scripted_session_over_a_real_socket() {
    let addr = boot();
    let mut client = Client::connect(addr);

    assert_eq!(client.request("PING"), vec!["OK pong"]);
    assert_eq!(
        client.request("LOAD e(X, Y) -> n(X). e(X, Y) -> n(Y). n(X) -> labelled(X, L)."),
        vec!["OK rules=3 facts=0 atoms=0 mark=0"]
    );
    assert_eq!(
        client.request("ASSERT e(a, b)."),
        vec!["OK mark=1 added=1 derived=4 atoms=5"]
    );
    assert_eq!(
        client.request("QUERY ?(X) :- n(X)."),
        vec!["ANSWER a", "ANSWER b", "OK answers=2"]
    );
    assert_eq!(
        client.request("ASSERT e(b, c). e(c, a)."),
        vec!["OK mark=2 added=2 derived=2 atoms=9"]
    );
    assert_eq!(
        client.request("QUERY ?(X) :- n(X)."),
        vec!["ANSWER a", "ANSWER b", "ANSWER c", "OK answers=3"]
    );
    // Roll the second assert back and verify the first epoch is intact.
    assert_eq!(client.request("RETRACT-TO 1"), vec!["OK mark=1 atoms=5"]);
    assert_eq!(
        client.request("QUERY ?(X) :- n(X)."),
        vec!["ANSWER a", "ANSWER b", "OK answers=2"]
    );
    // Growing again after the rollback continues from the surviving epoch.
    assert_eq!(
        client.request("ASSERT e(b, c)."),
        vec!["OK mark=2 added=1 derived=2 atoms=8"]
    );
    let stats = client.request("STATS");
    assert!(stats.iter().any(|l| l == "STAT loaded=true"));
    assert!(stats.last().unwrap().starts_with("OK"));
    assert_eq!(client.request("QUIT"), vec!["OK bye"]);
}

#[test]
fn concurrent_connections_get_independent_sessions() {
    let addr = boot();
    let mut first = Client::connect(addr);
    let mut second = Client::connect(addr);

    first.request("LOAD p(X) -> q(X).");
    second.request("LOAD r(X) -> s(X).");
    first.request("ASSERT p(a).");
    second.request("ASSERT r(b).");

    // Each session only sees its own program and facts.
    assert_eq!(
        first.request("QUERY ?- q(a)."),
        vec!["ANSWER true", "OK answers=1"]
    );
    assert_eq!(
        first.request("QUERY ?- s(b)."),
        vec!["ANSWER false", "OK answers=1"]
    );
    assert_eq!(
        second.request("QUERY ?- s(b)."),
        vec!["ANSWER true", "OK answers=1"]
    );

    // Sessions under load in parallel: interleaved asserts stay isolated.
    let handle = {
        std::thread::spawn(move || {
            let mut third = Client::connect(addr);
            third.request("LOAD e(X, Y), e(Y, Z) -> e(X, Z).");
            for k in 0..20 {
                let response = third.request(&format!("ASSERT e(c{k}, c{}).", k + 1));
                assert!(response.last().unwrap().starts_with("OK"), "{response:?}");
            }
            third.request("QUERY ?- e(c0, c20).")
        })
    };
    for k in 0..10 {
        first.request(&format!("ASSERT p(x{k})."));
    }
    assert_eq!(
        handle.join().expect("third session"),
        vec!["ANSWER true", "OK answers=1"]
    );
    assert_eq!(
        first.request("QUERY ?- q(x9)."),
        vec!["ANSWER true", "OK answers=1"]
    );
}

#[test]
fn protocol_errors_do_not_poison_the_connection() {
    let addr = boot();
    let mut client = Client::connect(addr);
    assert!(client.request("NONSENSE")[0].starts_with("ERR"));
    assert!(client.request("ASSERT p(a).")[0].starts_with("ERR no program loaded"));
    assert!(client.request("LOAD p(X) -> ")[0].starts_with("ERR"));
    assert_eq!(
        client.request("LOAD p(X) -> q(X)."),
        vec!["OK rules=1 facts=0 atoms=0 mark=0"]
    );
    assert!(client.request("RETRACT-TO 99")[0].starts_with("ERR unknown mark"));
    assert_eq!(
        client.request("ASSERT p(a)."),
        vec!["OK mark=1 added=1 derived=1 atoms=2"]
    );
}

#[test]
fn models_and_disjunction_over_the_wire() {
    let addr = boot();
    let mut client = Client::connect(addr);
    client.request(
        "LOAD node(X) -> red(X) | green(X). edge(X, Y), red(X), red(Y) -> conflict(X, Y).",
    );
    client.request("ASSERT node(u). node(v). edge(u, v).");
    let models = client.request("MODELS max=16");
    assert_eq!(models.last().unwrap(), "OK models=4 mode=sms");
    assert_eq!(models.len(), 5);
    assert!(models[..4].iter().all(|l| l.starts_with("MODEL {")));
    // A second call is served from the session cache.
    let cached = client.request("MODELS max=16");
    assert_eq!(cached.last().unwrap(), "OK models=4 mode=sms cached=true");
    assert_eq!(models[..4], cached[..4]);
}
