//! Elimination-order heuristics for tree decompositions.
//!
//! A (perfect) elimination order yields a tree decomposition in the standard
//! way: eliminate vertices one by one, each time creating a bag containing the
//! vertex and its current neighbours and turning that neighbourhood into a
//! clique.  The width obtained is an **upper bound** on the treewidth; the
//! classical *min-degree* and *min-fill* orderings are very good in practice
//! and exact on chordal graphs.

use std::collections::BTreeSet;

use ntgd_core::Term;

use crate::decomposition::TreeDecomposition;
use crate::graph::GaifmanGraph;

/// An elimination order over the vertex indices of a Gaifman graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EliminationOrder {
    order: Vec<usize>,
}

impl EliminationOrder {
    /// Creates an elimination order from explicit vertex indices.
    pub fn new(order: Vec<usize>) -> EliminationOrder {
        EliminationOrder { order }
    }

    /// The vertex indices in elimination order.
    pub fn indices(&self) -> &[usize] {
        &self.order
    }

    /// The eliminated terms in order.
    pub fn terms(&self, graph: &GaifmanGraph) -> Vec<Term> {
        self.order.iter().map(|&i| graph.term_of(i)).collect()
    }

    /// Turns the elimination order into a tree decomposition of the graph.
    ///
    /// Each eliminated vertex contributes a bag `{v} ∪ N(v)` (neighbours in
    /// the partially filled-in graph); the bag is attached to the bag of the
    /// first neighbour eliminated later, which guarantees the connectedness
    /// condition.
    pub fn decomposition(&self, graph: &GaifmanGraph) -> TreeDecomposition {
        let n = graph.vertex_count();
        let mut decomposition = TreeDecomposition::new();
        if n == 0 {
            return decomposition;
        }
        let mut adjacency: Vec<BTreeSet<usize>> =
            (0..n).map(|v| graph.neighbours(v).clone()).collect();
        let mut eliminated = vec![false; n];
        let mut position = vec![usize::MAX; n];
        for (p, &v) in self.order.iter().enumerate() {
            position[v] = p;
        }
        // Node index of the bag created when each vertex was eliminated.
        let mut bag_of = vec![usize::MAX; n];

        for &v in &self.order {
            let neighbours: Vec<usize> = adjacency[v]
                .iter()
                .copied()
                .filter(|w| !eliminated[*w])
                .collect();
            let mut bag: BTreeSet<Term> = BTreeSet::from([graph.term_of(v)]);
            for &w in &neighbours {
                bag.insert(graph.term_of(w));
            }
            let node = decomposition.add_bag(bag);
            bag_of[v] = node;
            // Fill in: make the remaining neighbourhood a clique.
            for i in 0..neighbours.len() {
                for j in (i + 1)..neighbours.len() {
                    let (a, b) = (neighbours[i], neighbours[j]);
                    adjacency[a].insert(b);
                    adjacency[b].insert(a);
                }
            }
            eliminated[v] = true;
        }

        // Second pass: connect every bag to the bag of its parent (the
        // earliest-eliminated neighbour that comes later in the order).  If a
        // vertex has no later neighbour, connect it to the last bag to keep
        // the tree connected.
        let mut adjacency_filled: Vec<BTreeSet<usize>> =
            (0..n).map(|v| graph.neighbours(v).clone()).collect();
        let mut eliminated2 = vec![false; n];
        for &v in &self.order {
            let later: Vec<usize> = adjacency_filled[v]
                .iter()
                .copied()
                .filter(|w| !eliminated2[*w])
                .collect();
            if let Some(&parent) = later.iter().min_by_key(|w| position[**w]) {
                decomposition.add_edge(bag_of[v], bag_of[parent]);
            } else if bag_of[v] + 1 < decomposition.node_count() {
                // No later neighbour: attach to the final bag so the
                // decomposition stays a tree even for disconnected graphs.
                decomposition.add_edge(bag_of[v], decomposition.node_count() - 1);
            }
            for i in 0..later.len() {
                for j in (i + 1)..later.len() {
                    let (a, b) = (later[i], later[j]);
                    adjacency_filled[a].insert(b);
                    adjacency_filled[b].insert(a);
                }
            }
            eliminated2[v] = true;
        }

        decomposition
    }

    /// The width obtained by this elimination order (without materialising
    /// the decomposition).
    pub fn width(&self, graph: &GaifmanGraph) -> usize {
        let n = graph.vertex_count();
        let mut adjacency: Vec<BTreeSet<usize>> =
            (0..n).map(|v| graph.neighbours(v).clone()).collect();
        let mut eliminated = vec![false; n];
        let mut width = 0usize;
        for &v in &self.order {
            let neighbours: Vec<usize> = adjacency[v]
                .iter()
                .copied()
                .filter(|w| !eliminated[*w])
                .collect();
            width = width.max(neighbours.len());
            for i in 0..neighbours.len() {
                for j in (i + 1)..neighbours.len() {
                    let (a, b) = (neighbours[i], neighbours[j]);
                    adjacency[a].insert(b);
                    adjacency[b].insert(a);
                }
            }
            eliminated[v] = true;
        }
        width
    }
}

/// Computes an elimination order greedily by a scoring function over the
/// current (filled-in) neighbourhoods.
fn greedy_order<F>(graph: &GaifmanGraph, mut score: F) -> EliminationOrder
where
    F: FnMut(&[BTreeSet<usize>], &[bool], usize) -> usize,
{
    let n = graph.vertex_count();
    let mut adjacency: Vec<BTreeSet<usize>> = (0..n).map(|v| graph.neighbours(v).clone()).collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|v| !eliminated[*v])
            .min_by_key(|&v| (score(&adjacency, &eliminated, v), v))
            .expect("some vertex remains");
        let neighbours: Vec<usize> = adjacency[v]
            .iter()
            .copied()
            .filter(|w| !eliminated[*w])
            .collect();
        for i in 0..neighbours.len() {
            for j in (i + 1)..neighbours.len() {
                let (a, b) = (neighbours[i], neighbours[j]);
                adjacency[a].insert(b);
                adjacency[b].insert(a);
            }
        }
        eliminated[v] = true;
        order.push(v);
    }
    EliminationOrder::new(order)
}

/// The min-degree heuristic: always eliminate a vertex of minimum remaining
/// degree.
pub fn min_degree_order(graph: &GaifmanGraph) -> EliminationOrder {
    greedy_order(graph, |adjacency, eliminated, v| {
        adjacency[v].iter().filter(|w| !eliminated[**w]).count()
    })
}

/// The min-fill heuristic: always eliminate a vertex whose elimination adds
/// the fewest fill-in edges.
pub fn min_fill_order(graph: &GaifmanGraph) -> EliminationOrder {
    greedy_order(graph, |adjacency, eliminated, v| {
        let neighbours: Vec<usize> = adjacency[v]
            .iter()
            .copied()
            .filter(|w| !eliminated[*w])
            .collect();
        let mut fill = 0usize;
        for i in 0..neighbours.len() {
            for j in (i + 1)..neighbours.len() {
                if !adjacency[neighbours[i]].contains(&neighbours[j]) {
                    fill += 1;
                }
            }
        }
        fill
    })
}

/// A tree decomposition obtained from the min-degree order.
pub fn min_degree_decomposition(graph: &GaifmanGraph) -> TreeDecomposition {
    min_degree_order(graph).decomposition(graph)
}

/// A tree decomposition obtained from the min-fill order.
pub fn min_fill_decomposition(graph: &GaifmanGraph) -> TreeDecomposition {
    min_fill_order(graph).decomposition(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_parser::parse_database;

    fn graph_of(text: &str) -> GaifmanGraph {
        GaifmanGraph::of_database(&parse_database(text).unwrap())
    }

    #[test]
    fn heuristic_decompositions_of_a_path_have_width_one() {
        let graph = graph_of("edge(a, b). edge(b, c). edge(c, d). edge(d, e).");
        for decomposition in [
            min_degree_decomposition(&graph),
            min_fill_decomposition(&graph),
        ] {
            assert_eq!(decomposition.validate(&graph), Ok(()));
            assert_eq!(decomposition.width(), 1);
        }
    }

    #[test]
    fn heuristic_decompositions_of_a_cycle_have_width_two() {
        let graph = graph_of("edge(a, b). edge(b, c). edge(c, d). edge(d, a).");
        for decomposition in [
            min_degree_decomposition(&graph),
            min_fill_decomposition(&graph),
        ] {
            assert_eq!(decomposition.validate(&graph), Ok(()));
            assert_eq!(decomposition.width(), 2);
        }
    }

    #[test]
    fn a_clique_needs_a_bag_with_every_vertex() {
        let graph = graph_of("r(a, b, c, d).");
        let decomposition = min_fill_decomposition(&graph);
        assert_eq!(decomposition.validate(&graph), Ok(()));
        assert_eq!(decomposition.width(), 3);
    }

    #[test]
    fn disconnected_graphs_still_produce_a_single_tree() {
        let graph = graph_of("edge(a, b). edge(c, d). p(e).");
        let decomposition = min_degree_decomposition(&graph);
        assert_eq!(decomposition.validate(&graph), Ok(()));
        assert_eq!(decomposition.width(), 1);
    }

    #[test]
    fn empty_graphs_yield_empty_decompositions() {
        let graph = GaifmanGraph::new();
        let decomposition = min_fill_decomposition(&graph);
        assert_eq!(decomposition.node_count(), 0);
        assert_eq!(decomposition.width(), 0);
    }

    #[test]
    fn width_shortcut_matches_the_materialised_decomposition() {
        let graph = graph_of("edge(a, b). edge(b, c). edge(c, a). edge(c, d).");
        let order = min_fill_order(&graph);
        assert_eq!(order.width(&graph), order.decomposition(&graph).width());
    }

    #[test]
    fn explicit_orders_are_respected() {
        let graph = graph_of("edge(a, b). edge(b, c).");
        // Eliminating the middle vertex first creates a bag {a, b, c}.
        let middle = graph.index_of(&ntgd_core::cst("b")).unwrap();
        let others: Vec<usize> = (0..graph.vertex_count()).filter(|v| *v != middle).collect();
        let mut order = vec![middle];
        order.extend(others);
        let order = EliminationOrder::new(order);
        assert_eq!(order.width(&graph), 2);
        let decomposition = order.decomposition(&graph);
        assert_eq!(decomposition.validate(&graph), Ok(()));
        assert_eq!(decomposition.width(), 2);
    }
}
