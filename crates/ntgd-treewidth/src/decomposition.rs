//! Tree decompositions of Gaifman graphs, following the definition recalled
//! in the paper's Section 3.4.
//!
//! A tree decomposition of an interpretation `I` is a labelled tree
//! `T = (V, E, λ)` with `λ : V → 2^{dom(I)}` such that
//!
//! 1. for every (positive) literal `p(t₁, …, tₙ) ∈ I` there is a node whose
//!    bag contains `{t₁, …, tₙ}` — on the Gaifman graph this becomes: every
//!    edge is covered by some bag, and
//! 2. for every term `t`, the nodes whose bags contain `t` induce a connected
//!    subtree.
//!
//! The width of a decomposition is `max |bag| − 1`; the treewidth of the
//! interpretation is the minimum width over all decompositions.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ntgd_core::{Interpretation, Term};

use crate::graph::GaifmanGraph;

/// A bag of a tree decomposition: a set of terms.
pub type Bag = BTreeSet<Term>;

/// Why a candidate tree decomposition is not valid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecompositionError {
    /// The edge set does not form a tree over the declared nodes (wrong edge
    /// count, a cycle, or a disconnected node).
    NotATree,
    /// An edge endpoint refers to a node that does not exist.
    UnknownNode(usize),
    /// Some atom's terms (equivalently some Gaifman edge) are covered by no
    /// bag.
    UncoveredAtom(Vec<Term>),
    /// The nodes containing the term do not induce a connected subtree.
    DisconnectedTerm(Term),
}

impl fmt::Display for DecompositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompositionError::NotATree => write!(f, "the node/edge set is not a tree"),
            DecompositionError::UnknownNode(n) => write!(f, "edge endpoint {n} is not a node"),
            DecompositionError::UncoveredAtom(terms) => {
                write!(f, "no bag covers the terms {terms:?}")
            }
            DecompositionError::DisconnectedTerm(t) => {
                write!(f, "the bags containing {t} are not connected")
            }
        }
    }
}

/// A tree decomposition: bags indexed by node, plus tree edges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TreeDecomposition {
    bags: Vec<Bag>,
    edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// Creates an empty decomposition (valid only for the empty graph).
    pub fn new() -> TreeDecomposition {
        TreeDecomposition::default()
    }

    /// The trivial decomposition: a single bag holding every vertex of the
    /// graph.  Always valid; width `|V| − 1`.
    pub fn trivial(graph: &GaifmanGraph) -> TreeDecomposition {
        let mut decomposition = TreeDecomposition::new();
        decomposition.add_bag(graph.vertices().iter().copied().collect());
        decomposition
    }

    /// Adds a bag and returns its node index.
    pub fn add_bag(&mut self, bag: Bag) -> usize {
        self.bags.push(bag);
        self.bags.len() - 1
    }

    /// Adds a tree edge between two nodes.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        self.edges.push((a, b));
    }

    /// The bags of the decomposition.
    pub fn bags(&self) -> &[Bag] {
        &self.bags
    }

    /// The tree edges of the decomposition.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.bags.len()
    }

    /// The width: `max |bag| − 1` (0 for decompositions of the empty graph).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(BTreeSet::len)
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Checks the tree-ness of the node/edge set.
    fn validate_tree(&self) -> Result<(), DecompositionError> {
        let n = self.node_count();
        if n == 0 {
            return if self.edges.is_empty() {
                Ok(())
            } else {
                Err(DecompositionError::NotATree)
            };
        }
        for (a, b) in &self.edges {
            if *a >= n {
                return Err(DecompositionError::UnknownNode(*a));
            }
            if *b >= n {
                return Err(DecompositionError::UnknownNode(*b));
            }
        }
        if self.edges.len() != n - 1 {
            return Err(DecompositionError::NotATree);
        }
        // Connectivity (with n-1 edges, connected ⇒ acyclic ⇒ tree).
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in &self.edges {
            adjacency[*a].push(*b);
            adjacency[*b].push(*a);
        }
        let mut seen = vec![false; n];
        let mut frontier = vec![0usize];
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(v) = frontier.pop() {
            for &w in &adjacency[v] {
                if !seen[w] {
                    seen[w] = true;
                    reached += 1;
                    frontier.push(w);
                }
            }
        }
        if reached != n {
            return Err(DecompositionError::NotATree);
        }
        Ok(())
    }

    /// Validates the decomposition against a Gaifman graph: every edge of the
    /// graph (and every isolated vertex) must be covered by a bag, and every
    /// vertex must induce a connected subtree.
    pub fn validate(&self, graph: &GaifmanGraph) -> Result<(), DecompositionError> {
        self.validate_tree()?;

        // Condition 1: every vertex and every edge is covered by some bag.
        for index in 0..graph.vertex_count() {
            let term = graph.term_of(index);
            if !self.bags.iter().any(|bag| bag.contains(&term)) {
                return Err(DecompositionError::UncoveredAtom(vec![term]));
            }
            for &neighbour in graph.neighbours(index) {
                if neighbour < index {
                    continue;
                }
                let other = graph.term_of(neighbour);
                if !self
                    .bags
                    .iter()
                    .any(|bag| bag.contains(&term) && bag.contains(&other))
                {
                    return Err(DecompositionError::UncoveredAtom(vec![term, other]));
                }
            }
        }

        // Condition 2: connectedness of every term's occurrence set.
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); self.node_count()];
        for (a, b) in &self.edges {
            adjacency[*a].push(*b);
            adjacency[*b].push(*a);
        }
        let mut occurrences: BTreeMap<Term, Vec<usize>> = BTreeMap::new();
        for (node, bag) in self.bags.iter().enumerate() {
            for term in bag {
                occurrences.entry(*term).or_default().push(node);
            }
        }
        for (term, nodes) in occurrences {
            if nodes.len() <= 1 {
                continue;
            }
            let node_set: BTreeSet<usize> = nodes.iter().copied().collect();
            let mut seen: BTreeSet<usize> = BTreeSet::from([nodes[0]]);
            let mut frontier = vec![nodes[0]];
            while let Some(v) = frontier.pop() {
                for &w in &adjacency[v] {
                    if node_set.contains(&w) && seen.insert(w) {
                        frontier.push(w);
                    }
                }
            }
            if seen.len() != node_set.len() {
                return Err(DecompositionError::DisconnectedTerm(term));
            }
        }
        Ok(())
    }

    /// Validates the decomposition directly against an interpretation: every
    /// positive atom's terms must fit in a single bag (the paper's condition
    /// (i)), plus the connectedness condition (ii).
    pub fn validate_for_interpretation(
        &self,
        interpretation: &Interpretation,
    ) -> Result<(), DecompositionError> {
        self.validate_tree()?;
        for atom in interpretation.atoms() {
            let terms: BTreeSet<Term> = atom.terms().copied().collect();
            if !self.bags.iter().any(|bag| terms.is_subset(bag)) {
                return Err(DecompositionError::UncoveredAtom(
                    terms.into_iter().collect(),
                ));
            }
        }
        // The connectedness condition only depends on the bags and edges.
        self.validate(&GaifmanGraph::of_interpretation(interpretation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntgd_core::cst;
    use ntgd_parser::parse_database;

    fn bag(terms: &[&str]) -> Bag {
        terms.iter().map(|t| cst(t)).collect()
    }

    #[test]
    fn the_trivial_decomposition_is_always_valid() {
        let db = parse_database("edge(a, b). edge(b, c). p(d).").unwrap();
        let interpretation = db.to_interpretation();
        let graph = GaifmanGraph::of_interpretation(&interpretation);
        let decomposition = TreeDecomposition::trivial(&graph);
        assert_eq!(decomposition.validate(&graph), Ok(()));
        assert_eq!(
            decomposition.validate_for_interpretation(&interpretation),
            Ok(())
        );
        assert_eq!(decomposition.width(), 3);
    }

    #[test]
    fn a_path_decomposition_of_width_one_validates() {
        let db = parse_database("edge(a, b). edge(b, c).").unwrap();
        let graph = GaifmanGraph::of_database(&db);
        let mut decomposition = TreeDecomposition::new();
        let n0 = decomposition.add_bag(bag(&["a", "b"]));
        let n1 = decomposition.add_bag(bag(&["b", "c"]));
        decomposition.add_edge(n0, n1);
        assert_eq!(decomposition.validate(&graph), Ok(()));
        assert_eq!(decomposition.width(), 1);
    }

    #[test]
    fn missing_edge_coverage_is_detected() {
        let db = parse_database("edge(a, b). edge(b, c). edge(a, c).").unwrap();
        let graph = GaifmanGraph::of_database(&db);
        let mut decomposition = TreeDecomposition::new();
        let n0 = decomposition.add_bag(bag(&["a", "b"]));
        let n1 = decomposition.add_bag(bag(&["b", "c"]));
        decomposition.add_edge(n0, n1);
        assert!(matches!(
            decomposition.validate(&graph),
            Err(DecompositionError::UncoveredAtom(_))
        ));
    }

    #[test]
    fn disconnected_occurrences_are_detected() {
        let db = parse_database("edge(a, b). edge(b, c). edge(c, d).").unwrap();
        let graph = GaifmanGraph::of_database(&db);
        let mut decomposition = TreeDecomposition::new();
        let n0 = decomposition.add_bag(bag(&["a", "b"]));
        let n1 = decomposition.add_bag(bag(&["b", "c"]));
        let n2 = decomposition.add_bag(bag(&["c", "d", "a"]));
        decomposition.add_edge(n0, n1);
        decomposition.add_edge(n1, n2);
        // `a` occurs in the first and third bag but not in the middle one.
        assert_eq!(
            decomposition.validate(&graph),
            Err(DecompositionError::DisconnectedTerm(cst("a")))
        );
    }

    #[test]
    fn non_tree_edge_sets_are_rejected() {
        let db = parse_database("edge(a, b).").unwrap();
        let graph = GaifmanGraph::of_database(&db);
        let mut decomposition = TreeDecomposition::new();
        let n0 = decomposition.add_bag(bag(&["a", "b"]));
        let n1 = decomposition.add_bag(bag(&["a", "b"]));
        decomposition.add_edge(n0, n1);
        decomposition.add_edge(n1, n0);
        assert_eq!(
            decomposition.validate(&graph),
            Err(DecompositionError::NotATree)
        );
    }

    #[test]
    fn interpretation_validation_requires_whole_atoms_in_one_bag() {
        // The Gaifman graph of r(a, b, c) is a triangle; covering each edge in
        // a different bag is fine for the graph but the atom-level condition
        // wants all three terms together.
        let db = parse_database("r(a, b, c).").unwrap();
        let interpretation = db.to_interpretation();
        let mut decomposition = TreeDecomposition::new();
        let n0 = decomposition.add_bag(bag(&["a", "b", "c"]));
        let _ = n0;
        assert_eq!(
            decomposition.validate_for_interpretation(&interpretation),
            Ok(())
        );
        assert_eq!(decomposition.width(), 2);
    }

    #[test]
    fn unknown_edge_endpoints_are_reported() {
        let mut decomposition = TreeDecomposition::new();
        decomposition.add_bag(bag(&["a"]));
        decomposition.add_edge(0, 7);
        let graph = GaifmanGraph::of_database(&parse_database("p(a).").unwrap());
        assert_eq!(
            decomposition.validate(&graph),
            Err(DecompositionError::UnknownNode(7))
        );
    }
}
